//! Umbrella crate that re-exports the public API of the rapidgzip-rs
//! reproduction for use by the workspace examples and integration tests.
pub use rgz_baselines as baselines;
pub use rgz_bitio as bitio;
pub use rgz_blockfinder as blockfinder;
pub use rgz_checksum as checksum;
pub use rgz_compress as compress;
pub use rgz_core as core;
pub use rgz_datagen as datagen;
pub use rgz_deflate as deflate;
pub use rgz_fetcher as fetcher;
pub use rgz_gzip as gzip;
pub use rgz_huffman as huffman;
pub use rgz_index as index;
pub use rgz_interop as interop;
pub use rgz_io as io;
pub use rgz_metrics as metrics;
pub use rgz_window as window;
