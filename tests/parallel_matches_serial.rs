//! Cross-crate integration tests: the parallel reader must reproduce the
//! serial decoder bit-for-bit on every kind of gzip file the compressor
//! front-ends can produce.

use std::io::Read;

use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::{decompress, CompressorFrontend, FrontendKind, GzipWriter};

fn options(threads: usize, chunk_size: usize) -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: threads,
        chunk_size,
        ..Default::default()
    }
}

fn parallel(compressed: &[u8], threads: usize, chunk_size: usize) -> Vec<u8> {
    let mut reader =
        ParallelGzipReader::from_bytes(compressed.to_vec(), options(threads, chunk_size)).unwrap();
    let mut out = Vec::new();
    reader.read_to_end(&mut out).unwrap();
    out
}

#[test]
fn every_frontend_and_corpus_combination_round_trips() {
    let corpora: Vec<(&str, Vec<u8>)> = vec![
        ("base64", datagen::base64_random(900_000, 1)),
        ("silesia", datagen::silesia_like(900_000, 2)),
        ("fastq", datagen::fastq_of_size(900_000, 3)),
    ];
    for (corpus_name, data) in &corpora {
        for kind in FrontendKind::all() {
            for level in [1u8, 6] {
                let frontend = CompressorFrontend::new(kind, level);
                let compressed = frontend.compress(data);
                let serial = decompress(&compressed).unwrap();
                assert_eq!(&serial, data, "serial {corpus_name} {}", frontend.label());
                let parallel_output = parallel(&compressed, 4, 64 * 1024);
                assert_eq!(
                    &parallel_output,
                    data,
                    "parallel {corpus_name} {}",
                    frontend.label()
                );
            }
        }
    }
}

#[test]
fn pathological_single_block_and_stored_files() {
    let data = datagen::silesia_like(700_000, 4);
    for frontend in [
        CompressorFrontend::new(FrontendKind::Igzip, 0),
        CompressorFrontend::new(FrontendKind::Bgzf, 0),
    ] {
        let compressed = frontend.compress(&data);
        assert_eq!(
            parallel(&compressed, 4, 32 * 1024),
            data,
            "{}",
            frontend.label()
        );
    }
}

#[test]
fn multi_member_concatenated_files() {
    let writer = GzipWriter::default();
    let parts = [
        datagen::base64_random(300_000, 5),
        datagen::silesia_like(400_000, 6),
        Vec::new(),
        datagen::fastq_of_size(200_000, 7),
    ];
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    let compressed = writer.compress_members(&refs);
    let expected: Vec<u8> = parts.concat();
    assert_eq!(parallel(&compressed, 4, 64 * 1024), expected);
    assert_eq!(decompress(&compressed).unwrap(), expected);
}

#[test]
fn thread_and_chunk_size_sweep() {
    let data = datagen::silesia_like(1_200_000, 8);
    let compressed = GzipWriter::default().compress_pigz_like(&data, 64 * 1024);
    for threads in [1usize, 2, 8] {
        for chunk_size in [16 * 1024usize, 128 * 1024, 4 << 20] {
            assert_eq!(
                parallel(&compressed, threads, chunk_size),
                data,
                "threads {threads} chunk {chunk_size}"
            );
        }
    }
}
