//! Integration tests for the baselines and failure handling across crates.

use rapidgzip_suite::baselines::{
    decompress_bgzf_parallel, FramezipDecompressor, FramezipWriter, PugzDecompressor,
};
use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::{BgzfWriter, GzipWriter};

#[test]
fn all_decompressors_agree_on_fastq_data() {
    let data = datagen::fastq_of_size(800_000, 30);
    let gzip_file = GzipWriter::default().compress_pigz_like(&data, 64 * 1024);
    let bgzf_file = BgzfWriter::default().compress(&data);
    let framezip_file = FramezipWriter::default().compress_multi_frame(&data, 128 * 1024);

    let mut rapid = ParallelGzipReader::from_bytes(
        gzip_file.clone(),
        ParallelGzipReaderOptions {
            parallelization: 4,
            chunk_size: 64 * 1024,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(rapid.decompress_all().unwrap(), data);

    let pugz = PugzDecompressor {
        threads: 4,
        chunk_size: 64 * 1024,
        synchronized: true,
    };
    assert_eq!(pugz.decompress(&gzip_file).unwrap(), data);

    assert_eq!(decompress_bgzf_parallel(&bgzf_file, 4).unwrap(), data);
    assert_eq!(
        FramezipDecompressor { threads: 4 }
            .decompress(&framezip_file)
            .unwrap(),
        data
    );
}

#[test]
fn pugz_rejects_what_rapidgzip_accepts() {
    // The generalisation claim of the paper in one test: binary data is fine
    // for rapidgzip, rejected by the pugz baseline.
    let data = datagen::silesia_like(900_000, 31);
    let compressed = GzipWriter::default().compress_pigz_like(&data, 64 * 1024);

    let mut rapid = ParallelGzipReader::from_bytes(
        compressed.clone(),
        ParallelGzipReaderOptions {
            parallelization: 4,
            chunk_size: 64 * 1024,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(rapid.decompress_all().unwrap(), data);

    let pugz = PugzDecompressor {
        threads: 4,
        chunk_size: 64 * 1024,
        synchronized: true,
    };
    assert!(pugz.decompress(&compressed).is_err());
}

#[test]
fn framezip_single_frame_cannot_be_split_but_still_decodes() {
    let data = datagen::silesia_like(400_000, 32);
    let single = FramezipWriter::default().compress_single_frame(&data);
    assert_eq!(FramezipDecompressor::frame_count(&single).unwrap(), 1);
    assert_eq!(
        FramezipDecompressor { threads: 8 }
            .decompress(&single)
            .unwrap(),
        data
    );
}

#[test]
fn truncated_and_garbage_inputs_error_cleanly() {
    let data = datagen::base64_random(300_000, 33);
    let compressed = GzipWriter::default().compress(&data);
    for bad in [
        &compressed[..10],
        &compressed[..compressed.len() / 3],
        b"this is not gzip data at all".as_slice(),
    ] {
        let mut reader = ParallelGzipReader::from_bytes(
            bad.to_vec(),
            ParallelGzipReaderOptions::with_parallelization(2),
        )
        .unwrap();
        assert!(reader.decompress_all().is_err());
    }
}
