//! Integration tests for seeking, index reuse, and concurrent access from
//! multiple offsets.

use std::io::{Read, Seek, SeekFrom};

use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::GzipWriter;
use rapidgzip_suite::index::{GzipIndex, IndexFormat};
use rapidgzip_suite::io::SharedFileReader;

fn options() -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: 4,
        chunk_size: 64 * 1024,
        ..Default::default()
    }
}

#[test]
fn seeks_are_equivalent_to_skipping() {
    let data = datagen::silesia_like(1_500_000, 20);
    let compressed = GzipWriter::default().compress(&data);
    let mut reader = ParallelGzipReader::from_bytes(compressed, options()).unwrap();
    let mut buffer = vec![0u8; 8192];
    for &offset in &[0u64, 1, 65_535, 65_536, 777_777, 1_400_000] {
        reader.seek(SeekFrom::Start(offset)).unwrap();
        reader.read_exact(&mut buffer).unwrap();
        assert_eq!(
            &buffer[..],
            &data[offset as usize..offset as usize + buffer.len()]
        );
    }
    // Backwards seek after reading forward.
    reader.seek(SeekFrom::Start(10)).unwrap();
    reader.read_exact(&mut buffer[..16]).unwrap();
    assert_eq!(&buffer[..16], &data[10..26]);
    // Relative and end-anchored seeks.
    let position = reader.seek(SeekFrom::Current(-8)).unwrap();
    assert_eq!(position, 18);
    let position = reader.seek(SeekFrom::End(-100)).unwrap();
    assert_eq!(position, data.len() as u64 - 100);
    let mut tail = Vec::new();
    reader.read_to_end(&mut tail).unwrap();
    assert_eq!(&tail, &data[data.len() - 100..]);
}

#[test]
fn exported_index_survives_a_round_trip_to_disk() {
    let data = datagen::fastq_of_size(1_000_000, 21);
    let compressed = GzipWriter::default().compress(&data);
    let shared = SharedFileReader::from_bytes(compressed);

    let mut builder = ParallelGzipReader::new(shared.clone(), options()).unwrap();
    let index = builder.build_full_index().unwrap();
    let path = std::env::temp_dir().join(format!("rgz_index_{}.rgzidx", std::process::id()));
    std::fs::write(&path, index.export()).unwrap();

    let imported = GzipIndex::import(&std::fs::read(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(imported.block_map.len(), index.block_map.len());

    let mut reader = ParallelGzipReader::with_index(shared, options(), imported).unwrap();
    assert_eq!(reader.uncompressed_size(), Some(data.len() as u64));
    let mut buffer = vec![0u8; 4096];
    reader.seek(SeekFrom::Start(500_000)).unwrap();
    reader.read_exact(&mut buffer).unwrap();
    assert_eq!(&buffer[..], &data[500_000..504_096]);
    assert_eq!(reader.decompress_all().unwrap(), data);
}

#[test]
fn v2_index_round_trips_through_disk_with_byte_identical_output() {
    // Export in both formats, re-import each, and byte-compare full
    // decompression and random access against the serial decoder's output.
    let data = datagen::silesia_like(1_200_000, 25);
    let compressed = GzipWriter::default().compress(&data);
    let expected = rapidgzip_suite::gzip::decompress(&compressed).unwrap();
    assert_eq!(expected, data);
    let shared = SharedFileReader::from_bytes(compressed);

    let mut builder = ParallelGzipReader::new(shared.clone(), options()).unwrap();
    let index = builder.build_full_index().unwrap();

    for format in [IndexFormat::V1, IndexFormat::V2] {
        let path = std::env::temp_dir().join(format!(
            "rgz_index_{:?}_{}.rgzidx",
            format,
            std::process::id()
        ));
        std::fs::write(&path, index.export_as(format)).unwrap();
        let imported = GzipIndex::import(&std::fs::read(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();

        let mut reader =
            ParallelGzipReader::with_index(shared.clone(), options(), imported).unwrap();
        let mut buffer = vec![0u8; 4096];
        reader.seek(SeekFrom::Start(900_000)).unwrap();
        reader.read_exact(&mut buffer).unwrap();
        assert_eq!(&buffer[..], &expected[900_000..904_096]);
        assert_eq!(reader.decompress_all().unwrap(), expected, "{format:?}");
    }
}

#[test]
fn v2_index_is_at_least_4x_smaller_than_v1_on_the_base64_corpus() {
    // The acceptance criterion of the compressed/sparse window store: on the
    // datagen base64 corpus the v2 export must be >= 4x smaller than the v1
    // raw-window export, with decompression staying byte-identical.
    let data = datagen::base64_random(4 * 1024 * 1024, 26);
    let compressed = GzipWriter::default().compress(&data);
    let shared = SharedFileReader::from_bytes(compressed);

    let mut builder = ParallelGzipReader::new(shared.clone(), options()).unwrap();
    let index = builder.build_full_index().unwrap();
    assert!(index.block_map.len() > 8, "need a multi-chunk index");

    let v1 = index.export_as(IndexFormat::V1);
    let v2 = index.export_as(IndexFormat::V2);
    assert!(
        v2.len() * 4 <= v1.len(),
        "v2 export ({}) must be at least 4x smaller than v1 ({})",
        v2.len(),
        v1.len()
    );

    let imported = GzipIndex::import(&v2).unwrap();
    let mut reader = ParallelGzipReader::with_index(shared, options(), imported).unwrap();
    assert_eq!(reader.decompress_all().unwrap(), data);
}

#[test]
fn concurrent_access_at_two_offsets_through_clones_of_the_file() {
    // Two independent readers over the same compressed bytes, used from two
    // threads at different offsets (the ratarmount access pattern).
    let data = datagen::silesia_like(2_000_000, 22);
    let compressed = GzipWriter::default().compress(&data);
    let shared = SharedFileReader::from_bytes(compressed);
    std::thread::scope(|scope| {
        for (start, length) in [(100_000usize, 50_000usize), (1_500_000, 80_000)] {
            let shared = shared.clone();
            let data = &data;
            scope.spawn(move || {
                let mut reader = ParallelGzipReader::new(shared, options()).unwrap();
                reader.seek(SeekFrom::Start(start as u64)).unwrap();
                let mut buffer = vec![0u8; length];
                reader.read_exact(&mut buffer).unwrap();
                assert_eq!(&buffer[..], &data[start..start + length]);
            });
        }
    });
}
