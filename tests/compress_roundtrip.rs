//! End-to-end round trips for the parallel write path: `rgz_compress` output
//! must decode byte-identically through the serial decoder *and* the
//! parallel reader (speculative, no index), and the index emitted at
//! compress time must serve fully *verified* random access — zero
//! `index_chunks_unverified` — after an export/import through the on-disk
//! v3 container.

use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;

use rapidgzip_suite::compress::{
    CompressedStream, CompressionLevel, ContainerFormat, ParallelCompressor,
    ParallelCompressorOptions,
};
use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions, VerificationMode};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::decompress;
use rapidgzip_suite::index::{GzipIndex, IndexFormat};
use rapidgzip_suite::io::SharedFileReader;

fn compress(data: &[u8], level: CompressionLevel, container: ContainerFormat) -> CompressedStream {
    ParallelCompressor::new(ParallelCompressorOptions {
        level,
        container,
        chunk_size: 48 * 1024,
        member_size: 192 * 1024,
        parallelization: 4,
        ..Default::default()
    })
    .compress(data)
}

fn reader_options() -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: 4,
        chunk_size: 64 * 1024,
        verification: VerificationMode::Full,
        // A single-slot cache so every seek below re-decodes (and therefore
        // re-verifies) its chunk through the index fast path.
        resolved_cache_chunks: 1,
        ..Default::default()
    }
}

fn corpora() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("silesia", datagen::silesia_like(1_000_000, 901)),
        ("base64", datagen::base64_random(700_000, 902)),
    ]
}

#[test]
fn output_round_trips_through_serial_and_parallel_readers() {
    for (name, data) in corpora() {
        for container in [ContainerFormat::Pigz, ContainerFormat::Bgzf] {
            for level in [CompressionLevel::Fast, CompressionLevel::Best] {
                let stream = compress(&data, level, container);
                assert_eq!(
                    decompress(&stream.bytes).unwrap(),
                    data,
                    "{name} {container:?} {level:?}: serial decoder"
                );
                // Speculative parallel decode: no index, the block finder has
                // to rediscover our chunk boundaries on its own.
                let mut reader =
                    ParallelGzipReader::from_bytes(stream.bytes.clone(), reader_options()).unwrap();
                assert_eq!(
                    reader.decompress_all().unwrap(),
                    data,
                    "{name} {container:?} {level:?}: parallel reader"
                );
            }
        }
    }
}

#[test]
fn emitted_index_serves_fully_verified_random_access() {
    for (name, data) in corpora() {
        for container in [ContainerFormat::Pigz, ContainerFormat::Bgzf] {
            let stream = compress(&data, CompressionLevel::Default, container);
            // Round-trip the index through the on-disk v3 container, exactly
            // like the CLI's --export-index/--import-index pair does.
            let serialized = stream.index.export_as(IndexFormat::V3);
            let index = GzipIndex::import(&serialized).unwrap();
            assert_eq!(index.block_map.len(), stream.index.block_map.len());

            let mut reader = ParallelGzipReader::with_index(
                SharedFileReader::from_bytes(stream.bytes.clone()),
                reader_options(),
                index,
            )
            .unwrap();

            // Deterministic offset sweep, front-loaded with the awkward
            // spots: chunk boundaries, last bytes, and a mid-file stride.
            let mut offsets = vec![0u64, data.len() as u64 - 1, data.len() as u64 / 2];
            let mut state = 0x2545_F491_4F6C_DD1Du64 ^ (data.len() as u64);
            for _ in 0..12 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                offsets.push(state % data.len() as u64);
            }
            for offset in offsets {
                let want = &data[offset as usize..(offset as usize + 512).min(data.len())];
                let mut buffer = vec![0u8; want.len()];
                reader.seek(SeekFrom::Start(offset)).unwrap();
                reader.read_exact(&mut buffer).unwrap();
                assert_eq!(buffer, want, "{name} {container:?}: bytes at {offset}");
            }

            let statistics = reader.verification_statistics();
            assert!(
                statistics.index_chunks_verified > 0,
                "{name} {container:?}: nothing was verified: {statistics:?}"
            );
            assert_eq!(
                statistics.index_chunks_unverified, 0,
                "{name} {container:?}: {statistics:?}"
            );
        }
    }
}

#[test]
fn corruption_cannot_pass_verified_random_access() {
    let data = datagen::silesia_like(500_000, 903);
    let stream = compress(&data, CompressionLevel::Default, ContainerFormat::Pigz);
    let index = GzipIndex::import(&stream.index.export_as(IndexFormat::V3)).unwrap();

    // Flip one bit in the middle of the second member's chunk data.
    let points = stream.index.block_map.points();
    assert!(points.len() >= 2, "corpus must span several members");
    let target_byte = (points[1].compressed_bit_offset / 8) as usize + 600;
    let mut corrupted = stream.bytes.clone();
    corrupted[target_byte] ^= 0x10;

    let mut reader = ParallelGzipReader::with_index(
        SharedFileReader::from_bytes(corrupted),
        reader_options(),
        index,
    )
    .unwrap();
    reader
        .seek(SeekFrom::Start(points[1].uncompressed_offset + 1000))
        .unwrap();
    let mut buffer = vec![0u8; 1024];
    let result = reader.read_exact(&mut buffer);
    match result {
        // Usually the flip garbles the DEFLATE stream outright…
        Err(error) => assert!(!error.to_string().is_empty()),
        // …but if it still decodes, the CRC fragments must catch it.
        Ok(()) => assert_ne!(
            &buffer[..],
            &data[points[1].uncompressed_offset as usize + 1000..][..1024],
            "corrupted read returned pristine bytes"
        ),
    }
}

#[test]
fn compressor_shares_a_pool_with_other_work() {
    // The compressor must be usable on a caller-owned pool (the service
    // direction shares one pool between read and write pipelines).
    let pool = Arc::new(rapidgzip_suite::fetcher::ThreadPool::new(2));
    let data = datagen::fastq_of_size(300_000, 904);
    let compressor = ParallelCompressor::with_pool(
        ParallelCompressorOptions {
            chunk_size: 32 * 1024,
            member_size: 128 * 1024,
            ..Default::default()
        },
        pool,
    );
    let first = compressor.compress(&data);
    let second = compressor.compress(&data);
    assert_eq!(first.bytes, second.bytes, "deterministic on a shared pool");
    assert_eq!(decompress(&first.bytes).unwrap(), data);
}
