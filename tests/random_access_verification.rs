//! Corruption-injection tests for the *random access* path.
//!
//! The contract under test: with a native v3 index (which stores per-seek-
//! point CRC-32 fragments split at member boundaries), a single-bit flip in
//! any chunk body is detected by a random-access read under
//! [`VerificationMode::Full`] and the error names the offending member.
//! The same read through a fragment-less index — native v1/v2 or a foreign
//! gztool/indexed_gzip import — completes (the bytes still decode), but the
//! reader's statistics must report the chunk as *unverified*, never as
//! silently clean.

use std::io::{Read, Seek, SeekFrom};

use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions, VerificationMode};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::{
    decompress_with_info, CompressorFrontend, FrontendKind, GzipWriter, MemberInfo,
};
use rapidgzip_suite::index::{GzipIndex, IndexFormat, SeekPoint};
use rapidgzip_suite::interop::{export_index, import_index, AnyIndexFormat};

fn options(verification: VerificationMode) -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: 4,
        chunk_size: 32 * 1024,
        verification,
        // A single-slot cache so every seek in the sweep below re-decodes
        // (and therefore re-verifies) its chunk through the index fast path.
        resolved_cache_chunks: 1,
        ..Default::default()
    }
}

/// Builds a full seek-point index (with captured CRC fragments) for
/// `compressed` via a sequential pass.
fn build_index(compressed: &[u8]) -> GzipIndex {
    let mut builder =
        ParallelGzipReader::from_bytes(compressed.to_vec(), options(VerificationMode::Full))
            .unwrap();
    builder.build_full_index().unwrap()
}

fn indexed_reader(
    compressed: &[u8],
    index: GzipIndex,
    verification: VerificationMode,
) -> ParallelGzipReader {
    ParallelGzipReader::with_index(
        rapidgzip_suite::io::SharedFileReader::from_bytes(compressed.to_vec()),
        options(verification),
        index,
    )
    .unwrap()
}

/// The five on-disk formats a seek-point index round-trips through.  Only
/// native v3 carries checksum fragments.
fn all_formats() -> [AnyIndexFormat; 5] {
    [
        AnyIndexFormat::Native(IndexFormat::V1),
        AnyIndexFormat::Native(IndexFormat::V2),
        AnyIndexFormat::Native(IndexFormat::V3),
        AnyIndexFormat::Gztool,
        AnyIndexFormat::IndexedGzip,
    ]
}

#[test]
fn pristine_random_access_is_verified_only_with_native_v3() {
    let data = datagen::silesia_like(900_000, 201);
    let compressed = GzipWriter::default().compress(&data);
    let index = build_index(&compressed);
    assert!(index.checksum_map.len() >= index.block_map.len());

    for format in all_formats() {
        let verifiable = format == AnyIndexFormat::Native(IndexFormat::V3);
        let imported = import_index(&export_index(&index, format)).unwrap();
        assert_eq!(
            imported.checksummed_points > 0,
            verifiable,
            "{format}: checksummed_points = {}",
            imported.checksummed_points
        );

        let mut reader = indexed_reader(&compressed, imported.index, VerificationMode::Full);
        let mut buffer = vec![0u8; 4096];
        for offset in [700_000u64, 40_000, 450_000, 850_000] {
            reader.seek(SeekFrom::Start(offset)).unwrap();
            reader.read_exact(&mut buffer).unwrap();
            assert_eq!(
                &buffer[..],
                &data[offset as usize..offset as usize + 4096],
                "{format}: wrong bytes at {offset}"
            );
        }
        let statistics = reader.verification_statistics();
        if verifiable {
            assert!(
                statistics.index_chunks_verified > 0 && statistics.index_chunks_unverified == 0,
                "{format}: {statistics:?}"
            );
        } else {
            assert!(
                statistics.index_chunks_verified == 0 && statistics.index_chunks_unverified > 0,
                "{format}: {statistics:?}"
            );
        }
    }
}

/// A BGZF file of *stored* (uncompressed) DEFLATE blocks: a payload bit flip
/// always decodes to plausible output, so only checksum verification can
/// catch it — and member attribution is deterministic.
fn stored_bgzf_corpus() -> (Vec<u8>, Vec<u8>, Vec<MemberInfo>) {
    let data = datagen::fastq_of_size(600_000, 202);
    let compressed = CompressorFrontend::new(FrontendKind::Bgzf, 0).compress(&data);
    let (restored, members) = decompress_with_info(&compressed).unwrap();
    assert_eq!(restored, data);
    (compressed, data, members)
}

/// Target members spread across the file, skipping the empty BGZF EOF
/// member, with the flip landing mid-payload (inside stored block data).
fn flip_sites(members: &[MemberInfo]) -> Vec<(usize, usize)> {
    [1, members.len() / 2, members.len() - 2]
        .into_iter()
        .map(|m| {
            let member = &members[m];
            (
                m,
                (member.compressed_start as usize + member.compressed_end as usize) / 2,
            )
        })
        .collect()
}

#[test]
fn chunk_body_bit_flips_are_detected_and_attributed_through_native_v3() {
    let (pristine, _, members) = stored_bgzf_corpus();
    let index = build_index(&pristine);
    // Go through the on-disk v3 container, not just the in-memory index.
    let serialized = export_index(&index, AnyIndexFormat::Native(IndexFormat::V3));

    for (member, byte) in flip_sites(&members) {
        for bit in [0u8, 5] {
            let mut corrupted = pristine.clone();
            corrupted[byte] ^= 1 << bit;
            let imported = import_index(&serialized).unwrap();
            let mut reader = indexed_reader(&corrupted, imported.index, VerificationMode::Full);
            let target = members[member].uncompressed_start + members[member].uncompressed_size / 2;
            reader.seek(SeekFrom::Start(target)).unwrap();
            let mut buffer = vec![0u8; 1024];
            let error = reader
                .read_exact(&mut buffer)
                .expect_err(&format!(
                    "flipping bit {bit} of byte {byte} (member {member}) went undetected"
                ))
                .to_string();
            assert!(
                error.contains(&format!("member {member}")),
                "expected the error to name member {member}, got: {error}"
            );
        }
    }
}

#[test]
fn fragmentless_imports_complete_corrupted_reads_but_report_unverified() {
    let (pristine, data, members) = stored_bgzf_corpus();
    let index = build_index(&pristine);

    let (member, byte) = flip_sites(&members)[1];
    let mut corrupted = pristine.clone();
    corrupted[byte] ^= 1 << 3;
    let span = members[member].uncompressed_start as usize
        ..(members[member].uncompressed_start + members[member].uncompressed_size) as usize;

    for format in [
        AnyIndexFormat::Native(IndexFormat::V1),
        AnyIndexFormat::Native(IndexFormat::V2),
        AnyIndexFormat::Gztool,
        AnyIndexFormat::IndexedGzip,
    ] {
        let imported = import_index(&export_index(&index, format)).unwrap();
        assert_eq!(imported.checksummed_points, 0, "{format}");
        let mut reader = indexed_reader(&corrupted, imported.index, VerificationMode::Full);
        reader.seek(SeekFrom::Start(span.start as u64)).unwrap();
        let mut buffer = vec![0u8; span.len()];
        reader
            .read_exact(&mut buffer)
            .unwrap_or_else(|e| panic!("{format}: fragment-less read should complete: {e}"));
        assert_ne!(
            &buffer[..],
            &data[span.clone()],
            "{format}: the flip vanished from the output"
        );
        let statistics = reader.verification_statistics();
        assert_eq!(
            statistics.index_chunks_verified, 0,
            "{format}: {statistics:?}"
        );
        assert!(
            statistics.index_chunks_unverified > 0,
            "{format}: {statistics:?}"
        );
    }
}

#[test]
fn decompress_all_counts_each_index_chunk_exactly_once() {
    // Regression for the `index_chunks` double count: a chunk whose
    // prefetched data was consumed used to be counted again by the
    // surrounding bookkeeping.  After a full sequential read through an
    // imported index, the per-chunk counters must sum to the chunk count.
    let data = datagen::base64_random(800_000, 203);
    let compressed = GzipWriter::default().compress(&data);
    let index = build_index(&compressed);
    let chunk_count = index.block_map.len() as u64;

    for format in [IndexFormat::V2, IndexFormat::V3] {
        let imported = GzipIndex::import(&index.export_as(format)).unwrap();
        let mut reader = indexed_reader(&compressed, imported, VerificationMode::Full);
        assert_eq!(reader.decompress_all().unwrap(), data);
        let statistics = reader.statistics();
        assert_eq!(
            statistics.index_chunks, chunk_count,
            "{format:?}: {statistics:?}"
        );
        assert_eq!(
            statistics.index_chunks_verified + statistics.index_chunks_unverified,
            chunk_count,
            "{format:?}: {statistics:?}"
        );
    }
}

#[test]
fn a_lying_index_is_an_error_not_a_panic() {
    // Regression for the `data.len() - chunk_offset` underflow: an index
    // whose seek point claims a larger span than the chunk actually decodes
    // must surface as `IndexMismatch`, not an arithmetic panic.
    const N: u64 = 200_000;
    let data = datagen::silesia_like(2 * N as usize, 204);
    let compressed = GzipWriter::default().compress(&data);

    let mut index = GzipIndex::new();
    index.compressed_size = compressed.len() as u64;
    // Truthful point covering the real stream…
    index.add_seek_point(
        SeekPoint {
            compressed_bit_offset: 0,
            uncompressed_offset: 0,
            uncompressed_size: 2 * N,
        },
        &[],
    );
    // …and a lying one that claims the same chunk also covers 2N..5N.
    index.add_seek_point(
        SeekPoint {
            compressed_bit_offset: 0,
            uncompressed_offset: 2 * N,
            uncompressed_size: 3 * N,
        },
        &[],
    );
    index.uncompressed_size = 5 * N;

    // One whole-file chunk, so the truthful point really decodes its full
    // claimed span in a single piece.
    let mut reader = ParallelGzipReader::with_index(
        rapidgzip_suite::io::SharedFileReader::from_bytes(compressed.clone()),
        ParallelGzipReaderOptions {
            parallelization: 2,
            chunk_size: 4 << 20,
            resolved_cache_chunks: 1,
            ..Default::default()
        },
        index,
    )
    .unwrap();
    // The first read may fail outright: the index-aligned prefetcher plans
    // the *next* chunk, which is the lying point, and its own length check
    // rejects the decode.  Either way it must not panic, and it leaves the
    // prefetcher quiet for the population read below.
    let mut buffer = vec![0u8; 4096];
    let _ = reader.read(&mut buffer);
    // Populate the chunk cache through the truthful point, so the final
    // read hits the cached (shorter-than-claimed) data.
    reader.seek(SeekFrom::Start(0)).unwrap();
    reader.read_exact(&mut buffer).unwrap();
    assert_eq!(&buffer[..], &data[..4096]);

    reader.seek(SeekFrom::Start(4 * N + 10)).unwrap();
    let error = reader
        .read_exact(&mut buffer)
        .expect_err("lying index must error");
    assert!(
        error.to_string().contains("does not match"),
        "expected an index mismatch, got: {error}"
    );
}
