//! Corruption-injection and differential tests for the checksum
//! verification pipeline.
//!
//! The contract under test: with verification on (the default), a
//! single-bit flip anywhere in a compressed archive — member header, DEFLATE
//! payload, or trailer — must surface as an error (a decode error or a
//! [`CoreError::ChecksumMismatch`] naming the offending member), never as
//! silently wrong output.  With verification off the reader reproduces the
//! historical behaviour and the serial decoder byte-for-byte.

use proptest::prelude::*;
use rapidgzip_suite::checksum::crc32;
use rapidgzip_suite::core::{
    CoreError, ParallelGzipReader, ParallelGzipReaderOptions, VerificationMode,
};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::{
    decompress_with_info, CompressorFrontend, FrontendKind, GzipDecoder, GzipWriter, MemberInfo,
};

fn options(verification: VerificationMode) -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: 4,
        chunk_size: 32 * 1024,
        verification,
        ..Default::default()
    }
}

fn decompress_parallel(
    compressed: &[u8],
    verification: VerificationMode,
) -> Result<Vec<u8>, CoreError> {
    let mut reader =
        ParallelGzipReader::from_bytes(compressed.to_vec(), options(verification)).unwrap();
    reader.decompress_all()
}

/// The three corpora of the corruption sweep: a multi-member concatenation,
/// a BGZF-style file of many small members, and one single large member.
fn corpora() -> Vec<(&'static str, Vec<u8>, Vec<u8>)> {
    let part_a = datagen::base64_random(300_000, 101);
    let part_b = datagen::silesia_like(350_000, 102);
    let part_c = datagen::fastq_of_size(250_000, 103);
    let mut concatenated = part_a.clone();
    concatenated.extend_from_slice(&part_b);
    concatenated.extend_from_slice(&part_c);
    let multi_member = GzipWriter::default().compress_members(&[&part_a, &part_b, &part_c]);

    let bgzf_data = datagen::fastq_of_size(700_000, 104);
    let bgzf = CompressorFrontend::new(FrontendKind::Bgzf, 6).compress(&bgzf_data);

    let single_data = datagen::silesia_like(800_000, 105);
    let single = GzipWriter::default().compress(&single_data);

    vec![
        ("multi-member", multi_member, concatenated),
        ("bgzf", bgzf, bgzf_data),
        ("single-member", single, single_data),
    ]
}

/// Byte offsets to corrupt in `compressed`: one in a member header (a magic
/// byte, so the flip cannot be a no-op like MTIME), one in the middle of a
/// member's DEFLATE payload, and one in a member's trailer CRC.
fn injection_sites(members: &[MemberInfo]) -> Vec<(&'static str, usize)> {
    let member = &members[members.len() / 2];
    let header_byte = member.compressed_start as usize;
    let payload_middle = (member.compressed_start as usize + member.compressed_end as usize) / 2;
    let trailer_crc_byte = member.compressed_end as usize - 7;
    vec![
        ("header", header_byte),
        ("mid-member", payload_middle),
        ("trailer", trailer_crc_byte),
    ]
}

#[test]
fn single_bit_corruption_is_always_detected() {
    for (corpus, pristine, data) in corpora() {
        // Sanity: the pristine file verifies and round-trips.
        let restored = decompress_parallel(&pristine, VerificationMode::Full)
            .unwrap_or_else(|e| panic!("pristine {corpus} failed: {e}"));
        assert_eq!(restored, data, "pristine {corpus} corrupted");

        let (_, members) = decompress_with_info(&pristine).unwrap();
        for (site, byte) in injection_sites(&members) {
            for bit in [0u8, 5] {
                let mut corrupted = pristine.clone();
                corrupted[byte] ^= 1 << bit;
                let result = decompress_parallel(&corrupted, VerificationMode::Full);
                assert!(
                    result.is_err(),
                    "{corpus}/{site}: flipping bit {bit} of byte {byte} went undetected"
                );
            }
        }
    }
}

/// The corruption matrix re-run at the DEFLATE layer through the multi-symbol
/// fast path: for every corpus and injection site, the fast decoder and the
/// single-symbol reference decoder must stay bit-for-bit identical on the
/// corrupted member — same bytes and stream position when the flip decodes
/// (detection then falls to the checksum layer, asserted above), the same
/// error otherwise.  Note `single_bit_corruption_is_always_detected` already
/// drives the fast path end to end, since `inflate_hashed` decodes through it.
#[test]
fn corruption_matrix_fast_and_reference_decoders_agree() {
    use rapidgzip_suite::bitio::BitReader;
    use rapidgzip_suite::deflate::{inflate, inflate_single_symbol};
    use rapidgzip_suite::gzip::parse_header;

    for (corpus, pristine, _) in corpora() {
        let (_, members) = decompress_with_info(&pristine).unwrap();
        for (site, byte) in injection_sites(&members) {
            for bit in [0u8, 5] {
                let mut corrupted = pristine.clone();
                corrupted[byte] ^= 1 << bit;
                // Only the member containing the flip can decode differently.
                let member = members
                    .iter()
                    .find(|m| {
                        (m.compressed_start as usize..m.compressed_end as usize).contains(&byte)
                    })
                    .expect("injection sites lie within a member");
                let mut reader = BitReader::new(&corrupted);
                reader.seek_to_bit(member.compressed_start * 8).unwrap();
                if parse_header(&mut reader).is_err() {
                    // A header flip can make the member unparseable; there is
                    // no DEFLATE stream left to compare.
                    continue;
                }
                let deflate_start = reader.position();
                let mut fast_reader = reader.clone();
                let mut fast_out = Vec::new();
                let fast = inflate(&mut fast_reader, &[], &mut fast_out, u64::MAX);
                let mut reference_reader = BitReader::new(&corrupted);
                reference_reader.seek_to_bit(deflate_start).unwrap();
                let mut reference_out = Vec::new();
                let reference =
                    inflate_single_symbol(&mut reference_reader, &[], &mut reference_out, u64::MAX);
                let context = format!("{corpus}/{site}: bit {bit} of byte {byte}");
                match (fast, reference) {
                    (Ok(fast), Ok(reference)) => {
                        assert_eq!(fast_out, reference_out, "{context}: outputs diverge");
                        assert_eq!(
                            fast.end_position, reference.end_position,
                            "{context}: stream positions diverge"
                        );
                    }
                    (fast, reference) => {
                        assert_eq!(fast.err(), reference.err(), "{context}: errors diverge")
                    }
                }
            }
        }
    }
}

#[test]
fn trailer_crc_corruption_names_the_offending_member() {
    for (corpus, pristine, _) in corpora() {
        let (_, members) = decompress_with_info(&pristine).unwrap();
        let target = members.len() / 2;
        let mut corrupted = pristine.clone();
        // Trailer layout: 4 CRC bytes then 4 ISIZE bytes; flip one CRC bit.
        corrupted[members[target].compressed_end as usize - 6] ^= 0x20;
        match decompress_parallel(&corrupted, VerificationMode::Full) {
            Err(CoreError::ChecksumMismatch { member, .. }) => assert_eq!(
                member, target as u64,
                "{corpus}: mismatch attributed to the wrong member"
            ),
            other => panic!("{corpus}: expected a checksum mismatch, got {other:?}"),
        }
    }
}

#[test]
fn wrong_isize_is_detected_by_the_parallel_reader() {
    // Regression: ISIZE used to be parsed but never checked by the parallel
    // reader.  Corrupt only the ISIZE field so the CRC still matches.
    let data = datagen::base64_random(500_000, 106);
    let mut compressed = GzipWriter::default().compress(&data);
    let length = compressed.len();
    compressed[length - 2] ^= 0x01;
    match decompress_parallel(&compressed, VerificationMode::Full) {
        Err(CoreError::MemberSizeMismatch { member, actual, .. }) => {
            assert_eq!(member, 0);
            assert_eq!(actual, data.len() as u64);
        }
        other => panic!("expected an ISIZE mismatch, got {other:?}"),
    }
    // With verification off the data still comes back.
    assert_eq!(
        decompress_parallel(&compressed, VerificationMode::Off).unwrap(),
        data
    );
}

#[test]
fn verification_statistics_expose_the_stream_crc() {
    let data = datagen::fastq_of_size(600_000, 107);
    let compressed = CompressorFrontend::new(FrontendKind::Bgzf, 6).compress(&data);
    let mut reader =
        ParallelGzipReader::from_bytes(compressed, options(VerificationMode::Full)).unwrap();
    assert_eq!(reader.decompress_all().unwrap(), data);
    let statistics = reader.verification_statistics();
    assert!(statistics.members_verified > 1, "{statistics:?}");
    assert_eq!(statistics.bytes_verified, data.len() as u64);
    assert_eq!(statistics.chunks_pending, 0);
    assert_eq!(statistics.stream_crc32, crc32(&data));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn differential_verified_unverified_and_serial_agree(
        seed in any::<u64>(),
        corpus_kind in 0u8..3,
        frontend_kind in 0u8..4,
        size in 150_000usize..400_000,
    ) {
        let data = match corpus_kind {
            0 => datagen::base64_random(size, seed),
            1 => datagen::silesia_like(size, seed),
            _ => datagen::fastq_of_size(size, seed),
        };
        let frontend = CompressorFrontend::new(FrontendKind::all()[frontend_kind as usize], 6);
        let compressed = frontend.compress(&data);

        let serial = GzipDecoder::new().decompress(&compressed).unwrap();
        let verified = decompress_parallel(&compressed, VerificationMode::Full).unwrap();
        let unverified = decompress_parallel(&compressed, VerificationMode::Off).unwrap();
        prop_assert_eq!(&serial, &data);
        prop_assert_eq!(&verified, &data);
        prop_assert_eq!(&unverified, &data);

        // The folded stream CRC must equal a whole-buffer CRC of the output.
        let mut reader = ParallelGzipReader::from_bytes(
            compressed,
            options(VerificationMode::Full),
        ).unwrap();
        reader.decompress_all().unwrap();
        let statistics = reader.verification_statistics();
        prop_assert_eq!(statistics.stream_crc32, crc32(&data));
        prop_assert_eq!(statistics.bytes_verified, data.len() as u64);
        prop_assert!(statistics.members_verified >= 1);
    }
}
