//! A pugz-style parallel gzip decompressor (Kerbiriou & Chikhi, IPDPSW'19).
//!
//! This reproduces the baseline's *algorithm*, with its characteristic
//! limitations that rapidgzip removes (§1.2 of the paper):
//!
//! * chunks are assigned to threads with a **static uniform partition** of
//!   the compressed file, so varying compression ratios cause load imbalance;
//! * the whole file is decompressed in two stages: a fully parallel
//!   first stage into the 16-bit intermediate format, a sequential window
//!   propagation, and a parallel marker-replacement stage;
//! * the decompressed data must only contain byte values **9–126**; any
//!   other byte aborts decompression with [`PugzError::UnsupportedContent`];
//! * with `synchronized` output the chunks are concatenated in order (the
//!   mode whose scaling collapses in Figure 9); without it the caller
//!   receives the chunks in completion order.

use rgz_bitio::BitReader;
use rgz_blockfinder::{BlockFinder, PugzLikeFinder};
use rgz_deflate::{inflate, inflate_two_stage, replace_markers, resolve_window, StopReason};
use rgz_gzip::{parse_header, GzipError};

/// Errors of the pugz-style decompressor.
#[derive(Debug)]
pub enum PugzError {
    /// The gzip container was malformed.
    Gzip(GzipError),
    /// A DEFLATE stream was malformed.
    Deflate(rgz_deflate::DeflateError),
    /// The decompressed data contains bytes outside 9–126, which pugz cannot
    /// handle.
    UnsupportedContent { byte: u8 },
    /// No DEFLATE block could be found in a chunk.
    NoBlockFound { chunk_index: usize },
}

impl std::fmt::Display for PugzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PugzError::Gzip(e) => write!(f, "gzip error: {e}"),
            PugzError::Deflate(e) => write!(f, "deflate error: {e}"),
            PugzError::UnsupportedContent { byte } => write!(
                f,
                "decompressed data contains byte {byte:#04x}, outside the supported range 9-126"
            ),
            PugzError::NoBlockFound { chunk_index } => {
                write!(f, "no deflate block found in chunk {chunk_index}")
            }
        }
    }
}

impl std::error::Error for PugzError {}

impl From<GzipError> for PugzError {
    fn from(e: GzipError) -> Self {
        PugzError::Gzip(e)
    }
}

impl From<rgz_deflate::DeflateError> for PugzError {
    fn from(e: rgz_deflate::DeflateError) -> Self {
        PugzError::Deflate(e)
    }
}

/// Configuration of the pugz-style decompressor.
#[derive(Debug, Clone)]
pub struct PugzDecompressor {
    /// Number of decompression threads.
    pub threads: usize,
    /// Compressed chunk size per work item (pugz's default is 32 MiB; scaled
    /// down here because the benchmark corpora are smaller).
    pub chunk_size: usize,
    /// Whether the output must be produced in order (the `pugz (sync)` mode).
    pub synchronized: bool,
}

impl Default for PugzDecompressor {
    fn default() -> Self {
        Self {
            threads: 4,
            chunk_size: 4 * 1024 * 1024,
            synchronized: true,
        }
    }
}

struct StageOneChunk {
    chunk_index: usize,
    symbols: Vec<u16>,
}

impl PugzDecompressor {
    /// Decompresses a single-member gzip file, enforcing pugz's content
    /// restrictions.
    pub fn decompress(&self, compressed: &[u8]) -> Result<Vec<u8>, PugzError> {
        // Parse the gzip header to find the deflate stream start.
        let mut reader = BitReader::new(compressed);
        let header = parse_header(&mut reader)?;
        let deflate_start_bit = (header.header_size as u64) * 8;
        // pugz ignores the trailing footer; the deflate stream's final block
        // terminates decoding.
        let chunk_size_bits = (self.chunk_size as u64) * 8;
        let total_bits = compressed.len() as u64 * 8;

        // Static uniform partition of the compressed file.
        let mut boundaries: Vec<u64> = Vec::new();
        let mut boundary = deflate_start_bit;
        while boundary < total_bits {
            boundaries.push(boundary);
            boundary = (boundary / chunk_size_bits + 1) * chunk_size_bits;
        }
        let chunk_count = boundaries.len();
        let threads = self.threads.max(1);

        // Phase 0 (parallel): locate the first deflate block of each chunk.
        // Like pugz, threads synchronize on the found block offsets: chunk k
        // decodes from its found block to chunk k+1's found block, and the
        // last chunk decodes until the end of the stream.
        let finder = PugzLikeFinder::default();
        let found: Vec<Option<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|thread_index| {
                    let boundaries = &boundaries;
                    let finder = &finder;
                    scope.spawn(move || {
                        let mut outputs = Vec::new();
                        let mut chunk_index = thread_index;
                        while chunk_index < chunk_count {
                            let start = if chunk_index == 0 {
                                Some(deflate_start_bit)
                            } else {
                                finder
                                    .find_next(compressed, boundaries[chunk_index])
                                    .filter(|&offset| {
                                        boundaries
                                            .get(chunk_index + 1)
                                            .map(|&next| offset < next)
                                            .unwrap_or(true)
                                    })
                            };
                            outputs.push((chunk_index, start));
                            chunk_index += threads;
                        }
                        outputs
                    })
                })
                .collect();
            let mut found = vec![None; chunk_count];
            for handle in handles {
                for (index, start) in handle.join().expect("pugz worker panicked") {
                    found[index] = start;
                }
            }
            found
        });

        // Work items: (start bit, stop bit) pairs between consecutive founds.
        let mut work: Vec<(usize, u64, u64)> = Vec::new();
        let starts: Vec<(usize, u64)> = found
            .iter()
            .enumerate()
            .filter_map(|(index, start)| start.map(|s| (index, s)))
            .collect();
        for (position, &(index, start)) in starts.iter().enumerate() {
            let stop = starts
                .get(position + 1)
                .map(|&(_, next)| next)
                .unwrap_or(u64::MAX);
            if stop > start {
                work.push((index, start, stop));
            }
        }

        // Stage 1 (parallel, statically distributed): two-stage decode.
        let results: Vec<Result<Option<StageOneChunk>, PugzError>> = std::thread::scope(|scope| {
            let work = &work;
            let handles: Vec<_> = (0..threads)
                .map(|thread_index| {
                    scope.spawn(move || {
                        let mut outputs = Vec::new();
                        let mut item = thread_index;
                        while item < work.len() {
                            let (chunk_index, start, stop) = work[item];
                            outputs.push(decode_pugz_chunk(
                                compressed,
                                chunk_index,
                                start,
                                stop,
                                deflate_start_bit,
                            ));
                            item += threads;
                        }
                        outputs
                    })
                })
                .collect();
            let mut flat: Vec<Result<Option<StageOneChunk>, PugzError>> =
                Vec::with_capacity(work.len());
            for handle in handles {
                flat.extend(handle.join().expect("pugz worker panicked"));
            }
            flat
        });

        // Re-order by chunk index (the scope above interleaves them).
        let mut stage_one: Vec<Option<StageOneChunk>> = (0..chunk_count).map(|_| None).collect();
        for result in results {
            if let Some(chunk) = result? {
                let index = chunk.chunk_index;
                stage_one[index] = Some(chunk);
            }
        }

        // Stage 2: sequential window propagation, parallel marker replacement.
        let mut windows: Vec<Vec<u8>> = Vec::with_capacity(chunk_count);
        let mut window: Vec<u8> = Vec::new();
        for chunk in stage_one.iter().flatten() {
            windows.push(window.clone());
            window = resolve_window(&chunk.symbols, &window)?;
        }
        let present: Vec<&StageOneChunk> = stage_one.iter().flatten().collect();
        let resolved: Vec<Result<Vec<u8>, PugzError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = present
                .iter()
                .zip(&windows)
                .map(|(chunk, window)| {
                    scope.spawn(move || {
                        let bytes = replace_markers(&chunk.symbols, window)?;
                        for &byte in &bytes {
                            if !PugzLikeFinder::is_allowed_byte(byte) {
                                return Err(PugzError::UnsupportedContent { byte });
                            }
                        }
                        Ok(bytes)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("pugz worker panicked"))
                .collect()
        });

        // Output: ordered concatenation ("sync" mode) or completion order.
        let mut output = Vec::new();
        if self.synchronized {
            for chunk in resolved {
                output.extend_from_slice(&chunk?);
            }
        } else {
            // Unordered mode still returns all bytes, just without the
            // ordering guarantee; for testability we keep them ordered here
            // but skip the (serial) large copy by pre-reserving.
            let total: usize = present.iter().map(|c| c.symbols.len()).sum();
            output.reserve(total);
            for chunk in resolved {
                output.extend_from_slice(&chunk?);
            }
        }
        Ok(output)
    }
}

fn decode_pugz_chunk(
    compressed: &[u8],
    chunk_index: usize,
    start_bit: u64,
    stop_bit: u64,
    deflate_start_bit: u64,
) -> Result<Option<StageOneChunk>, PugzError> {
    let mut reader = BitReader::new(compressed);
    let mut symbols = Vec::new();
    reader
        .seek_to_bit(start_bit)
        .map_err(|_| PugzError::Gzip(GzipError::Truncated))?;

    if start_bit == deflate_start_bit {
        // The first chunk starts right after the gzip header with a known
        // (empty) window, so it can decode in one-stage mode; emitting it as
        // 16-bit symbols keeps the pipeline uniform.
        let mut bytes = Vec::new();
        inflate(&mut reader, &[], &mut bytes, stop_bit)?;
        symbols.extend(bytes.iter().map(|&b| b as u16));
        return Ok(Some(StageOneChunk {
            chunk_index,
            symbols,
        }));
    }

    // Later chunks: decode from the found block in two-stage mode until the
    // next chunk's found block (or the end of the stream for the last one).
    let outcome = inflate_two_stage(&mut reader, &mut symbols, stop_bit)?;
    match outcome.stop_reason {
        StopReason::StopOffsetReached | StopReason::EndOfStream => {}
        StopReason::EndOfInput => {}
    }
    Ok(Some(StageOneChunk {
        chunk_index,
        symbols,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_datagen::{base64_random, fastq_records, silesia_like};
    use rgz_gzip::GzipWriter;

    #[test]
    fn decodes_ascii_only_data() {
        let data = base64_random(2_000_000, 21);
        let compressed = GzipWriter::default().compress(&data);
        let decompressor = PugzDecompressor {
            threads: 4,
            chunk_size: 64 * 1024,
            synchronized: true,
        };
        assert_eq!(decompressor.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn decodes_fastq_data_like_the_original_tool() {
        let data = fastq_records(10_000, 33);
        let compressed = GzipWriter::default().compress(&data);
        let decompressor = PugzDecompressor {
            threads: 3,
            chunk_size: 128 * 1024,
            synchronized: false,
        };
        assert_eq!(decompressor.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn rejects_binary_content() {
        // The Silesia-like corpus contains bytes outside 9..=126, which pugz
        // refuses to decompress (this is exactly why Figure 10 has no pugz
        // series).
        let data = silesia_like(1_500_000, 5);
        assert!(data.iter().any(|&b| !PugzLikeFinder::is_allowed_byte(b)));
        let compressed = GzipWriter::default().compress(&data);
        let decompressor = PugzDecompressor {
            threads: 4,
            chunk_size: 64 * 1024,
            synchronized: true,
        };
        match decompressor.decompress(&compressed) {
            Err(PugzError::UnsupportedContent { .. }) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(result) => {
                // Only the first chunk is decoded in one-stage mode without a
                // content check; if everything fit in one chunk the data may
                // come back — that would defeat the test setup.
                assert_ne!(result, data, "test corpus too small to exercise chunking");
            }
        }
    }

    #[test]
    fn single_threaded_configuration_works() {
        let data = base64_random(300_000, 77);
        let compressed = GzipWriter::default().compress(&data);
        let decompressor = PugzDecompressor {
            threads: 1,
            chunk_size: 32 * 1024,
            synchronized: true,
        };
        assert_eq!(decompressor.decompress(&compressed).unwrap(), data);
    }
}
