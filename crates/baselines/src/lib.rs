//! Baseline (de)compressors the paper compares rapidgzip against.
//!
//! * [`pugz`] — a faithful re-implementation of the *algorithmic* behaviour
//!   of pugz (Kerbiriou & Chikhi): static uniform chunk partitioning,
//!   two-stage decompression, and the requirement that the decompressed data
//!   only contains byte values 9–126.
//! * [`framezip`] — a minimal frame-based container standing in for
//!   Zstandard/pzstd in Table 4: a single-frame file cannot be decompressed
//!   in parallel, a multi-frame file can (see DESIGN.md, substitutions).
//! * [`bgzf_parallel`] — a parallel BGZF decompressor using the `BC` extra
//!   field to jump between members, emulating `bgzip -@`.
//!
//! The single-threaded "GNU gzip" baseline is `rgz_gzip::GzipDecoder`.

pub mod bgzf_parallel;
pub mod framezip;
pub mod pugz;

pub use bgzf_parallel::decompress_bgzf_parallel;
pub use framezip::{FramezipDecompressor, FramezipError, FramezipWriter};
pub use pugz::{PugzDecompressor, PugzError};
