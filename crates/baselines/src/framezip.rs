//! `framezip` — a minimal frame-based compression container standing in for
//! Zstandard / pzstd in the Table 4 comparison.
//!
//! Zstandard itself is out of scope for this reproduction (see DESIGN.md);
//! what Table 4 actually demonstrates is *structural*: frame-based formats
//! can only be decompressed in parallel when the file was specially prepared
//! with many frames (as `pzstd` does when compressing), whereas rapidgzip
//! parallelizes arbitrary gzip files.  `framezip` reproduces exactly that
//! property with a simple container around raw DEFLATE frames:
//!
//! ```text
//! file  := magic "FZF1" , frame*
//! frame := "FR" , compressed_size:u32le , uncompressed_size:u32le , deflate
//! ```
//!
//! * [`FramezipWriter::compress_single_frame`] emulates `zstd` (one frame);
//! * [`FramezipWriter::compress_multi_frame`] emulates `pzstd` compression;
//! * [`FramezipDecompressor`] decompresses either, using as many threads as
//!   there are frames to work on (like `pzstd -d`).

use rgz_bitio::BitReader;
use rgz_deflate::{inflate, CompressorOptions, DeflateCompressor, DeflateError};

const FILE_MAGIC: &[u8; 4] = b"FZF1";
const FRAME_MAGIC: &[u8; 2] = b"FR";

/// Errors of the framezip codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramezipError {
    /// Missing or wrong file magic.
    BadMagic,
    /// A frame header was malformed or truncated.
    BadFrame { offset: usize },
    /// A frame's payload failed to decompress.
    Deflate(DeflateError),
    /// A frame decompressed to a size different from its header.
    SizeMismatch { expected: u32, actual: u64 },
}

impl std::fmt::Display for FramezipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramezipError::BadMagic => write!(f, "not a framezip file"),
            FramezipError::BadFrame { offset } => write!(f, "malformed frame at byte {offset}"),
            FramezipError::Deflate(e) => write!(f, "frame payload error: {e}"),
            FramezipError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "frame decompressed to {actual} bytes, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for FramezipError {}

impl From<DeflateError> for FramezipError {
    fn from(e: DeflateError) -> Self {
        FramezipError::Deflate(e)
    }
}

/// Writes framezip files.
#[derive(Debug, Clone, Default)]
pub struct FramezipWriter {
    options: CompressorOptions,
}

impl FramezipWriter {
    /// Creates a writer with explicit compressor options.
    pub fn new(options: CompressorOptions) -> Self {
        Self { options }
    }

    fn write_frame(&self, out: &mut Vec<u8>, chunk: &[u8]) {
        let compressed = DeflateCompressor::new(self.options.clone()).compress(chunk);
        out.extend_from_slice(FRAME_MAGIC);
        out.extend_from_slice(&(compressed.len() as u32).to_le_bytes());
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        out.extend_from_slice(&compressed);
    }

    /// Compresses everything into one frame — what plain `zstd` does, and
    /// therefore what `pzstd -d` cannot parallelize (Table 4, "zstd" rows).
    pub fn compress_single_frame(&self, data: &[u8]) -> Vec<u8> {
        let mut out = FILE_MAGIC.to_vec();
        self.write_frame(&mut out, data);
        out
    }

    /// Compresses into independent frames of `frame_size` input bytes — what
    /// `pzstd` produces (Table 4, "pzstd" rows).
    pub fn compress_multi_frame(&self, data: &[u8], frame_size: usize) -> Vec<u8> {
        assert!(frame_size > 0);
        let mut out = FILE_MAGIC.to_vec();
        if data.is_empty() {
            self.write_frame(&mut out, &[]);
            return out;
        }
        for chunk in data.chunks(frame_size) {
            self.write_frame(&mut out, chunk);
        }
        out
    }
}

/// Decompresses framezip files, in parallel across frames.
#[derive(Debug, Clone)]
pub struct FramezipDecompressor {
    /// Number of worker threads.
    pub threads: usize,
}

impl Default for FramezipDecompressor {
    fn default() -> Self {
        Self { threads: 4 }
    }
}

struct FrameInfo {
    payload_start: usize,
    payload_length: usize,
    uncompressed_size: u32,
}

impl FramezipDecompressor {
    /// Lists the frames of a framezip file without decompressing them.
    fn scan(data: &[u8]) -> Result<Vec<FrameInfo>, FramezipError> {
        if data.len() < 4 || &data[..4] != FILE_MAGIC {
            return Err(FramezipError::BadMagic);
        }
        let mut frames = Vec::new();
        let mut offset = 4usize;
        while offset < data.len() {
            let header = data
                .get(offset..offset + 10)
                .ok_or(FramezipError::BadFrame { offset })?;
            if &header[..2] != FRAME_MAGIC {
                return Err(FramezipError::BadFrame { offset });
            }
            let compressed_size = u32::from_le_bytes(header[2..6].try_into().unwrap()) as usize;
            let uncompressed_size = u32::from_le_bytes(header[6..10].try_into().unwrap());
            let payload_start = offset + 10;
            if payload_start + compressed_size > data.len() {
                return Err(FramezipError::BadFrame { offset });
            }
            frames.push(FrameInfo {
                payload_start,
                payload_length: compressed_size,
                uncompressed_size,
            });
            offset = payload_start + compressed_size;
        }
        Ok(frames)
    }

    /// Number of frames in a framezip file.
    pub fn frame_count(data: &[u8]) -> Result<usize, FramezipError> {
        Ok(Self::scan(data)?.len())
    }

    /// Decompresses a framezip file.  Parallelism is limited by the number of
    /// frames: a single-frame file decompresses on one thread no matter how
    /// many are configured.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, FramezipError> {
        let frames = Self::scan(data)?;
        let workers = self.threads.max(1).min(frames.len().max(1));

        let results: Vec<Result<Vec<u8>, FramezipError>> = std::thread::scope(|scope| {
            let frames = &frames;
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut outputs = Vec::new();
                        let mut index = worker;
                        while index < frames.len() {
                            outputs.push((index, decompress_frame(data, &frames[index])));
                            index += workers;
                        }
                        outputs
                    })
                })
                .collect();
            let mut collected: Vec<Option<Result<Vec<u8>, FramezipError>>> =
                (0..frames.len()).map(|_| None).collect();
            for handle in handles {
                for (index, result) in handle.join().expect("framezip worker panicked") {
                    collected[index] = Some(result);
                }
            }
            collected.into_iter().map(|r| r.unwrap()).collect()
        });

        let mut out = Vec::new();
        for result in results {
            out.extend_from_slice(&result?);
        }
        Ok(out)
    }
}

fn decompress_frame(data: &[u8], frame: &FrameInfo) -> Result<Vec<u8>, FramezipError> {
    let payload = &data[frame.payload_start..frame.payload_start + frame.payload_length];
    let mut reader = BitReader::new(payload);
    let mut out = Vec::with_capacity(frame.uncompressed_size as usize);
    inflate(&mut reader, &[], &mut out, u64::MAX)?;
    if out.len() as u64 != frame.uncompressed_size as u64 {
        return Err(FramezipError::SizeMismatch {
            expected: frame.uncompressed_size,
            actual: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_datagen::silesia_like;

    #[test]
    fn single_frame_round_trips() {
        let data = silesia_like(800_000, 40);
        let compressed = FramezipWriter::default().compress_single_frame(&data);
        assert_eq!(FramezipDecompressor::frame_count(&compressed).unwrap(), 1);
        let restored = FramezipDecompressor { threads: 8 }
            .decompress(&compressed)
            .unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn multi_frame_round_trips_and_has_many_frames() {
        let data = silesia_like(1_200_000, 41);
        let compressed = FramezipWriter::default().compress_multi_frame(&data, 128 * 1024);
        let frames = FramezipDecompressor::frame_count(&compressed).unwrap();
        assert_eq!(frames, data.len().div_ceil(128 * 1024));
        for threads in [1, 2, 8] {
            let restored = FramezipDecompressor { threads }
                .decompress(&compressed)
                .unwrap();
            assert_eq!(restored, data, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_round_trips() {
        let compressed = FramezipWriter::default().compress_multi_frame(&[], 1024);
        assert_eq!(
            FramezipDecompressor::default()
                .decompress(&compressed)
                .unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn corruption_is_detected() {
        let data = silesia_like(200_000, 42);
        let compressed = FramezipWriter::default().compress_multi_frame(&data, 64 * 1024);
        assert_eq!(
            FramezipDecompressor::default().decompress(b"NOPE"),
            Err(FramezipError::BadMagic)
        );
        let mut truncated = compressed.clone();
        truncated.truncate(compressed.len() - 10);
        assert!(matches!(
            FramezipDecompressor::default().decompress(&truncated),
            Err(FramezipError::BadFrame { .. })
        ));
        let mut flipped = compressed.clone();
        flipped[5] ^= 0xFF; // inside the first frame header
        assert!(FramezipDecompressor::default()
            .decompress(&flipped)
            .is_err());
    }
}
