//! Parallel BGZF decompression (what `bgzip --threads` does).
//!
//! BGZF members carry their compressed size in the `BC` extra field, so a
//! reader can partition the file into members without decoding anything and
//! decompress the members fully independently — the trivially parallel
//! special case that rapidgzip generalises to arbitrary gzip files.

use rgz_gzip::bgzf::block_offsets;
use rgz_gzip::{GzipDecoder, GzipError};

/// Decompresses a BGZF file using `threads` worker threads.
///
/// Fails with [`GzipError::TrailingGarbage`] if the file is a plain gzip
/// file without the BGZF `BC` metadata (mirroring `bgzip`, which cannot
/// parallelize such files).
pub fn decompress_bgzf_parallel(data: &[u8], threads: usize) -> Result<Vec<u8>, GzipError> {
    let offsets = block_offsets(data)?;
    let mut boundaries = offsets.clone();
    boundaries.push(data.len() as u64);

    let decoder = GzipDecoder::new();
    let workers = threads.max(1).min(offsets.len().max(1));
    let results: Vec<Result<Vec<u8>, GzipError>> = std::thread::scope(|scope| {
        let boundaries = &boundaries;
        let decoder = &decoder;
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    let mut outputs = Vec::new();
                    let mut index = worker;
                    while index + 1 < boundaries.len() {
                        let start = boundaries[index] as usize;
                        let end = boundaries[index + 1] as usize;
                        outputs.push((index, decoder.decompress(&data[start..end])));
                        index += workers;
                    }
                    outputs
                })
            })
            .collect();
        let mut collected: Vec<Option<Result<Vec<u8>, GzipError>>> =
            (0..offsets.len()).map(|_| None).collect();
        for handle in handles {
            for (index, result) in handle.join().expect("bgzf worker panicked") {
                collected[index] = Some(result);
            }
        }
        collected.into_iter().map(|r| r.unwrap()).collect()
    });

    let mut out = Vec::new();
    for result in results {
        out.extend_from_slice(&result?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_datagen::silesia_like;
    use rgz_gzip::{BgzfWriter, GzipWriter};

    #[test]
    fn parallel_bgzf_matches_serial_decoding() {
        let data = silesia_like(900_000, 50);
        let compressed = BgzfWriter::default().compress(&data);
        for threads in [1, 2, 8] {
            assert_eq!(
                decompress_bgzf_parallel(&compressed, threads).unwrap(),
                data,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn plain_gzip_files_are_rejected() {
        let data = silesia_like(100_000, 51);
        let compressed = GzipWriter::default().compress(&data);
        assert!(decompress_bgzf_parallel(&compressed, 4).is_err());
    }

    #[test]
    fn empty_payload_works() {
        let compressed = BgzfWriter::default().compress(&[]);
        assert_eq!(
            decompress_bgzf_parallel(&compressed, 4).unwrap(),
            Vec::<u8>::new()
        );
    }
}
