//! Chunk-parallel gzip compression with index-at-compress-time.
//!
//! The read path reconstructs member boundaries, seek points and CRC
//! fragments *after the fact* by decoding the stream; the write path knows
//! all of them up front.  This crate fans independent input chunks across
//! the [`rgz_fetcher::ThreadPool`], encodes each with the shared
//! [`rgz_deflate`] compressor (one reusable [`HtMatchFinder`] per worker
//! thread), and stitches the results into one of two container layouts:
//!
//! * **Pigz-style** ([`ContainerFormat::Pigz`]) — multi-member gzip.  Each
//!   member holds `member_size` input bytes compressed as several
//!   independent chunks separated by empty stored blocks (pigz's sync
//!   marker, which is also what makes the members friendly to the
//!   speculative block finder).  The member trailer CRC-32 is folded from
//!   the chunk CRCs with [`crc32_combine`], so no thread ever hashes bytes
//!   it did not compress.
//! * **BGZF-style** ([`ContainerFormat::Bgzf`]) — fixed 64 KiB-input blocks,
//!   each a complete gzip member carrying the `BC` extra subfield, closed by
//!   the canonical EOF block.
//!
//! Because members are compressed independently, every seek point starts
//! with an empty window; the emitted [`GzipIndex`] is therefore complete
//! (seek points, per-span CRC fragments, stream sizes) the moment
//! compression finishes and exports losslessly as index v3 — random access
//! through it is verified from the first read, no sequential pass needed.

use std::cell::RefCell;
use std::sync::Arc;

use rgz_bitio::BitWriter;
use rgz_checksum::{crc32, crc32_combine};
pub use rgz_deflate::CompressionLevel;
use rgz_deflate::{write_stored_block, CompressorOptions, DeflateCompressor, HtMatchFinder};
use rgz_fetcher::ThreadPool;
use rgz_gzip::bgzf::MAX_BGZF_INPUT_BLOCK;
use rgz_gzip::{GzipFooter, GzipHeader, BGZF_EOF_BLOCK, OS_UNIX};
use rgz_index::{GzipIndex, PointChecksums, SeekPoint};
use rgz_metrics::{exponential_buckets, names, Counter, Histogram, MetricsRegistry};

/// Serialized size of the fixed BGZF member header (10 base bytes + 2-byte
/// XLEN + 6-byte `BC` subfield).
const BGZF_HEADER_SIZE: usize = 18;
/// Serialized size of the minimal gzip header pigz-style members use.
const PIGZ_HEADER_SIZE: usize = 10;

/// Container layout of the compressed output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContainerFormat {
    /// Multi-member gzip with empty-stored-block sync points, like `pigz`
    /// with `--independent`.
    #[default]
    Pigz,
    /// Blocked GNU Zip Format: 64 KiB-input members with the `BC` extra
    /// subfield, like `bgzip`.
    Bgzf,
}

/// Options controlling a [`ParallelCompressor`].
#[derive(Debug, Clone)]
pub struct ParallelCompressorOptions {
    /// Match-finding effort (chain depth, lazy evaluation).
    pub level: CompressionLevel,
    /// Output container layout.
    pub container: ContainerFormat,
    /// Input bytes per parallel work unit.  In pigz mode this is also the
    /// spacing of the empty stored sync blocks inside a member; in BGZF mode
    /// it is rounded down to a whole number of 64 KiB blocks per seek point.
    pub chunk_size: usize,
    /// Input bytes per gzip member (pigz mode only).  Rounded up to a whole
    /// number of chunks per member; also the seek-point spacing.
    pub member_size: usize,
    /// Worker threads; 0 means one per available core.
    pub parallelization: usize,
    /// MTIME field of the emitted gzip headers (0 keeps output
    /// deterministic).
    pub modification_time: u32,
}

impl Default for ParallelCompressorOptions {
    fn default() -> Self {
        Self {
            level: CompressionLevel::Default,
            container: ContainerFormat::Pigz,
            chunk_size: 128 * 1024,
            member_size: 2 * 1024 * 1024,
            parallelization: 0,
            modification_time: 0,
        }
    }
}

/// The result of a parallel compression run.
#[derive(Debug)]
pub struct CompressedStream {
    /// The complete gzip/BGZF file contents.
    pub bytes: Vec<u8>,
    /// A complete native index (seek points, CRC fragments, stream sizes)
    /// captured during compression; exports losslessly as index v3.
    pub index: GzipIndex,
    /// Number of gzip members written (including the BGZF EOF block).
    pub members: usize,
    /// Number of independently compressed chunks.
    pub chunks: usize,
}

/// Registry handles for the write path; disconnected unless a registry is
/// attached with [`ParallelCompressor::with_metrics`].
struct CompressMetrics {
    chunks: Counter,
    members: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    encode_seconds: Histogram,
}

impl CompressMetrics {
    fn disconnected() -> Self {
        Self {
            chunks: Counter::disconnected(),
            members: Counter::disconnected(),
            bytes_in: Counter::disconnected(),
            bytes_out: Counter::disconnected(),
            encode_seconds: Histogram::disconnected(),
        }
    }

    fn register(registry: &MetricsRegistry) -> Self {
        Self {
            chunks: registry.counter(
                names::COMPRESS_CHUNKS,
                "Independently compressed chunks written",
            ),
            members: registry.counter(
                names::COMPRESS_MEMBERS,
                "Gzip members written (including the BGZF EOF block)",
            ),
            bytes_in: registry.counter(
                names::COMPRESS_BYTES_IN,
                "Uncompressed input bytes consumed",
            ),
            bytes_out: registry.counter(
                names::COMPRESS_BYTES_OUT,
                "Compressed container bytes produced (headers and trailers included)",
            ),
            encode_seconds: registry.histogram(
                names::COMPRESS_ENCODE_SECONDS,
                "Worker-side chunk/span encode latency in seconds",
                &exponential_buckets(0.000_1, 4.0, 10),
            ),
        }
    }
}

/// A chunk-parallel gzip/BGZF compressor.
pub struct ParallelCompressor {
    options: ParallelCompressorOptions,
    pool: Arc<ThreadPool>,
    metrics: CompressMetrics,
}

thread_local! {
    /// One match finder per worker thread, reused across chunks so the
    /// 256 KiB hash-chain state is allocated once per thread, not once per
    /// chunk.
    static FINDER: RefCell<Option<HtMatchFinder>> = const { RefCell::new(None) };
}

/// One compressed chunk coming back from a worker.
struct EncodedChunk {
    bytes: Vec<u8>,
    crc32: u32,
    length: u64,
}

/// One compressed BGZF span (a run of complete BGZF members).
struct EncodedSpan {
    bytes: Vec<u8>,
    /// Per-member `(crc32, input length)` pairs, in stream order.
    blocks: Vec<(u32, u64)>,
}

impl ParallelCompressor {
    /// Creates a compressor with its own thread pool.
    pub fn new(options: ParallelCompressorOptions) -> Self {
        let threads = if options.parallelization == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            options.parallelization
        };
        Self::with_pool(options, Arc::new(ThreadPool::new(threads)))
    }

    /// Creates a compressor on a caller-provided pool (shared with other
    /// pipelines, e.g. a reader's).
    pub fn with_pool(options: ParallelCompressorOptions, pool: Arc<ThreadPool>) -> Self {
        assert!(options.chunk_size > 0, "chunk_size must be non-zero");
        assert!(options.member_size > 0, "member_size must be non-zero");
        Self {
            options,
            pool,
            metrics: CompressMetrics::disconnected(),
        }
    }

    /// Attaches a metrics registry: chunk/member counts, input/output byte
    /// totals and worker-side encode latency are recorded on it.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = CompressMetrics::register(registry);
        self
    }

    /// The effective options.
    pub fn options(&self) -> &ParallelCompressorOptions {
        &self.options
    }

    /// Compresses `data`, returning the container bytes plus the index
    /// captured along the way.
    pub fn compress(&self, data: &[u8]) -> CompressedStream {
        self.compress_shared(Arc::from(data))
    }

    /// Like [`ParallelCompressor::compress`] but takes shared ownership, so
    /// large inputs are not copied into the worker closures.
    pub fn compress_shared(&self, data: Arc<[u8]>) -> CompressedStream {
        match self.options.container {
            ContainerFormat::Pigz => self.compress_pigz(data),
            ContainerFormat::Bgzf => self.compress_bgzf(data),
        }
    }

    /// Pigz-style layout: members of `member_size` input bytes, each a run
    /// of independently compressed chunks glued by empty stored blocks, with
    /// one seek point per member.
    fn compress_pigz(&self, data: Arc<[u8]>) -> CompressedStream {
        let chunk_size = self.options.chunk_size;
        let member_size = self.options.member_size.max(chunk_size);
        let total = data.len();
        let member_count = total.div_ceil(member_size).max(1);
        let compressor_options = self.deflate_options(chunk_size);

        // Submit every chunk before collecting anything: the stitch below
        // waits in stream order while workers keep draining the queue.
        let mut members = Vec::with_capacity(member_count);
        for member in 0..member_count {
            let member_start = member * member_size;
            let member_end = (member_start + member_size).min(total);
            let mut handles = Vec::new();
            let mut start = member_start;
            loop {
                let end = (start + chunk_size).min(member_end);
                let terminate = end == member_end;
                let data = Arc::clone(&data);
                let options = compressor_options.clone();
                let encode_seconds = self.metrics.encode_seconds.clone();
                handles.push(self.pool.submit(move || {
                    let _timer = encode_seconds.start_timer();
                    encode_chunk(&options, &data[start..end], terminate)
                }));
                if terminate {
                    break;
                }
                start = end;
            }
            members.push(handles);
        }

        let mut out = Vec::with_capacity(total / 3 + 256);
        let mut index = GzipIndex::new();
        let mut uncompressed_offset = 0u64;
        let mut chunks = 0usize;
        for (member, handles) in members.into_iter().enumerate() {
            let header = GzipHeader {
                modification_time: self.options.modification_time,
                extra_flags: level_xfl(self.options.level),
                operating_system: OS_UNIX,
                ..Default::default()
            };
            let header_bytes = header.to_bytes();
            debug_assert_eq!(header_bytes.len(), PIGZ_HEADER_SIZE);
            out.extend_from_slice(&header_bytes);
            // The seek point targets the first DEFLATE block, which is what
            // the reader's random-access decode expects (it only parses a
            // member header when crossing into the *next* member).
            let first_block_bit = out.len() as u64 * 8;

            let mut member_crc = 0u32;
            let mut member_length = 0u64;
            for handle in handles {
                let encoded = handle.wait();
                member_crc = if member_length == 0 {
                    encoded.crc32
                } else {
                    crc32_combine(member_crc, encoded.crc32, encoded.length)
                };
                member_length += encoded.length;
                out.extend_from_slice(&encoded.bytes);
                chunks += 1;
            }
            let footer = GzipFooter {
                crc32: member_crc,
                uncompressed_size: member_length as u32,
            };
            out.extend_from_slice(&footer.to_bytes());

            index.block_map.push(SeekPoint {
                compressed_bit_offset: first_block_bit,
                uncompressed_offset,
                uncompressed_size: member_length,
            });
            index.checksum_map.insert(
                first_block_bit,
                PointChecksums::from_fragments(member as u64, [(member_crc, member_length)]),
            );
            uncompressed_offset += member_length;
        }
        index.compressed_size = out.len() as u64;
        index.uncompressed_size = total as u64;

        self.metrics.chunks.add(chunks as u64);
        self.metrics.members.add(member_count as u64);
        self.metrics.bytes_in.add(total as u64);
        self.metrics.bytes_out.add(out.len() as u64);
        CompressedStream {
            bytes: out,
            index,
            members: member_count,
            chunks,
        }
    }

    /// BGZF layout: every 64 KiB-input block is a complete member; one seek
    /// point (and one parallel work unit) covers `chunk_size` worth of
    /// blocks, with per-member CRC fragments.
    fn compress_bgzf(&self, data: Arc<[u8]>) -> CompressedStream {
        let blocks_per_span = (self.options.chunk_size / MAX_BGZF_INPUT_BLOCK).max(1);
        let span_input = blocks_per_span * MAX_BGZF_INPUT_BLOCK;
        let total = data.len();
        let span_count = total.div_ceil(span_input).max(1);
        let compressor_options = self.deflate_options(MAX_BGZF_INPUT_BLOCK);
        let modification_time = self.options.modification_time;
        let extra_flags = level_xfl(self.options.level);

        let mut handles = Vec::with_capacity(span_count);
        for span in 0..span_count {
            let start = span * span_input;
            let end = (start + span_input).min(total);
            let data = Arc::clone(&data);
            let options = compressor_options.clone();
            let encode_seconds = self.metrics.encode_seconds.clone();
            handles.push(self.pool.submit(move || {
                let _timer = encode_seconds.start_timer();
                encode_bgzf_span(&options, &data[start..end], modification_time, extra_flags)
            }));
        }

        let mut out = Vec::with_capacity(total / 3 + 256);
        let mut index = GzipIndex::new();
        let mut uncompressed_offset = 0u64;
        let mut member = 0u64;
        let mut chunks = 0usize;
        for handle in handles {
            let span = handle.wait();
            let first_block_bit = (out.len() + BGZF_HEADER_SIZE) as u64 * 8;
            let span_size: u64 = span.blocks.iter().map(|&(_, length)| length).sum();
            index.block_map.push(SeekPoint {
                compressed_bit_offset: first_block_bit,
                uncompressed_offset,
                uncompressed_size: span_size,
            });
            index.checksum_map.insert(
                first_block_bit,
                PointChecksums::from_fragments(member, span.blocks.iter().copied()),
            );
            out.extend_from_slice(&span.bytes);
            member += span.blocks.len() as u64;
            chunks += span.blocks.len();
            uncompressed_offset += span_size;
        }
        out.extend_from_slice(&BGZF_EOF_BLOCK);
        index.compressed_size = out.len() as u64;
        index.uncompressed_size = total as u64;

        self.metrics.chunks.add(chunks as u64);
        self.metrics.members.add(member + 1);
        self.metrics.bytes_in.add(total as u64);
        self.metrics.bytes_out.add(out.len() as u64);
        CompressedStream {
            bytes: out,
            index,
            members: member as usize + 1, // + EOF block
            chunks,
        }
    }

    fn deflate_options(&self, block_size: usize) -> CompressorOptions {
        CompressorOptions {
            level: self.options.level,
            block_size,
            force_dynamic: false,
        }
    }
}

/// Maps the compression level onto the gzip XFL hint (2 = maximum
/// compression, 4 = fastest).
fn level_xfl(level: CompressionLevel) -> u8 {
    match level {
        CompressionLevel::Best => 2,
        CompressionLevel::Stored | CompressionLevel::Huffman | CompressionLevel::Fast => 4,
        CompressionLevel::Default => 0,
    }
}

/// Runs `body` with this worker thread's reusable match finder.
fn with_finder<R>(level: CompressionLevel, body: impl FnOnce(&mut HtMatchFinder) -> R) -> R {
    FINDER.with(|cell| {
        let mut slot = cell.borrow_mut();
        let finder = slot.get_or_insert_with(|| HtMatchFinder::new(level));
        body(finder)
    })
}

/// Worker-side chunk encode for the pigz layout: a byte-aligned DEFLATE
/// fragment ending in an empty stored block (final when `terminate` closes
/// the member's stream), plus the chunk's CRC-32.
fn encode_chunk(options: &CompressorOptions, data: &[u8], terminate: bool) -> EncodedChunk {
    let compressor = DeflateCompressor::new(options.clone());
    let mut writer = BitWriter::with_capacity(data.len() / 3 + 64);
    with_finder(options.level, |finder| {
        compressor.compress_into_with(data, &mut writer, false, finder);
    });
    write_stored_block(&mut writer, &[], terminate);
    EncodedChunk {
        bytes: writer.finish(),
        crc32: crc32(data),
        length: data.len() as u64,
    }
}

/// Worker-side span encode for the BGZF layout: a run of complete BGZF
/// members (header with `BC` subfield, finalized DEFLATE stream, trailer).
fn encode_bgzf_span(
    options: &CompressorOptions,
    data: &[u8],
    modification_time: u32,
    extra_flags: u8,
) -> EncodedSpan {
    let compressor = DeflateCompressor::new(options.clone());
    let mut bytes = Vec::with_capacity(data.len() / 3 + 128);
    let mut blocks = Vec::new();
    let mut remaining = data;
    loop {
        let take = remaining.len().min(MAX_BGZF_INPUT_BLOCK);
        let (block, rest) = remaining.split_at(take);
        remaining = rest;

        let mut writer = BitWriter::with_capacity(block.len() / 3 + 64);
        with_finder(options.level, |finder| {
            compressor.compress_into_with(block, &mut writer, true, finder);
        });
        let deflate = writer.finish();

        let header = GzipHeader {
            modification_time,
            extra_flags,
            operating_system: OS_UNIX,
            extra_field: Some(vec![b'B', b'C', 2, 0, 0, 0]),
            ..Default::default()
        };
        let mut header_bytes = header.to_bytes();
        debug_assert_eq!(header_bytes.len(), BGZF_HEADER_SIZE);
        let total_size = header_bytes.len() + deflate.len() + 8;
        assert!(total_size <= u16::MAX as usize + 1, "BGZF block too large");
        // Patch BSIZE (total member size - 1) into the last two bytes of the
        // extra field.
        let bsize_position = header_bytes.len() - 2;
        header_bytes[bsize_position..].copy_from_slice(&((total_size - 1) as u16).to_le_bytes());

        let block_crc = crc32(block);
        bytes.extend_from_slice(&header_bytes);
        bytes.extend_from_slice(&deflate);
        bytes.extend_from_slice(
            &GzipFooter {
                crc32: block_crc,
                uncompressed_size: block.len() as u32,
            }
            .to_bytes(),
        );
        blocks.push((block_crc, block.len() as u64));

        if remaining.is_empty() {
            break;
        }
    }
    EncodedSpan { bytes, blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_gzip::{decompress, decompress_with_info, is_bgzf_header};

    fn options(container: ContainerFormat) -> ParallelCompressorOptions {
        ParallelCompressorOptions {
            container,
            chunk_size: 16 * 1024,
            member_size: 64 * 1024,
            parallelization: 3,
            ..Default::default()
        }
    }

    fn text_corpus(size: usize) -> Vec<u8> {
        (0..)
            .flat_map(|i: u32| format!("record {:06} | {}\n", i, i % 977).into_bytes())
            .take(size)
            .collect()
    }

    #[test]
    fn pigz_output_round_trips_through_the_serial_decoder() {
        let data = text_corpus(300_000);
        let stream = ParallelCompressor::new(options(ContainerFormat::Pigz)).compress(&data);
        let (restored, members) = decompress_with_info(&stream.bytes).unwrap();
        assert_eq!(restored, data);
        assert_eq!(members.len(), stream.members);
        assert_eq!(stream.members, 300_000usize.div_ceil(64 * 1024));
        assert_eq!(stream.chunks, 300_000usize.div_ceil(16 * 1024));
        assert!(stream.bytes.len() < data.len() / 2, "text should compress");
    }

    #[test]
    fn bgzf_output_is_real_bgzf() {
        let data = text_corpus(200_000);
        let stream = ParallelCompressor::new(options(ContainerFormat::Bgzf)).compress(&data);
        let (restored, members) = decompress_with_info(&stream.bytes).unwrap();
        assert_eq!(restored, data);
        assert_eq!(members.len(), stream.members);
        assert!(stream.bytes.ends_with(&rgz_gzip::BGZF_EOF_BLOCK));
        for member in &members {
            assert!(is_bgzf_header(&member.header).is_some());
        }
        let offsets = rgz_gzip::bgzf::block_offsets(&stream.bytes).unwrap();
        assert_eq!(offsets.len(), stream.members);
    }

    #[test]
    fn index_describes_the_stream_exactly() {
        for container in [ContainerFormat::Pigz, ContainerFormat::Bgzf] {
            let data = text_corpus(250_000);
            let stream = ParallelCompressor::new(options(container)).compress(&data);
            let index = &stream.index;
            assert_eq!(index.compressed_size, stream.bytes.len() as u64);
            assert_eq!(index.uncompressed_size, data.len() as u64);
            assert_eq!(index.block_map.uncompressed_size(), data.len() as u64);
            assert_eq!(index.checksum_map.len(), index.block_map.len());
            let mut expected_offset = 0u64;
            for point in index.block_map.points() {
                assert_eq!(point.uncompressed_offset, expected_offset);
                expected_offset += point.uncompressed_size;
                // Every point must land on a decodable DEFLATE block: check
                // byte alignment of the surrounding member layout.
                assert!(point.compressed_bit_offset % 8 == 0);
                let fragments = index
                    .checksum_map
                    .get(point.compressed_bit_offset)
                    .expect("every point carries fragments");
                let span: u64 = fragments.fragments.iter().map(|f| f.length).sum();
                assert_eq!(span, point.uncompressed_size, "{container:?}");
            }
        }
    }

    #[test]
    fn index_exports_as_v3_and_reimports() {
        let data = text_corpus(180_000);
        let stream = ParallelCompressor::new(options(ContainerFormat::Pigz)).compress(&data);
        let exported = stream.index.export_as(rgz_index::IndexFormat::V3);
        let imported = GzipIndex::import(&exported).unwrap();
        assert_eq!(imported.block_map.points(), stream.index.block_map.points());
        assert_eq!(imported.checksum_map.len(), stream.index.checksum_map.len());
    }

    #[test]
    fn empty_input_still_yields_a_valid_file() {
        for container in [ContainerFormat::Pigz, ContainerFormat::Bgzf] {
            let stream = ParallelCompressor::new(options(container)).compress(&[]);
            assert_eq!(decompress(&stream.bytes).unwrap(), Vec::<u8>::new());
            assert_eq!(stream.index.uncompressed_size, 0);
        }
    }

    #[test]
    fn all_levels_round_trip() {
        let data = text_corpus(120_000);
        for level in [
            CompressionLevel::Stored,
            CompressionLevel::Huffman,
            CompressionLevel::Fast,
            CompressionLevel::Default,
            CompressionLevel::Best,
        ] {
            let mut opts = options(ContainerFormat::Pigz);
            opts.level = level;
            let stream = ParallelCompressor::new(opts).compress(&data);
            assert_eq!(decompress(&stream.bytes).unwrap(), data, "{level:?}");
        }
    }

    #[test]
    fn metrics_mirror_the_compressed_stream_exactly() {
        let data = text_corpus(300_000);
        for container in [ContainerFormat::Pigz, ContainerFormat::Bgzf] {
            let registry = std::sync::Arc::new(rgz_metrics::MetricsRegistry::new_enabled());
            let stream = ParallelCompressor::new(options(container))
                .with_metrics(&registry)
                .compress(&data);
            let snapshot = registry.snapshot();
            let counter = |name: &str| snapshot.counter(name, &[]).unwrap_or(0);
            assert_eq!(counter(names::COMPRESS_CHUNKS), stream.chunks as u64);
            assert_eq!(counter(names::COMPRESS_MEMBERS), stream.members as u64);
            assert_eq!(counter(names::COMPRESS_BYTES_IN), data.len() as u64);
            assert_eq!(
                counter(names::COMPRESS_BYTES_OUT),
                stream.bytes.len() as u64
            );
            // One timed worker task per pigz chunk; one per BGZF span (a
            // span covers `chunk_size` rounded down to whole 64 KiB blocks,
            // which at this 16 KiB chunk size is exactly one block).
            assert_eq!(
                snapshot
                    .histogram(names::COMPRESS_ENCODE_SECONDS, &[])
                    .unwrap()
                    .count,
                stream.chunks as u64,
            );
        }
    }

    #[test]
    fn single_threaded_and_parallel_output_are_identical() {
        let data = text_corpus(400_000);
        let mut serial_options = options(ContainerFormat::Pigz);
        serial_options.parallelization = 1;
        let serial = ParallelCompressor::new(serial_options).compress(&data);
        let mut parallel_options = options(ContainerFormat::Pigz);
        parallel_options.parallelization = 4;
        let parallel = ParallelCompressor::new(parallel_options).compress(&data);
        assert_eq!(serial.bytes, parallel.bytes, "output must be deterministic");
    }
}
