//! Differential tests: the parallel compressor's output must be accepted by
//! *both* one-stage decoders bit-for-bit, and the index it emits must agree
//! with what an independent sequential pass over the stream observes.

use proptest::prelude::*;
use rgz_bitio::BitReader;
use rgz_checksum::crc32;
use rgz_compress::{
    CompressedStream, CompressionLevel, ContainerFormat, ParallelCompressor,
    ParallelCompressorOptions,
};
use rgz_deflate::{inflate, inflate_single_symbol};
use rgz_gzip::{parse_footer, parse_header};

/// Walks every gzip member of `bytes` with the given one-stage decoder,
/// checking each trailer, and returns the concatenated output plus the
/// per-member `(crc32, length)` sequence — an index capture that shares no
/// code with the compressor's own bookkeeping.
fn walk_members(bytes: &[u8], single_symbol: bool) -> (Vec<u8>, Vec<(u32, u64)>) {
    let mut reader = BitReader::new(bytes);
    let mut out = Vec::new();
    let mut members = Vec::new();
    while reader.position() / 8 < bytes.len() as u64 {
        parse_header(&mut reader).expect("member header");
        let before = out.len();
        let outcome = if single_symbol {
            inflate_single_symbol(&mut reader, &[], &mut out, u64::MAX)
        } else {
            inflate(&mut reader, &[], &mut out, u64::MAX)
        }
        .expect("member body");
        assert!(outcome.stream_ended(), "member stream must terminate");
        let footer = parse_footer(&mut reader).expect("member trailer");
        let member_bytes = &out[before..];
        assert_eq!(
            footer.uncompressed_size as u64,
            member_bytes.len() as u64 & 0xFFFF_FFFF
        );
        assert_eq!(footer.crc32, crc32(member_bytes), "trailer CRC-32");
        members.push((footer.crc32, member_bytes.len() as u64));
    }
    (out, members)
}

/// Checks the emitted index against the sequential capture: flattening every
/// seek point's CRC fragments in order must reproduce the per-member
/// `(crc32, length)` sequence of the stream (ignoring zero-length members,
/// which both sides normalise away).
fn check_index_against_capture(stream: &CompressedStream, capture: &[(u32, u64)]) {
    let mut expected: Vec<(u32, u64)> = capture
        .iter()
        .copied()
        .filter(|&(_, length)| length != 0)
        .collect();
    expected.reverse();
    for point in stream.index.block_map.points() {
        let checksums = stream
            .index
            .checksum_map
            .get(point.compressed_bit_offset)
            .expect("every seek point carries fragments");
        let span: u64 = checksums.fragments.iter().map(|f| f.length).sum();
        assert_eq!(span, point.uncompressed_size, "fragments cover the span");
        for fragment in &checksums.fragments {
            let (crc, length) = expected.pop().expect("more fragments than members");
            assert_eq!((fragment.crc32, fragment.length), (crc, length));
        }
    }
    assert!(expected.is_empty(), "members not covered by any fragment");
}

fn compress(
    data: &[u8],
    level: CompressionLevel,
    container: ContainerFormat,
    chunk_size: usize,
    member_size: usize,
) -> CompressedStream {
    ParallelCompressor::new(ParallelCompressorOptions {
        level,
        container,
        chunk_size,
        member_size,
        parallelization: 3,
        ..Default::default()
    })
    .compress(data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn both_decoders_reproduce_arbitrary_corpora(
        data in proptest::collection::vec(any::<u8>(), 0..40_000),
        numeric_level in 0u8..=9,
        bgzf in any::<bool>(),
        chunk_size in prop_oneof![Just(3_000usize), Just(16 * 1024)],
    ) {
        let container = if bgzf { ContainerFormat::Bgzf } else { ContainerFormat::Pigz };
        let stream = compress(
            &data,
            CompressionLevel::from_numeric(numeric_level),
            container,
            chunk_size,
            4 * chunk_size,
        );
        let (multi, capture) = walk_members(&stream.bytes, false);
        prop_assert_eq!(&multi, &data, "multi-symbol decode");
        let (single, single_capture) = walk_members(&stream.bytes, true);
        prop_assert_eq!(&single, &data, "single-symbol decode");
        prop_assert_eq!(&capture, &single_capture);
        check_index_against_capture(&stream, &capture);
    }

    #[test]
    fn repetitive_corpora_compress_and_verify(
        seed in any::<u32>(),
        length in 10_000usize..120_000,
    ) {
        // Highly repetitive data exercises long hash chains and cross-chunk
        // independence (matches must never cross a chunk boundary).
        let phrase = format!("entry {seed:08x} lorem ipsum dolor sit amet ");
        let data: Vec<u8> = phrase.bytes().cycle().take(length).collect();
        let stream = compress(
            &data,
            CompressionLevel::Best,
            ContainerFormat::Pigz,
            8 * 1024,
            32 * 1024,
        );
        prop_assert!(stream.bytes.len() < data.len() / 4);
        let (restored, capture) = walk_members(&stream.bytes, false);
        prop_assert_eq!(restored, data);
        check_index_against_capture(&stream, &capture);
    }
}
