//! Compressor front-ends emulating the tools used in the paper's evaluation.
//!
//! Table 3 decompresses the same corpus compressed by `bgzip`, `gzip`,
//! `igzip` and `pigz` at several levels; Table 4 additionally uses BGZF.
//! Each front-end reproduces the *structural* property that matters for
//! parallel decompression: the DEFLATE block size, whether blocks are
//! stored/dynamic, whether the file has one or many gzip members, and whether
//! the whole file is a single huge block.

use rgz_deflate::{CompressionLevel, CompressorOptions};

use crate::bgzf::BgzfWriter;
use crate::writer::GzipWriter;

/// Which tool behaviour to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendKind {
    /// GNU gzip: one gzip member, dynamic blocks of moderate size.
    Gzip,
    /// pigz: one gzip member, independently compressed chunks separated by
    /// empty stored blocks.
    Pigz,
    /// bgzip: BGZF — many small gzip members with the `BC` size field.
    Bgzf,
    /// igzip: like gzip but with larger blocks; level 0 produces a single
    /// huge Dynamic Block covering the whole file (the pathological case in
    /// Table 3 that cannot be parallelized).
    Igzip,
}

impl FrontendKind {
    /// All front-ends, for sweeps.
    pub fn all() -> [FrontendKind; 4] {
        [
            FrontendKind::Gzip,
            FrontendKind::Pigz,
            FrontendKind::Bgzf,
            FrontendKind::Igzip,
        ]
    }
}

/// A concrete (tool, level) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressorFrontend {
    /// Tool behaviour.
    pub kind: FrontendKind,
    /// gzip-style numeric level (0..=9); interpretation depends on the tool.
    pub level: u8,
}

impl CompressorFrontend {
    /// Creates a front-end description.
    pub fn new(kind: FrontendKind, level: u8) -> Self {
        Self { kind, level }
    }

    /// A human-readable label matching the paper's first column
    /// (e.g. `"gzip -6"`, `"bgzip -l 0"`).
    pub fn label(&self) -> String {
        match self.kind {
            FrontendKind::Gzip => format!("gzip -{}", self.level),
            FrontendKind::Pigz => format!("pigz -{}", self.level),
            FrontendKind::Bgzf => format!("bgzip -l {}", self.level),
            FrontendKind::Igzip => format!("igzip -{}", self.level),
        }
    }

    fn compressor_options(&self) -> CompressorOptions {
        let level = CompressionLevel::from_numeric(self.level);
        match self.kind {
            FrontendKind::Gzip => CompressorOptions {
                level,
                // GNU gzip emits a new Dynamic Block roughly every 64 KiB of
                // input with default settings.
                block_size: 64 * 1024,
                force_dynamic: false,
            },
            FrontendKind::Pigz => CompressorOptions {
                level,
                block_size: 64 * 1024,
                force_dynamic: false,
            },
            FrontendKind::Bgzf => CompressorOptions {
                level: if self.level == 0 {
                    CompressionLevel::Stored
                } else {
                    level
                },
                block_size: 64 * 1024,
                force_dynamic: false,
            },
            FrontendKind::Igzip => CompressorOptions {
                level: if self.level == 0 {
                    CompressionLevel::Huffman
                } else {
                    CompressionLevel::Fast
                },
                // igzip -0 places the whole file in one Dynamic Block.
                block_size: if self.level == 0 {
                    usize::MAX
                } else {
                    256 * 1024
                },
                force_dynamic: self.level == 0,
            },
        }
    }

    /// Compresses `data` with the emulated tool behaviour.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let options = self.compressor_options();
        match self.kind {
            FrontendKind::Gzip | FrontendKind::Igzip => GzipWriter::new(options).compress(data),
            FrontendKind::Pigz => GzipWriter::new(options).compress_pigz_like(data, 128 * 1024),
            FrontendKind::Bgzf => BgzfWriter::new(options).compress(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::decompress_with_info;

    fn corpus() -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.extend_from_slice(
                format!("entry {:05} lorem ipsum dolor sit amet\n", i % 3000).as_bytes(),
            );
        }
        data
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(
            CompressorFrontend::new(FrontendKind::Gzip, 6).label(),
            "gzip -6"
        );
        assert_eq!(
            CompressorFrontend::new(FrontendKind::Bgzf, 0).label(),
            "bgzip -l 0"
        );
        assert_eq!(
            CompressorFrontend::new(FrontendKind::Igzip, 0).label(),
            "igzip -0"
        );
        assert_eq!(
            CompressorFrontend::new(FrontendKind::Pigz, 9).label(),
            "pigz -9"
        );
    }

    #[test]
    fn every_frontend_round_trips() {
        let data = corpus();
        for kind in FrontendKind::all() {
            for level in [0u8, 1, 6] {
                let frontend = CompressorFrontend::new(kind, level);
                let compressed = frontend.compress(&data);
                let (restored, _) = decompress_with_info(&compressed).unwrap();
                assert_eq!(restored, data, "{}", frontend.label());
            }
        }
    }

    #[test]
    fn igzip_level_0_uses_a_single_dynamic_block() {
        let data = corpus();
        let compressed = CompressorFrontend::new(FrontendKind::Igzip, 0).compress(&data);
        let mut reader = rgz_bitio::BitReader::new(&compressed);
        crate::header::parse_header(&mut reader).unwrap();
        let mut out = Vec::new();
        let outcome = rgz_deflate::inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        assert_eq!(outcome.blocks.len(), 1);
        assert_eq!(out, data);
    }

    #[test]
    fn bgzf_level_0_produces_stored_blocks() {
        let data = corpus();
        let compressed = CompressorFrontend::new(FrontendKind::Bgzf, 0).compress(&data);
        // Stored output must be larger than the input (headers + no compression).
        assert!(compressed.len() > data.len());
        let (_, members) = decompress_with_info(&compressed).unwrap();
        assert!(members.len() > 1);
    }

    #[test]
    fn higher_levels_compress_better() {
        let data = corpus();
        let fast = CompressorFrontend::new(FrontendKind::Gzip, 1).compress(&data);
        let best = CompressorFrontend::new(FrontendKind::Gzip, 9).compress(&data);
        // The lazy matcher is a heuristic, so allow a small tolerance rather
        // than requiring strict monotonicity across levels.
        assert!(best.len() <= fast.len() + fast.len() / 20);
        assert!(fast.len() < data.len());
    }
}
