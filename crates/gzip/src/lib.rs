//! The gzip container format (RFC 1952) plus the Blocked GNU Zip Format
//! (BGZF) specialisation, a single-threaded decoder that serves as the
//! "GNU gzip" baseline, and compressor front-ends that emulate the tools the
//! paper's evaluation feeds to rapidgzip (`gzip`, `pigz`, `bgzip`, `igzip`).

pub mod bgzf;
pub mod decoder;
pub mod frontend;
pub mod header;
pub mod writer;

pub use bgzf::{is_bgzf_header, BgzfWriter, BGZF_EOF_BLOCK};
pub use decoder::{decompress, decompress_with_info, GzipDecoder, MemberInfo};
pub use frontend::{CompressorFrontend, FrontendKind};
pub use header::{parse_footer, parse_header, GzipFooter, GzipHeader, OS_UNIX};
pub use writer::GzipWriter;

use rgz_deflate::DeflateError;

/// Errors produced while reading gzip containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GzipError {
    /// The stream does not start with the gzip magic bytes 0x1F 0x8B.
    BadMagic { found: [u8; 2] },
    /// The compression-method byte was not 8 (DEFLATE).
    UnsupportedCompressionMethod(u8),
    /// Reserved FLG bits were set.
    ReservedFlagsSet(u8),
    /// The optional header CRC16 did not match.
    HeaderCrcMismatch { stored: u16, computed: u16 },
    /// The stream ended inside the header, body, or footer.
    Truncated,
    /// The footer CRC32 does not match the decompressed data.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// The footer ISIZE does not match the decompressed size modulo 2^32.
    SizeMismatch { stored: u32, computed: u32 },
    /// The embedded DEFLATE stream was invalid.
    Deflate(DeflateError),
    /// Trailing garbage that is not another gzip member.
    TrailingGarbage { offset: u64 },
}

impl std::fmt::Display for GzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GzipError::BadMagic { found } => {
                write!(f, "not a gzip stream (magic bytes {found:02X?})")
            }
            GzipError::UnsupportedCompressionMethod(m) => {
                write!(f, "unsupported compression method {m}")
            }
            GzipError::ReservedFlagsSet(flags) => {
                write!(f, "reserved gzip FLG bits set: {flags:#04x}")
            }
            GzipError::HeaderCrcMismatch { stored, computed } => {
                write!(
                    f,
                    "header CRC mismatch: stored {stored:#06x}, computed {computed:#06x}"
                )
            }
            GzipError::Truncated => write!(f, "truncated gzip stream"),
            GzipError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "CRC-32 mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            GzipError::SizeMismatch { stored, computed } => {
                write!(f, "ISIZE mismatch: stored {stored}, computed {computed}")
            }
            GzipError::Deflate(e) => write!(f, "invalid DEFLATE data: {e}"),
            GzipError::TrailingGarbage { offset } => {
                write!(f, "trailing non-gzip data at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for GzipError {}

impl From<DeflateError> for GzipError {
    fn from(error: DeflateError) -> Self {
        GzipError::Deflate(error)
    }
}

impl From<rgz_bitio::BitIoError> for GzipError {
    fn from(_: rgz_bitio::BitIoError) -> Self {
        GzipError::Truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(GzipError::BadMagic { found: [0, 1] }
            .to_string()
            .contains("magic"));
        assert!(GzipError::Truncated.to_string().contains("truncated"));
        assert!(GzipError::ChecksumMismatch {
            stored: 1,
            computed: 2
        }
        .to_string()
        .contains("CRC-32"));
    }

    #[test]
    fn full_round_trip_through_public_api() {
        let data = b"hello gzip world".repeat(1000);
        let compressed = GzipWriter::default().compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }
}
