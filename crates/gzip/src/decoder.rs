//! Single-threaded gzip decoding.
//!
//! This is the "GNU gzip" stand-in baseline used throughout the benchmark
//! harness and also the reference decoder the parallel implementation is
//! validated against in tests.

use rgz_bitio::BitReader;
use rgz_deflate::{inflate, inflate_hashed};

use crate::header::{parse_footer, parse_header, GzipHeader};
use crate::GzipError;

/// Information about one gzip member of a file.
#[derive(Debug, Clone)]
pub struct MemberInfo {
    /// Parsed member header.
    pub header: GzipHeader,
    /// Byte offset of the member's first header byte.
    pub compressed_start: u64,
    /// Byte offset one past the member's footer.
    pub compressed_end: u64,
    /// Offset of the member's data in the decompressed output.
    pub uncompressed_start: u64,
    /// Decompressed size of the member.
    pub uncompressed_size: u64,
    /// Number of DEFLATE blocks in the member.
    pub block_count: usize,
}

/// A configurable single-threaded gzip decoder.
#[derive(Debug, Clone)]
pub struct GzipDecoder {
    verify_checksums: bool,
    allow_trailing_zeros: bool,
}

impl Default for GzipDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl GzipDecoder {
    /// Creates a decoder that verifies CRC-32 and ISIZE footers.
    pub fn new() -> Self {
        Self {
            verify_checksums: true,
            allow_trailing_zeros: true,
        }
    }

    /// Disables footer verification (useful for decoding intentionally
    /// corrupted test data).
    pub fn without_checksum_verification(mut self) -> Self {
        self.verify_checksums = false;
        self
    }

    /// Decompresses a complete (possibly multi-member) gzip file.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, GzipError> {
        Ok(self.decompress_with_info(data)?.0)
    }

    /// Decompresses a complete gzip file and reports per-member metadata.
    pub fn decompress_with_info(
        &self,
        data: &[u8],
    ) -> Result<(Vec<u8>, Vec<MemberInfo>), GzipError> {
        let mut reader = BitReader::new(data);
        let mut out: Vec<u8> = Vec::new();
        let mut members = Vec::new();

        loop {
            if reader.is_at_end() {
                break;
            }
            // Accept trailing NUL padding after the last member (gzip does).
            if self.allow_trailing_zeros && !members.is_empty() {
                let position = (reader.position() / 8) as usize;
                if data[position..].iter().all(|&b| b == 0) {
                    break;
                }
            }
            if reader.remaining_bits() < 8 * 18 {
                return Err(if members.is_empty() {
                    GzipError::Truncated
                } else {
                    GzipError::TrailingGarbage {
                        offset: reader.position() / 8,
                    }
                });
            }
            let compressed_start = reader.position() / 8;
            let header = match parse_header(&mut reader) {
                Ok(header) => header,
                Err(GzipError::BadMagic { .. }) if !members.is_empty() => {
                    return Err(GzipError::TrailingGarbage {
                        offset: compressed_start,
                    })
                }
                Err(error) => return Err(error),
            };

            let member_start = out.len();
            // One inflate call covers exactly one member, so the hashed
            // decoder's per-call CRC is the member CRC the footer stores.
            let outcome = if self.verify_checksums {
                inflate_hashed(&mut reader, &[], &mut out, u64::MAX)?
            } else {
                inflate(&mut reader, &[], &mut out, u64::MAX)?
            };
            if !outcome.stream_ended() {
                return Err(GzipError::Truncated);
            }
            let footer = parse_footer(&mut reader)?;
            let member_data = &out[member_start..];
            if self.verify_checksums {
                let computed = outcome.crc32.expect("hashed inflate reports a CRC");
                if computed != footer.crc32 {
                    return Err(GzipError::ChecksumMismatch {
                        stored: footer.crc32,
                        computed,
                    });
                }
                let computed_size = member_data.len() as u32;
                if computed_size != footer.uncompressed_size {
                    return Err(GzipError::SizeMismatch {
                        stored: footer.uncompressed_size,
                        computed: computed_size,
                    });
                }
            }
            members.push(MemberInfo {
                header,
                compressed_start,
                compressed_end: reader.position() / 8,
                uncompressed_start: member_start as u64,
                uncompressed_size: member_data.len() as u64,
                block_count: outcome.blocks.len(),
            });
        }
        if members.is_empty() {
            return Err(GzipError::Truncated);
        }
        Ok((out, members))
    }
}

/// Decompresses a complete gzip file with checksum verification.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    GzipDecoder::new().decompress(data)
}

/// Decompresses a complete gzip file and returns per-member metadata.
pub fn decompress_with_info(data: &[u8]) -> Result<(Vec<u8>, Vec<MemberInfo>), GzipError> {
    GzipDecoder::new().decompress_with_info(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::GzipWriter;
    use rgz_deflate::{CompressionLevel, CompressorOptions};

    #[test]
    fn decodes_single_member() {
        let data = b"a small payload".repeat(100);
        let compressed = GzipWriter::default().compress(&data);
        let (restored, members) = decompress_with_info(&compressed).unwrap();
        assert_eq!(restored, data);
        assert_eq!(members.len(), 1);
        assert_eq!(members[0].uncompressed_size, data.len() as u64);
        assert_eq!(members[0].compressed_start, 0);
        assert_eq!(members[0].compressed_end, compressed.len() as u64);
    }

    #[test]
    fn decodes_multi_member_files() {
        let part_a = b"first member".repeat(50);
        let part_b = b"second member".repeat(50);
        let part_c: Vec<u8> = vec![];
        let writer = GzipWriter::default();
        let mut compressed = writer.compress(&part_a);
        compressed.extend(writer.compress(&part_b));
        compressed.extend(writer.compress(&part_c));
        let (restored, members) = decompress_with_info(&compressed).unwrap();
        let mut expected = part_a.clone();
        expected.extend_from_slice(&part_b);
        assert_eq!(restored, expected);
        assert_eq!(members.len(), 3);
        assert_eq!(members[2].uncompressed_size, 0);
    }

    #[test]
    fn rejects_corrupted_checksum() {
        let data = b"check me".repeat(100);
        let mut compressed = GzipWriter::default().compress(&data);
        let length = compressed.len();
        compressed[length - 5] ^= 0xFF; // flip a CRC byte
        assert!(matches!(
            decompress(&compressed),
            Err(GzipError::ChecksumMismatch { .. })
        ));
        // Without verification the data still comes back.
        assert_eq!(
            GzipDecoder::new()
                .without_checksum_verification()
                .decompress(&compressed)
                .unwrap(),
            data
        );
    }

    #[test]
    fn rejects_wrong_isize() {
        let data = b"size matters".repeat(10);
        let mut compressed = GzipWriter::default().compress(&data);
        let length = compressed.len();
        compressed[length - 1] ^= 0x01;
        assert!(matches!(
            decompress(&compressed),
            Err(GzipError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let data = b"truncate me".repeat(200);
        let compressed = GzipWriter::default().compress(&data);
        for cut in [3usize, 11, compressed.len() / 2, compressed.len() - 3] {
            assert!(decompress(&compressed[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn rejects_trailing_garbage_but_accepts_zero_padding() {
        let data = b"payload".repeat(30);
        let compressed = GzipWriter::default().compress(&data);

        let mut padded = compressed.clone();
        padded.extend_from_slice(&[0u8; 512]);
        assert_eq!(decompress(&padded).unwrap(), data);

        let mut garbage = compressed.clone();
        garbage.extend_from_slice(b"THIS IS NOT GZIP DATA AT ALL, NOT EVEN CLOSE");
        assert!(matches!(
            decompress(&garbage),
            Err(GzipError::TrailingGarbage { .. })
        ));
    }

    #[test]
    fn decodes_stored_only_members() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 256) as u8).collect();
        let writer = GzipWriter::new(CompressorOptions {
            level: CompressionLevel::Stored,
            ..Default::default()
        });
        let compressed = writer.compress(&data);
        assert!(compressed.len() > data.len());
        assert_eq!(decompress(&compressed).unwrap(), data);
    }
}
