//! gzip member header and footer parsing/serialisation (RFC 1952).

use rgz_bitio::BitReader;
use rgz_checksum::Crc32;

use crate::GzipError;

/// gzip magic bytes.
pub const MAGIC: [u8; 2] = [0x1F, 0x8B];
/// Compression method 8 = DEFLATE (the only one defined).
pub const CM_DEFLATE: u8 = 8;
/// OS byte for Unix.
pub const OS_UNIX: u8 = 3;

const FLAG_TEXT: u8 = 0x01;
const FLAG_HCRC: u8 = 0x02;
const FLAG_EXTRA: u8 = 0x04;
const FLAG_NAME: u8 = 0x08;
const FLAG_COMMENT: u8 = 0x10;
const FLAG_RESERVED: u8 = 0xE0;

/// A parsed gzip member header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GzipHeader {
    /// Whether the FTEXT flag was set.
    pub is_text: bool,
    /// Modification time (Unix epoch seconds; 0 = unavailable).
    pub modification_time: u32,
    /// XFL byte (2 = maximum compression, 4 = fastest).
    pub extra_flags: u8,
    /// OS byte.
    pub operating_system: u8,
    /// Raw FEXTRA payload, if present.
    pub extra_field: Option<Vec<u8>>,
    /// Original file name, if present.
    pub file_name: Option<Vec<u8>>,
    /// Comment, if present.
    pub comment: Option<Vec<u8>>,
    /// Whether the header carried (and passed) a header CRC16.
    pub had_header_crc: bool,
    /// Size of the encoded header in bytes.
    pub header_size: usize,
}

/// A parsed gzip member footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GzipFooter {
    /// CRC-32 of the uncompressed data.
    pub crc32: u32,
    /// Uncompressed size modulo 2^32.
    pub uncompressed_size: u32,
}

fn read_byte(reader: &mut BitReader<'_>) -> Result<u8, GzipError> {
    Ok(reader.read(8).map_err(|_| GzipError::Truncated)? as u8)
}

fn read_zero_terminated(reader: &mut BitReader<'_>) -> Result<Vec<u8>, GzipError> {
    let mut bytes = Vec::new();
    loop {
        let byte = read_byte(reader)?;
        if byte == 0 {
            return Ok(bytes);
        }
        bytes.push(byte);
    }
}

/// Parses a gzip member header starting at the reader's current position,
/// which must be byte-aligned.
pub fn parse_header(reader: &mut BitReader<'_>) -> Result<GzipHeader, GzipError> {
    debug_assert_eq!(reader.position() % 8, 0);
    let start = reader.position();
    let magic = [read_byte(reader)?, read_byte(reader)?];
    if magic != MAGIC {
        return Err(GzipError::BadMagic { found: magic });
    }
    let method = read_byte(reader)?;
    if method != CM_DEFLATE {
        return Err(GzipError::UnsupportedCompressionMethod(method));
    }
    let flags = read_byte(reader)?;
    if flags & FLAG_RESERVED != 0 {
        return Err(GzipError::ReservedFlagsSet(flags));
    }
    let modification_time = reader.read_u32_le().map_err(|_| GzipError::Truncated)?;
    let extra_flags = read_byte(reader)?;
    let operating_system = read_byte(reader)?;

    let extra_field = if flags & FLAG_EXTRA != 0 {
        let length = reader.read_u16_le().map_err(|_| GzipError::Truncated)? as usize;
        let mut payload = vec![0u8; length];
        reader
            .read_bytes(&mut payload)
            .map_err(|_| GzipError::Truncated)?;
        Some(payload)
    } else {
        None
    };
    let file_name = if flags & FLAG_NAME != 0 {
        Some(read_zero_terminated(reader)?)
    } else {
        None
    };
    let comment = if flags & FLAG_COMMENT != 0 {
        Some(read_zero_terminated(reader)?)
    } else {
        None
    };
    let had_header_crc = flags & FLAG_HCRC != 0;
    if had_header_crc {
        let stored = reader.read_u16_le().map_err(|_| GzipError::Truncated)?;
        // Compute the CRC16 over the header bytes read so far.
        let header_bytes = reader
            .bytes_at(
                (start / 8) as usize,
                ((reader.position() - start) / 8) as usize - 2,
            )
            .ok_or(GzipError::Truncated)?;
        let mut crc = Crc32::new();
        crc.update(header_bytes);
        let computed = (crc.finalize() & 0xFFFF) as u16;
        if computed != stored {
            return Err(GzipError::HeaderCrcMismatch { stored, computed });
        }
    }

    Ok(GzipHeader {
        is_text: flags & FLAG_TEXT != 0,
        modification_time,
        extra_flags,
        operating_system,
        extra_field,
        file_name,
        comment,
        had_header_crc,
        header_size: ((reader.position() - start) / 8) as usize,
    })
}

/// Parses the 8-byte gzip member footer (CRC32 + ISIZE). The reader is
/// aligned to the next byte boundary first, as the DEFLATE stream may end
/// mid-byte.
pub fn parse_footer(reader: &mut BitReader<'_>) -> Result<GzipFooter, GzipError> {
    reader.align_to_byte();
    let crc32 = reader.read_u32_le().map_err(|_| GzipError::Truncated)?;
    let uncompressed_size = reader.read_u32_le().map_err(|_| GzipError::Truncated)?;
    Ok(GzipFooter {
        crc32,
        uncompressed_size,
    })
}

impl GzipHeader {
    /// Serialises this header to bytes.  `header_size` and `had_header_crc`
    /// are recomputed, not honoured.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut flags = 0u8;
        if self.is_text {
            flags |= FLAG_TEXT;
        }
        if self.extra_field.is_some() {
            flags |= FLAG_EXTRA;
        }
        if self.file_name.is_some() {
            flags |= FLAG_NAME;
        }
        if self.comment.is_some() {
            flags |= FLAG_COMMENT;
        }
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&MAGIC);
        bytes.push(CM_DEFLATE);
        bytes.push(flags);
        bytes.extend_from_slice(&self.modification_time.to_le_bytes());
        bytes.push(self.extra_flags);
        bytes.push(self.operating_system);
        if let Some(extra) = &self.extra_field {
            bytes.extend_from_slice(&(extra.len() as u16).to_le_bytes());
            bytes.extend_from_slice(extra);
        }
        if let Some(name) = &self.file_name {
            bytes.extend_from_slice(name);
            bytes.push(0);
        }
        if let Some(comment) = &self.comment {
            bytes.extend_from_slice(comment);
            bytes.push(0);
        }
        bytes
    }
}

impl GzipFooter {
    /// Serialises this footer to its 8-byte representation.
    pub fn to_bytes(&self) -> [u8; 8] {
        let mut bytes = [0u8; 8];
        bytes[..4].copy_from_slice(&self.crc32.to_le_bytes());
        bytes[4..].copy_from_slice(&self.uncompressed_size.to_le_bytes());
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<GzipHeader, GzipError> {
        let mut reader = BitReader::new(bytes);
        parse_header(&mut reader)
    }

    #[test]
    fn minimal_header_round_trips() {
        let header = GzipHeader {
            operating_system: OS_UNIX,
            ..Default::default()
        };
        let bytes = header.to_bytes();
        assert_eq!(bytes.len(), 10);
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.header_size, 10);
        assert_eq!(parsed.operating_system, OS_UNIX);
        assert!(parsed.file_name.is_none());
    }

    #[test]
    fn header_with_all_optional_fields_round_trips() {
        let header = GzipHeader {
            is_text: true,
            modification_time: 1_700_000_000,
            extra_flags: 2,
            operating_system: OS_UNIX,
            extra_field: Some(vec![b'B', b'C', 2, 0, 0x34, 0x12]),
            file_name: Some(b"archive.tar".to_vec()),
            comment: Some(b"created by rapidgzip-rs tests".to_vec()),
            had_header_crc: false,
            header_size: 0,
        };
        let bytes = header.to_bytes();
        let parsed = parse(&bytes).unwrap();
        assert!(parsed.is_text);
        assert_eq!(parsed.modification_time, 1_700_000_000);
        assert_eq!(
            parsed.extra_field.as_deref(),
            Some(&[b'B', b'C', 2, 0, 0x34, 0x12][..])
        );
        assert_eq!(parsed.file_name.as_deref(), Some(b"archive.tar".as_slice()));
        assert_eq!(parsed.header_size, bytes.len());
    }

    #[test]
    fn bad_magic_and_method_are_rejected() {
        assert!(matches!(
            parse(&[0x50, 0x4B, 8, 0, 0, 0, 0, 0, 0, 3]),
            Err(GzipError::BadMagic { .. })
        ));
        assert!(matches!(
            parse(&[0x1F, 0x8B, 7, 0, 0, 0, 0, 0, 0, 3]),
            Err(GzipError::UnsupportedCompressionMethod(7))
        ));
    }

    #[test]
    fn reserved_flags_are_rejected() {
        assert!(matches!(
            parse(&[0x1F, 0x8B, 8, 0x20, 0, 0, 0, 0, 0, 3]),
            Err(GzipError::ReservedFlagsSet(0x20))
        ));
    }

    #[test]
    fn truncated_headers_are_rejected() {
        let header = GzipHeader {
            file_name: Some(b"a-very-long-file-name.bin".to_vec()),
            ..Default::default()
        };
        let bytes = header.to_bytes();
        for cut in [1usize, 5, 9, 12] {
            assert!(parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn footer_round_trips_and_requires_alignment() {
        let footer = GzipFooter {
            crc32: 0xDEADBEEF,
            uncompressed_size: 123_456_789,
        };
        let mut bytes = vec![0xFFu8];
        bytes.extend_from_slice(&footer.to_bytes());
        let mut reader = BitReader::new(&bytes);
        reader.read(3).unwrap(); // leave the reader mid-byte
        reader.read(5).unwrap();
        let parsed = parse_footer(&mut reader).unwrap();
        assert_eq!(parsed, footer);
    }
}
