//! Blocked GNU Zip Format (BGZF) support.
//!
//! BGZF files (§3.4.4 of the paper, used by `bgzip`/htslib) are ordinary
//! multi-member gzip files whose members carry an FEXTRA subfield `BC`
//! storing the compressed size of the member. That metadata lets a reader
//! jump from member to member without decoding, which is the trivially
//! parallel fast path the paper describes.

use rgz_checksum::Crc32;
use rgz_deflate::{CompressorOptions, DeflateCompressor};

use crate::header::{GzipFooter, GzipHeader, OS_UNIX};

/// Maximum number of *input* bytes per BGZF block (the value htslib uses so
/// that the compressed block always fits the 16-bit BSIZE field).
pub const MAX_BGZF_INPUT_BLOCK: usize = 0xFF00;

/// The canonical 28-byte BGZF end-of-file marker block.
pub const BGZF_EOF_BLOCK: [u8; 28] = [
    0x1F, 0x8B, 0x08, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0xFF, 0x06, 0x00, 0x42, 0x43, 0x02, 0x00,
    0x1B, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
];

/// Returns the BSIZE value (total member size − 1) if the parsed gzip header
/// is a BGZF block header.
pub fn is_bgzf_header(header: &GzipHeader) -> Option<u16> {
    let extra = header.extra_field.as_deref()?;
    let mut rest = extra;
    while rest.len() >= 4 {
        let si1 = rest[0];
        let si2 = rest[1];
        let sub_length = u16::from_le_bytes([rest[2], rest[3]]) as usize;
        let payload = rest.get(4..4 + sub_length)?;
        if si1 == b'B' && si2 == b'C' && sub_length == 2 {
            return Some(u16::from_le_bytes([payload[0], payload[1]]));
        }
        rest = &rest[4 + sub_length..];
    }
    None
}

/// Writes BGZF files: fixed-size independently compressed gzip members with
/// the `BC` extra field, terminated by the canonical EOF block.
#[derive(Debug, Clone)]
pub struct BgzfWriter {
    options: CompressorOptions,
    input_block_size: usize,
}

impl Default for BgzfWriter {
    fn default() -> Self {
        Self::new(CompressorOptions::default())
    }
}

impl BgzfWriter {
    /// Creates a writer with explicit compressor options.
    pub fn new(options: CompressorOptions) -> Self {
        Self {
            options,
            input_block_size: MAX_BGZF_INPUT_BLOCK,
        }
    }

    /// Overrides the number of input bytes per BGZF block (must stay small
    /// enough for the compressed block to fit in 64 KiB).
    pub fn with_input_block_size(mut self, size: usize) -> Self {
        assert!(size > 0 && size <= MAX_BGZF_INPUT_BLOCK);
        self.input_block_size = size;
        self
    }

    /// Compresses `data` into a BGZF file.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let compressor = DeflateCompressor::new(self.options.clone());
        let mut out = Vec::new();
        for chunk in data.chunks(self.input_block_size.max(1)) {
            out.extend(Self::write_block(&compressor, chunk));
        }
        if data.is_empty() {
            out.extend(Self::write_block(&compressor, &[]));
        }
        out.extend_from_slice(&BGZF_EOF_BLOCK);
        out
    }

    fn write_block(compressor: &DeflateCompressor, chunk: &[u8]) -> Vec<u8> {
        let deflate = compressor.compress(chunk);
        // Header with a placeholder BC subfield; BSIZE = total size - 1.
        let header = GzipHeader {
            operating_system: OS_UNIX,
            extra_field: Some(vec![b'B', b'C', 2, 0, 0, 0]),
            ..Default::default()
        };
        let mut header_bytes = header.to_bytes();
        let total_size = header_bytes.len() + deflate.len() + 8;
        assert!(total_size <= u16::MAX as usize + 1, "BGZF block too large");
        let bsize = (total_size - 1) as u16;
        // Patch the BSIZE into the last two bytes of the extra field.
        let extra_position = header_bytes.len() - 2;
        header_bytes[extra_position..].copy_from_slice(&bsize.to_le_bytes());

        let mut crc = Crc32::new();
        crc.update(chunk);
        let footer = GzipFooter {
            crc32: crc.finalize(),
            uncompressed_size: chunk.len() as u32,
        };
        let mut block = header_bytes;
        block.extend_from_slice(&deflate);
        block.extend_from_slice(&footer.to_bytes());
        block
    }
}

/// Scans a BGZF file and returns the byte offset of every block, using only
/// the `BC` metadata (no decompression).
pub fn block_offsets(data: &[u8]) -> Result<Vec<u64>, crate::GzipError> {
    let mut offsets = Vec::new();
    let mut offset = 0usize;
    while offset + 18 <= data.len() {
        let mut reader = rgz_bitio::BitReader::new(&data[offset..]);
        let header = crate::header::parse_header(&mut reader)?;
        let Some(bsize) = is_bgzf_header(&header) else {
            return Err(crate::GzipError::TrailingGarbage {
                offset: offset as u64,
            });
        };
        offsets.push(offset as u64);
        offset += bsize as usize + 1;
    }
    Ok(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{decompress, decompress_with_info};

    #[test]
    fn eof_block_is_a_valid_empty_member() {
        let mut reader = rgz_bitio::BitReader::new(&BGZF_EOF_BLOCK);
        let header = crate::header::parse_header(&mut reader).unwrap();
        assert_eq!(is_bgzf_header(&header), Some(27));
        assert_eq!(decompress(&BGZF_EOF_BLOCK).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bgzf_files_round_trip_and_are_multi_member() {
        let data: Vec<u8> = (0..300_000u32)
            .flat_map(|i| format!("row {}\n", i % 5000).into_bytes())
            .collect();
        let compressed = BgzfWriter::default().compress(&data);
        let (restored, members) = decompress_with_info(&compressed).unwrap();
        assert_eq!(restored, data);
        let expected_blocks = data.len().div_ceil(MAX_BGZF_INPUT_BLOCK);
        assert_eq!(members.len(), expected_blocks + 1); // + EOF block
        for member in &members {
            assert!(is_bgzf_header(&member.header).is_some());
        }
    }

    #[test]
    fn block_offsets_match_member_starts() {
        let data = vec![42u8; 200_000];
        let compressed = BgzfWriter::default().compress(&data);
        let offsets = block_offsets(&compressed).unwrap();
        let (_, members) = decompress_with_info(&compressed).unwrap();
        let member_starts: Vec<u64> = members.iter().map(|m| m.compressed_start).collect();
        assert_eq!(offsets, member_starts);
    }

    #[test]
    fn non_bgzf_headers_are_detected() {
        let plain = crate::GzipWriter::default().compress(b"not bgzf");
        let mut reader = rgz_bitio::BitReader::new(&plain);
        let header = crate::header::parse_header(&mut reader).unwrap();
        assert_eq!(is_bgzf_header(&header), None);
        assert!(block_offsets(&plain).is_err());
    }

    #[test]
    fn small_input_block_size_is_respected() {
        let data = vec![7u8; 10_000];
        let compressed = BgzfWriter::default()
            .with_input_block_size(1024)
            .compress(&data);
        let offsets = block_offsets(&compressed).unwrap();
        assert_eq!(offsets.len(), 10 + 1);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }
}
