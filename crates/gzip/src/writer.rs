//! Writing gzip members.

use rgz_bitio::BitWriter;
use rgz_checksum::Crc32;
use rgz_deflate::{CompressorOptions, DeflateCompressor};

use crate::header::{GzipFooter, GzipHeader, OS_UNIX};

/// Writes single- or multi-member gzip files using the pure-Rust DEFLATE
/// compressor from `rgz-deflate`.
#[derive(Debug, Clone)]
pub struct GzipWriter {
    options: CompressorOptions,
    file_name: Option<Vec<u8>>,
    modification_time: u32,
    extra_field: Option<Vec<u8>>,
}

impl Default for GzipWriter {
    fn default() -> Self {
        Self::new(CompressorOptions::default())
    }
}

impl GzipWriter {
    /// Creates a writer with explicit compressor options.
    pub fn new(options: CompressorOptions) -> Self {
        Self {
            options,
            file_name: None,
            modification_time: 0,
            extra_field: None,
        }
    }

    /// Sets the FNAME header field.
    pub fn with_file_name(mut self, name: impl Into<Vec<u8>>) -> Self {
        self.file_name = Some(name.into());
        self
    }

    /// Sets the MTIME header field.
    pub fn with_modification_time(mut self, seconds: u32) -> Self {
        self.modification_time = seconds;
        self
    }

    /// Sets a raw FEXTRA payload (used by the BGZF writer).
    pub fn with_extra_field(mut self, extra: Vec<u8>) -> Self {
        self.extra_field = Some(extra);
        self
    }

    /// The compressor options this writer uses.
    pub fn options(&self) -> &CompressorOptions {
        &self.options
    }

    /// Compresses `data` into a single gzip member.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let header = GzipHeader {
            modification_time: self.modification_time,
            operating_system: OS_UNIX,
            file_name: self.file_name.clone(),
            extra_field: self.extra_field.clone(),
            ..Default::default()
        };
        let mut out = header.to_bytes();
        let deflate = DeflateCompressor::new(self.options.clone()).compress(data);
        out.extend_from_slice(&deflate);
        let mut crc = Crc32::new();
        crc.update(data);
        let footer = GzipFooter {
            crc32: crc.finalize(),
            uncompressed_size: data.len() as u32,
        };
        out.extend_from_slice(&footer.to_bytes());
        out
    }

    /// Compresses each input slice into its own gzip member and concatenates
    /// the members (a multi-member gzip file, like `cat a.gz b.gz`).
    pub fn compress_members(&self, members: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for member in members {
            out.extend(self.compress(member));
        }
        out
    }

    /// Compresses `data` as a single gzip member whose DEFLATE stream is made
    /// of independently compressed chunks separated by empty stored blocks —
    /// the structure `pigz` produces (§5 "Parallel Gzip Compression").
    pub fn compress_pigz_like(&self, data: &[u8], chunk_size: usize) -> Vec<u8> {
        assert!(chunk_size > 0);
        let header = GzipHeader {
            modification_time: self.modification_time,
            operating_system: OS_UNIX,
            file_name: self.file_name.clone(),
            ..Default::default()
        };
        let mut out = header.to_bytes();

        let compressor = DeflateCompressor::new(self.options.clone());
        let mut writer = BitWriter::with_capacity(data.len() / 2 + 64);
        let mut chunks = data.chunks(chunk_size).peekable();
        if data.is_empty() {
            compressor.compress_into(&[], &mut writer, true);
        }
        while let Some(chunk) = chunks.next() {
            let is_last = chunks.peek().is_none();
            // Each chunk is compressed independently (pigz resets the work
            // unit per thread) and never carries the final flag.
            compressor.compress_into(chunk, &mut writer, false);
            // pigz inserts an empty stored block after each chunk to
            // byte-align the independently produced streams; the very last
            // one is the final block of the member.
            rgz_deflate::write_stored_block(&mut writer, &[], is_last);
        }
        out.extend_from_slice(&writer.finish());

        let mut crc = Crc32::new();
        crc.update(data);
        let footer = GzipFooter {
            crc32: crc.finalize(),
            uncompressed_size: data.len() as u32,
        };
        out.extend_from_slice(&footer.to_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{decompress, decompress_with_info};
    use rgz_deflate::{BlockType, CompressionLevel};

    #[test]
    fn compressed_output_carries_header_fields() {
        let writer = GzipWriter::default()
            .with_file_name("data.bin")
            .with_modification_time(1_650_000_000);
        let compressed = writer.compress(b"payload");
        let (_, members) = decompress_with_info(&compressed).unwrap();
        assert_eq!(
            members[0].header.file_name.as_deref(),
            Some(b"data.bin".as_slice())
        );
        assert_eq!(members[0].header.modification_time, 1_650_000_000);
    }

    #[test]
    fn pigz_like_streams_decode_and_contain_sync_blocks() {
        let data: Vec<u8> = (0..500_000u32)
            .flat_map(|i| format!("{} ", i % 1000).into_bytes())
            .collect();
        let compressed = GzipWriter::default().compress_pigz_like(&data, 64 * 1024);
        assert_eq!(decompress(&compressed).unwrap(), data);

        // The deflate stream must contain empty stored blocks between chunks.
        let mut reader = rgz_bitio::BitReader::new(&compressed);
        let header = crate::header::parse_header(&mut reader).unwrap();
        assert!(header.header_size > 0);
        let mut out = Vec::new();
        let outcome = rgz_deflate::inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        let stored_blocks = outcome
            .blocks
            .iter()
            .filter(|b| b.block_type == BlockType::Stored)
            .count();
        assert!(
            stored_blocks >= data.len() / (64 * 1024),
            "missing sync blocks"
        );
    }

    #[test]
    fn pigz_like_empty_input_is_valid() {
        let compressed = GzipWriter::default().compress_pigz_like(&[], 4096);
        assert_eq!(decompress(&compressed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn multi_member_files_concatenate() {
        let writer = GzipWriter::new(CompressorOptions {
            level: CompressionLevel::Fast,
            ..Default::default()
        });
        let compressed = writer.compress_members(&[b"one ", b"two ", b"three"]);
        assert_eq!(decompress(&compressed).unwrap(), b"one two three");
    }
}
