//! Compressed + sparse storage for seek-point windows.
//!
//! The paper's seek-point index (§1.3, §3.3) keeps a raw 32 KiB window per
//! chunk, which makes index memory grow at roughly 8 MiB per GiB of
//! compressed input at the default 4 MiB chunk size.  This crate removes that
//! scaling bottleneck with two orthogonal techniques:
//!
//! * **Window compression** — each window is deflate-compressed (reusing
//!   [`rgz_deflate`]'s compressor) when it enters the store, optionally on a
//!   shared [`rgz_fetcher::ThreadPool`] so the sequential first pass never
//!   waits for it, and lazily re-inflated on access through a bounded
//!   [`rgz_fetcher::Cache`] of hot decompressed windows.
//! * **Sparsity** — chunk decoding records which window bytes its
//!   back-references actually touch ([`rgz_deflate::WindowUsage`]).  Leading
//!   unreferenced bytes are dropped outright and interior/trailing
//!   unreferenced bytes are zeroed before compression, which deflate then
//!   collapses to almost nothing.  Re-decoding the same chunk from the same
//!   compressed data deterministically reads only the referenced bytes, so
//!   the masked window is byte-for-byte sufficient.
//!
//! [`CompressedWindow`] is the storage record (flags byte, lengths, CRC-32,
//! payload); [`WindowStore`] owns the window lifecycle for a whole index.

mod compressed;
mod store;

pub use compressed::{flags, CompressedWindow, WindowError, MAX_WINDOW_PAYLOAD};
pub use store::{WindowStore, WindowStoreStatistics, DEFAULT_HOT_WINDOWS};

/// Maximum window size preceding a DEFLATE chunk (32 KiB, RFC 1951).
pub const WINDOW_SIZE: usize = rgz_deflate::constants::WINDOW_SIZE;
