//! The window store: compressed records + a bounded cache of hot windows.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rgz_fetcher::{Cache, CacheStatistics, TaskHandle, ThreadPool};
use rgz_metrics::{exponential_buckets, Counter, Gauge, Histogram, MetricsRegistry};
use rgz_trace::{Outcome, Stage, TraceSink};

use crate::compressed::{CompressedWindow, WindowError};

/// Default capacity of the hot (decompressed) window cache: 32 windows is at
/// most 1 MiB, enough to cover the prefetch span of a typical reader.
pub const DEFAULT_HOT_WINDOWS: usize = 32;

/// Aggregate memory/behaviour counters of a [`WindowStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WindowStoreStatistics {
    /// Number of stored windows (including in-flight compressions).
    pub windows: usize,
    /// Compression tasks still running on the thread pool.
    pub pending_compressions: usize,
    /// Payload bytes currently held (compressed or verbatim).
    pub stored_bytes: usize,
    /// Decompressed (masked) window bytes the payloads expand to.
    pub window_bytes: usize,
    /// Window bytes a raw (v1-style) index would hold for the same seek
    /// points, i.e. before sparsification and compression.
    pub original_bytes: usize,
    /// Windows currently resident in the hot cache.
    pub hot_windows: usize,
    /// Hit/miss/eviction counters of the hot cache.
    pub hot_cache: CacheStatistics,
    /// Windows that failed checksum or structural validation on access.
    pub corrupt_windows: u64,
}

impl WindowStoreStatistics {
    /// Raw bytes divided by stored bytes (∞ when nothing is stored yet).
    pub fn compression_ratio(&self) -> f64 {
        self.original_bytes as f64 / (self.stored_bytes.max(1)) as f64
    }
}

enum Slot {
    /// Compression still running on the pool.
    Pending(TaskHandle<CompressedWindow>),
    /// Compressed record ready for use.
    Ready(Arc<CompressedWindow>),
}

/// Live-metric handles of a window store.  The counters mirror the hot
/// cache's [`CacheStatistics`] exactly (published as deltas under the store
/// lock), so a registry snapshot can never disagree with `statistics()`.
struct StoreMetrics {
    stored_bytes: Gauge,
    windows: Gauge,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    compress_seconds: Histogram,
    inflate_seconds: Histogram,
}

impl StoreMetrics {
    fn disconnected() -> Self {
        Self {
            stored_bytes: Gauge::disconnected(),
            windows: Gauge::disconnected(),
            cache_hits: Counter::disconnected(),
            cache_misses: Counter::disconnected(),
            cache_evictions: Counter::disconnected(),
            compress_seconds: Histogram::disconnected(),
            inflate_seconds: Histogram::disconnected(),
        }
    }

    fn register(registry: &MetricsRegistry) -> Self {
        let cache_event = |event| {
            registry.counter_with_labels(
                "rgz_window_cache_total",
                "Hot (decompressed) window cache events.",
                &[("event", event)],
            )
        };
        Self {
            stored_bytes: registry.gauge(
                "rgz_window_store_bytes",
                "Compressed payload bytes currently held by the window store.",
            ),
            windows: registry.gauge(
                "rgz_window_store_windows",
                "Seek-point windows currently held by the window store.",
            ),
            cache_hits: cache_event("hit"),
            cache_misses: cache_event("miss"),
            cache_evictions: cache_event("evicted"),
            compress_seconds: registry.histogram(
                "rgz_window_compress_seconds",
                "Time to sparsify and deflate one seek-point window.",
                &exponential_buckets(0.000_02, 4.0, 10),
            ),
            inflate_seconds: registry.histogram(
                "rgz_window_inflate_seconds",
                "Time to re-inflate one stored window for random access.",
                &exponential_buckets(0.000_02, 4.0, 10),
            ),
        }
    }
}

struct Inner {
    pool: Option<Arc<ThreadPool>>,
    trace: Arc<TraceSink>,
    slots: HashMap<u64, Slot>,
    hot: Cache<u64, Vec<u8>>,
    corrupt_windows: u64,
    metrics: StoreMetrics,
    /// Cache counters already published to the registry (delta tracking).
    published_cache: CacheStatistics,
}

impl Inner {
    /// Pushes hot-cache counter movement since the last publish into the
    /// registry counters, keeping both views identical.
    fn publish_cache_deltas(&mut self) {
        let now = self.hot.statistics();
        self.metrics
            .cache_hits
            .add(now.hits.saturating_sub(self.published_cache.hits));
        self.metrics
            .cache_misses
            .add(now.misses.saturating_sub(self.published_cache.misses));
        self.metrics
            .cache_evictions
            .add(now.evictions.saturating_sub(self.published_cache.evictions));
        self.published_cache = now;
    }
    /// Waits for an in-flight compression and caches the finished record.
    fn resolve(&mut self, offset: u64) -> Option<Arc<CompressedWindow>> {
        let slot = self.slots.get_mut(&offset)?;
        if let Slot::Ready(record) = slot {
            return Some(record.clone());
        }
        // Swap in a placeholder so the pending handle can be consumed; it is
        // overwritten with the real record on the next line.
        let placeholder = Slot::Ready(Arc::new(CompressedWindow::from_window(&[])));
        let Slot::Pending(handle) = std::mem::replace(slot, placeholder) else {
            unreachable!("checked to be pending above");
        };
        let record = Arc::new(handle.wait());
        *slot = Slot::Ready(record.clone());
        Some(record)
    }
}

/// Owns the windows of a seek-point index: compressed records plus a bounded
/// LRU cache of hot decompressed windows.
///
/// The store is internally synchronised and meant to be shared (`Arc`)
/// between an index, its reader and in-flight decompression tasks.  With a
/// thread pool attached ([`WindowStore::set_pool`]), insertions dispatch the
/// deflate compression asynchronously and only block when the record is
/// actually needed (a later `get`, an export, or statistics that touch it).
pub struct WindowStore {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for WindowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("WindowStore")
            .field("windows", &inner.slots.len())
            .field("hot_windows", &inner.hot.len())
            .finish()
    }
}

impl Default for WindowStore {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowStore {
    /// Creates an empty store with the default hot-cache capacity and no
    /// thread pool (compression runs inline on insert).
    pub fn new() -> Self {
        Self::with_hot_capacity(DEFAULT_HOT_WINDOWS)
    }

    /// Creates an empty store with an explicit hot-cache capacity.
    pub fn with_hot_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                pool: None,
                trace: TraceSink::shared_disabled(),
                slots: HashMap::new(),
                hot: Cache::new(capacity.max(1)),
                corrupt_windows: 0,
                metrics: StoreMetrics::disconnected(),
                published_cache: CacheStatistics::default(),
            }),
        }
    }

    /// Attaches a thread pool; subsequent insertions compress asynchronously.
    pub fn set_pool(&self, pool: Arc<ThreadPool>) {
        self.inner.lock().pool = Some(pool);
    }

    /// Attaches a trace sink; window compress/inflate work records spans.
    pub fn set_trace(&self, trace: Arc<TraceSink>) {
        self.inner.lock().trace = trace;
    }

    /// Attaches a live metrics registry; store size, hot-cache events and
    /// compress/inflate latencies are reported from then on.
    pub fn set_metrics(&self, registry: &MetricsRegistry) {
        self.inner.lock().metrics = StoreMetrics::register(registry);
    }

    /// Number of stored windows.
    pub fn len(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().slots.is_empty()
    }

    /// Whether a window exists for the given offset.
    pub fn contains(&self, offset: u64) -> bool {
        self.inner.lock().slots.contains_key(&offset)
    }

    /// The stored offsets, in arbitrary order.
    pub fn offsets(&self) -> Vec<u64> {
        self.inner.lock().slots.keys().copied().collect()
    }

    fn insert_job(&self, offset: u64, job: impl FnOnce() -> CompressedWindow + Send + 'static) {
        let mut inner = self.inner.lock();
        // Invalidate any stale decompressed copy of a window being replaced,
        // and retire the replaced record's gauge contribution (waiting out an
        // in-flight compression of the same offset — replacement of a pending
        // slot is pathological and correctness beats speed there).
        inner.hot.remove(&offset);
        if inner.slots.contains_key(&offset) {
            if let Some(old) = inner.resolve(offset) {
                inner.metrics.stored_bytes.add(-(old.stored_bytes() as i64));
            }
        }
        let trace = Arc::clone(&inner.trace);
        let stored_bytes = inner.metrics.stored_bytes.clone();
        let compress_seconds = inner.metrics.compress_seconds.clone();
        let traced_job = move || {
            let timer = compress_seconds.start_timer();
            let mut span = trace.span(Stage::WindowCompress).chunk(offset);
            let record = job();
            span.set_bytes(u64::from(record.window_length));
            drop(timer);
            stored_bytes.add(record.stored_bytes() as i64);
            record
        };
        let slot = match &inner.pool {
            Some(pool) => Slot::Pending(pool.submit(traced_job)),
            None => Slot::Ready(Arc::new(traced_job())),
        };
        inner.slots.insert(offset, slot);
        let windows = inner.slots.len();
        inner.metrics.windows.set(windows as i64);
    }

    /// Stores the last 32 KiB of `window` without sparsification.
    pub fn insert(&self, offset: u64, window: Vec<u8>) {
        self.insert_job(offset, move || CompressedWindow::from_window(&window));
    }

    /// Stores the last 32 KiB of `window`, dropping/zeroing the bytes not
    /// named by `usage` (marker-space `(offset, length)` runs).
    pub fn insert_sparse(&self, offset: u64, window: Vec<u8>, usage: Vec<(u32, u32)>) {
        self.insert_job(offset, move || {
            CompressedWindow::from_window_sparse(&window, &usage)
        });
    }

    /// Stores an already compressed record (the index import path).
    pub fn insert_compressed(&self, offset: u64, record: CompressedWindow) {
        let mut inner = self.inner.lock();
        inner.hot.remove(&offset);
        if inner.slots.contains_key(&offset) {
            if let Some(old) = inner.resolve(offset) {
                inner.metrics.stored_bytes.add(-(old.stored_bytes() as i64));
            }
        }
        inner.metrics.stored_bytes.add(record.stored_bytes() as i64);
        inner.slots.insert(offset, Slot::Ready(Arc::new(record)));
        let windows = inner.slots.len();
        inner.metrics.windows.set(windows as i64);
    }

    /// Returns the decompressed (masked) window for `offset`, inflating and
    /// caching it if necessary.  `Ok(None)` means no window is stored there.
    pub fn get(&self, offset: u64) -> Result<Option<Arc<Vec<u8>>>, WindowError> {
        let mut inner = self.inner.lock();
        if let Some(hot) = inner.hot.get(&offset) {
            inner.publish_cache_deltas();
            return Ok(Some(hot));
        }
        inner.publish_cache_deltas();
        let Some(record) = inner.resolve(offset) else {
            return Ok(None);
        };
        let trace = Arc::clone(&inner.trace);
        let timer = inner.metrics.inflate_seconds.start_timer();
        let mut span = trace.span(Stage::WindowInflate).chunk(offset);
        match record.decompress() {
            Ok(window) => {
                span.set_bytes(window.len() as u64);
                drop(timer);
                let window = Arc::new(window);
                inner.hot.insert(offset, window.clone());
                inner.publish_cache_deltas();
                Ok(Some(window))
            }
            Err(error) => {
                span.set_outcome(Outcome::Error);
                timer.discard();
                inner.corrupt_windows += 1;
                Err(error)
            }
        }
    }

    /// Returns the compressed record for `offset`, waiting for an in-flight
    /// compression to finish if necessary (the index export path).
    pub fn get_compressed(&self, offset: u64) -> Option<Arc<CompressedWindow>> {
        self.inner.lock().resolve(offset)
    }

    /// Memory and behaviour counters.  Harvests compressions that already
    /// finished but does not wait for ones still in flight; their sizes are
    /// reported once they complete.
    pub fn statistics(&self) -> WindowStoreStatistics {
        let mut inner = self.inner.lock();
        inner.publish_cache_deltas();
        let mut statistics = WindowStoreStatistics {
            windows: inner.slots.len(),
            hot_windows: inner.hot.len(),
            hot_cache: inner.hot.statistics(),
            corrupt_windows: inner.corrupt_windows,
            ..Default::default()
        };
        for slot in inner.slots.values_mut() {
            if let Slot::Pending(handle) = slot {
                match handle.try_wait() {
                    Some(Ok(record)) => *slot = Slot::Ready(Arc::new(record)),
                    Some(Err(panic)) => std::panic::resume_unwind(panic),
                    None => {}
                }
            }
            match slot {
                Slot::Pending(_) => statistics.pending_compressions += 1,
                Slot::Ready(record) => {
                    statistics.stored_bytes += record.stored_bytes();
                    statistics.window_bytes += record.window_length as usize;
                    statistics.original_bytes += record.original_length as usize;
                }
            }
        }
        statistics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WINDOW_SIZE;

    fn repetitive_window(seed: u8) -> Vec<u8> {
        (0..WINDOW_SIZE)
            .map(|i| seed.wrapping_add((i % 64) as u8))
            .collect()
    }

    #[test]
    fn insert_get_round_trips_inline() {
        let store = WindowStore::new();
        assert!(store.is_empty());
        let window = repetitive_window(1);
        store.insert(100, window.clone());
        assert!(store.contains(100));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(100).unwrap().unwrap().as_slice(), &window[..]);
        assert_eq!(store.get(999).unwrap(), None);

        let statistics = store.statistics();
        assert_eq!(statistics.windows, 1);
        assert!(statistics.stored_bytes < WINDOW_SIZE / 4);
        assert_eq!(statistics.original_bytes, WINDOW_SIZE);
        assert!(statistics.compression_ratio() > 4.0);
    }

    #[test]
    fn pool_backed_insertions_resolve_on_access() {
        let pool = Arc::new(ThreadPool::new(4));
        let store = WindowStore::new();
        store.set_pool(pool);
        let windows: Vec<Vec<u8>> = (0..16).map(|i| repetitive_window(i as u8)).collect();
        for (i, window) in windows.iter().enumerate() {
            store.insert(i as u64 * 1000, window.clone());
        }
        for (i, window) in windows.iter().enumerate() {
            assert_eq!(
                store.get(i as u64 * 1000).unwrap().unwrap().as_slice(),
                &window[..]
            );
        }
        let statistics = store.statistics();
        assert_eq!(statistics.pending_compressions, 0);
        assert_eq!(statistics.windows, 16);
    }

    #[test]
    fn hot_cache_serves_repeated_access_and_is_bounded() {
        let store = WindowStore::with_hot_capacity(2);
        for offset in 0..4u64 {
            store.insert(offset, repetitive_window(offset as u8));
        }
        // First access decompresses, second hits the hot cache.
        store.get(0).unwrap().unwrap();
        store.get(0).unwrap().unwrap();
        let statistics = store.statistics();
        assert!(statistics.hot_cache.hits >= 1);
        assert!(statistics.hot_windows <= 2);
        // Touch everything; the cache must stay within its bound.
        for offset in 0..4u64 {
            store.get(offset).unwrap().unwrap();
        }
        assert!(store.statistics().hot_windows <= 2);
    }

    #[test]
    fn corrupt_records_error_and_are_counted() {
        let store = WindowStore::new();
        let mut record = CompressedWindow::from_window(&repetitive_window(9));
        record.checksum ^= 1;
        store.insert_compressed(7, record);
        assert!(store.get(7).is_err());
        assert_eq!(store.statistics().corrupt_windows, 1);
    }

    #[test]
    fn metrics_mirror_store_and_cache_state() {
        let registry = rgz_metrics::MetricsRegistry::new_enabled();
        let store = WindowStore::with_hot_capacity(2);
        store.set_metrics(&registry);
        for offset in 0..3u64 {
            store.insert(offset, repetitive_window(offset as u8));
        }
        store.get(0).unwrap().unwrap(); // miss + inflate
        store.get(0).unwrap().unwrap(); // hit
        store.get(1).unwrap().unwrap(); // miss
        store.get(2).unwrap().unwrap(); // miss, evicts offset 0
        let statistics = store.statistics();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.gauge("rgz_window_store_windows", &[]), Some(3));
        assert_eq!(
            snapshot.gauge("rgz_window_store_bytes", &[]),
            Some(statistics.stored_bytes as i64)
        );
        assert_eq!(
            snapshot.counter("rgz_window_cache_total", &[("event", "hit")]),
            Some(statistics.hot_cache.hits)
        );
        assert_eq!(
            snapshot.counter("rgz_window_cache_total", &[("event", "miss")]),
            Some(statistics.hot_cache.misses)
        );
        assert_eq!(
            snapshot.counter("rgz_window_cache_total", &[("event", "evicted")]),
            Some(statistics.hot_cache.evictions)
        );
        assert_eq!(
            snapshot
                .histogram("rgz_window_compress_seconds", &[])
                .unwrap()
                .count,
            3
        );
        assert_eq!(
            snapshot
                .histogram("rgz_window_inflate_seconds", &[])
                .unwrap()
                .count,
            3,
            "hits do not re-inflate"
        );
    }

    #[test]
    fn reinsertion_invalidates_the_hot_copy() {
        let store = WindowStore::new();
        store.insert(5, repetitive_window(1));
        let first = store.get(5).unwrap().unwrap();
        store.insert(5, repetitive_window(2));
        let second = store.get(5).unwrap().unwrap();
        assert_ne!(first.as_slice(), second.as_slice());
        assert_eq!(second.as_slice(), &repetitive_window(2)[..]);
    }

    #[test]
    fn sparse_insertion_stores_only_referenced_bytes() {
        let store = WindowStore::new();
        let window = repetitive_window(3);
        store.insert_sparse(11, window.clone(), vec![((WINDOW_SIZE - 8) as u32, 8)]);
        let masked = store.get(11).unwrap().unwrap();
        assert_eq!(masked.len(), 8);
        assert_eq!(masked.as_slice(), &window[WINDOW_SIZE - 8..]);
        let record = store.get_compressed(11).unwrap();
        assert!(record.is_sparse());
        assert_eq!(record.original_length as usize, WINDOW_SIZE);
    }
}
