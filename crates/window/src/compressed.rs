//! The on-disk / in-memory record of one seek-point window.

use rgz_bitio::BitReader;
use rgz_checksum::crc32;
use rgz_deflate::{
    inflate_limited, CompressionLevel, CompressorOptions, DeflateCompressor, DeflateError,
};

use crate::WINDOW_SIZE;

/// Bit flags of a [`CompressedWindow`] record (the index format's flags byte).
pub mod flags {
    /// The payload is a raw DEFLATE stream; unset means the window bytes are
    /// stored verbatim (chosen when compression would not shrink them).
    pub const COMPRESSED: u8 = 0b0000_0001;
    /// The window was sparsified: unreferenced leading bytes were dropped and
    /// unreferenced interior bytes zeroed.
    pub const SPARSE: u8 = 0b0000_0010;
    /// All flag bits with a defined meaning.
    pub const KNOWN: u8 = COMPRESSED | SPARSE;
}

/// Upper bound on a stored window payload accepted at import time.  The
/// writer never stores a payload larger than the window itself (it falls back
/// to verbatim bytes), so anything bigger indicates corruption.
pub const MAX_WINDOW_PAYLOAD: usize = WINDOW_SIZE;

/// Errors from decompressing or validating a stored window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowError {
    /// The decompressed window does not match its stored CRC-32.
    ChecksumMismatch {
        /// Checksum stored alongside the window.
        expected: u32,
        /// Checksum of the bytes actually produced.
        actual: u32,
    },
    /// The decompressed window has the wrong length.
    LengthMismatch {
        /// Length stored alongside the window.
        expected: u32,
        /// Length of the bytes actually produced.
        actual: u32,
    },
    /// The stored DEFLATE payload is malformed.
    Deflate(DeflateError),
    /// A declared length exceeds the 32 KiB window bound.
    TooLarge {
        /// The offending length.
        length: usize,
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::ChecksumMismatch { expected, actual } => write!(
                f,
                "window checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
            ),
            WindowError::LengthMismatch { expected, actual } => write!(
                f,
                "window length mismatch: stored {expected}, decompressed {actual}"
            ),
            WindowError::Deflate(e) => write!(f, "stored window is not valid DEFLATE: {e}"),
            WindowError::TooLarge { length } => write!(
                f,
                "window length {length} exceeds the {WINDOW_SIZE} byte bound"
            ),
        }
    }
}

impl std::error::Error for WindowError {}

impl From<DeflateError> for WindowError {
    fn from(error: DeflateError) -> Self {
        WindowError::Deflate(error)
    }
}

/// One stored window: a (possibly sparsified, possibly deflate-compressed)
/// copy of the up-to-32 KiB of decompressed data preceding a seek point.
///
/// The window always stays aligned to the *end* of the 32 KiB marker space:
/// sparsification only ever drops leading bytes and zeroes interior ones, so
/// the decoders' "window occupies the last `len` offsets" convention holds
/// for masked windows exactly as it does for full ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedWindow {
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// Length of the full window before sparsification.
    pub original_length: u32,
    /// Length of the (masked) window the payload decodes to.
    pub window_length: u32,
    /// CRC-32 of the (masked) window bytes.
    pub checksum: u32,
    /// DEFLATE stream ([`flags::COMPRESSED`]) or verbatim window bytes.
    pub payload: Vec<u8>,
}

fn window_tail(window: &[u8]) -> &[u8] {
    &window[window.len().saturating_sub(WINDOW_SIZE)..]
}

fn compressor() -> DeflateCompressor {
    DeflateCompressor::new(CompressorOptions {
        level: CompressionLevel::Default,
        // One DEFLATE block per window: windows are at most 32 KiB.
        block_size: WINDOW_SIZE,
        force_dynamic: false,
    })
}

impl CompressedWindow {
    /// Stores the last 32 KiB of `window` without sparsification.
    pub fn from_window(window: &[u8]) -> Self {
        Self::build(window_tail(window).to_vec(), None)
    }

    /// Stores the last 32 KiB of `window` verbatim, skipping compression.
    ///
    /// This keeps bulk ingestion (the v1 index import path) a cheap memcpy
    /// per window; consumers that want the record small (the v2 exporter)
    /// recompress such records later via [`CompressedWindow::recompressed`],
    /// off the critical path.
    pub fn from_window_verbatim(window: &[u8]) -> Self {
        let window = window_tail(window);
        Self {
            flags: 0,
            original_length: window.len() as u32,
            window_length: window.len() as u32,
            checksum: crc32(window),
            payload: window.to_vec(),
        }
    }

    /// Stores the last 32 KiB of `window`, keeping only the bytes named by
    /// `usage` (sorted `(offset, length)` runs in marker space, as produced
    /// by [`rgz_deflate::WindowUsage::intervals`]): leading unreferenced
    /// bytes are dropped, all other unreferenced bytes zeroed.
    pub fn from_window_sparse(window: &[u8], usage: &[(u32, u32)]) -> Self {
        let window = window_tail(window);
        let original_length = window.len();
        let base = WINDOW_SIZE - window.len();

        // Clip the usage runs to the part of marker space this window covers.
        let mut clipped: Vec<(usize, usize)> = Vec::with_capacity(usage.len());
        for &(offset, length) in usage {
            let start = (offset as usize).max(base);
            let end = (offset as usize + length as usize).min(WINDOW_SIZE);
            if start < end {
                clipped.push((start, end));
            }
        }

        let masked = match clipped.first() {
            None => Vec::new(),
            Some(&(min_used, _)) => {
                let mut masked = vec![0u8; WINDOW_SIZE - min_used];
                for &(start, end) in &clipped {
                    masked[start - min_used..end - min_used]
                        .copy_from_slice(&window[start - base..end - base]);
                }
                masked
            }
        };
        Self::build(masked, Some(original_length))
    }

    fn build(window: Vec<u8>, sparse_original_length: Option<usize>) -> Self {
        debug_assert!(window.len() <= WINDOW_SIZE);
        let mut record_flags = 0u8;
        if let Some(original) = sparse_original_length {
            debug_assert!(window.len() <= original);
            record_flags |= flags::SPARSE;
        }
        let original_length = sparse_original_length.unwrap_or(window.len()) as u32;
        let checksum = crc32(&window);
        let window_length = window.len() as u32;

        let payload = if window.is_empty() {
            Vec::new()
        } else {
            let compressed = compressor().compress(&window);
            if compressed.len() < window.len() {
                record_flags |= flags::COMPRESSED;
                compressed
            } else {
                window
            }
        };
        Self {
            flags: record_flags,
            original_length,
            window_length,
            checksum,
            payload,
        }
    }

    /// Attempts to compress a verbatim record's payload, returning `None`
    /// when the record is already compressed, sparse (recompressing would
    /// lose its `original_length` padding), empty, or incompressible.
    pub fn recompressed(&self) -> Option<Self> {
        if self.is_compressed() || self.is_sparse() || self.payload.is_empty() {
            return None;
        }
        let compressed = compressor().compress(&self.payload);
        if compressed.len() >= self.payload.len() {
            return None;
        }
        Some(Self {
            flags: self.flags | flags::COMPRESSED,
            original_length: self.original_length,
            window_length: self.window_length,
            checksum: self.checksum,
            payload: compressed,
        })
    }

    /// Whether the payload is deflate-compressed.
    pub fn is_compressed(&self) -> bool {
        self.flags & flags::COMPRESSED != 0
    }

    /// Whether the window was sparsified.
    pub fn is_sparse(&self) -> bool {
        self.flags & flags::SPARSE != 0
    }

    /// Number of bytes this record actually holds in memory / on disk.
    pub fn stored_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Structural validation applied before trusting a record read from an
    /// untrusted index file.  Rejects declared lengths beyond the 32 KiB
    /// window bound and payloads that cannot belong to a valid record.
    pub fn validate(&self) -> Result<(), WindowError> {
        let window_length = self.window_length as usize;
        let original_length = self.original_length as usize;
        if window_length > WINDOW_SIZE || original_length > WINDOW_SIZE {
            return Err(WindowError::TooLarge {
                length: window_length.max(original_length),
            });
        }
        if self.payload.len() > MAX_WINDOW_PAYLOAD {
            return Err(WindowError::TooLarge {
                length: self.payload.len(),
            });
        }
        if window_length > original_length {
            return Err(WindowError::LengthMismatch {
                expected: self.original_length,
                actual: self.window_length,
            });
        }
        if !self.is_compressed() && self.payload.len() != window_length {
            return Err(WindowError::LengthMismatch {
                expected: self.window_length,
                actual: self.payload.len() as u32,
            });
        }
        Ok(())
    }

    /// Recovers the (masked) window bytes, verifying length and checksum.
    pub fn decompress(&self) -> Result<Vec<u8>, WindowError> {
        self.validate()?;
        let window = if self.is_compressed() {
            let mut reader = BitReader::new(&self.payload);
            let mut window = Vec::with_capacity(self.window_length as usize);
            // The payload may come from a hostile index file: bound the
            // decode at the declared length so a crafted stream cannot
            // balloon into tens of megabytes before the checks below run.
            inflate_limited(
                &mut reader,
                &[],
                &mut window,
                u64::MAX,
                self.window_length as usize,
            )?;
            window
        } else {
            self.payload.clone()
        };
        if window.len() != self.window_length as usize {
            return Err(WindowError::LengthMismatch {
                expected: self.window_length,
                actual: window.len() as u32,
            });
        }
        let actual = crc32(&window);
        if actual != self.checksum {
            return Err(WindowError::ChecksumMismatch {
                expected: self.checksum,
                actual,
            });
        }
        Ok(window)
    }

    /// Like [`CompressedWindow::decompress`], but zero-pads the front back to
    /// `original_length` — the exact shape a v1 raw-window index stores.
    pub fn decompress_padded(&self) -> Result<Vec<u8>, WindowError> {
        let window = self.decompress()?;
        let original_length = self.original_length as usize;
        if window.len() >= original_length {
            return Ok(window);
        }
        let mut padded = vec![0u8; original_length - window.len()];
        padded.extend_from_slice(&window);
        Ok(padded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn full_window_round_trips_and_compresses_text() {
        let window: Vec<u8> = (0..WINDOW_SIZE)
            .map(|i| b"the quick brown fox "[i % 20])
            .collect();
        let record = CompressedWindow::from_window(&window);
        assert!(record.is_compressed());
        assert!(!record.is_sparse());
        assert!(record.stored_bytes() < window.len() / 4);
        assert_eq!(record.original_length as usize, WINDOW_SIZE);
        assert_eq!(record.decompress().unwrap(), window);
        assert_eq!(record.decompress_padded().unwrap(), window);
    }

    #[test]
    fn incompressible_window_falls_back_to_verbatim_bytes() {
        let mut rng = StdRng::seed_from_u64(7);
        let window: Vec<u8> = (0..4096).map(|_| rng.gen::<u8>()).collect();
        let record = CompressedWindow::from_window(&window);
        assert!(!record.is_compressed());
        assert_eq!(record.payload, window);
        assert_eq!(record.decompress().unwrap(), window);
    }

    #[test]
    fn oversized_windows_are_capped_to_the_last_32_kib() {
        let big: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        let record = CompressedWindow::from_window(&big);
        assert_eq!(record.window_length as usize, WINDOW_SIZE);
        assert_eq!(
            record.decompress().unwrap(),
            &big[big.len() - WINDOW_SIZE..]
        );
    }

    #[test]
    fn empty_window_is_stored_as_nothing() {
        let record = CompressedWindow::from_window(&[]);
        assert_eq!(record.stored_bytes(), 0);
        assert_eq!(record.window_length, 0);
        assert!(record.decompress().unwrap().is_empty());
    }

    #[test]
    fn sparse_window_drops_leading_bytes_and_zeroes_gaps() {
        let mut rng = StdRng::seed_from_u64(8);
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|_| rng.gen::<u8>()).collect();
        // Reference two runs: one mid-window, one at the very end.
        let usage = vec![(20_000u32, 16u32), ((WINDOW_SIZE - 4) as u32, 4u32)];
        let record = CompressedWindow::from_window_sparse(&window, &usage);
        assert!(record.is_sparse());
        assert_eq!(record.original_length as usize, WINDOW_SIZE);
        assert_eq!(record.window_length as usize, WINDOW_SIZE - 20_000);
        // Mostly zeros -> tiny payload despite random content.
        assert!(record.stored_bytes() < 600, "{}", record.stored_bytes());

        let masked = record.decompress().unwrap();
        assert_eq!(&masked[..16], &window[20_000..20_016]);
        assert_eq!(&masked[masked.len() - 4..], &window[WINDOW_SIZE - 4..]);
        assert!(masked[16..masked.len() - 4].iter().all(|&b| b == 0));

        let padded = record.decompress_padded().unwrap();
        assert_eq!(padded.len(), WINDOW_SIZE);
        assert!(padded[..20_000].iter().all(|&b| b == 0));
        assert_eq!(&padded[20_000..20_016], &window[20_000..20_016]);
    }

    #[test]
    fn sparse_window_with_no_usage_stores_nothing() {
        let window = vec![0xABu8; WINDOW_SIZE];
        let record = CompressedWindow::from_window_sparse(&window, &[]);
        assert_eq!(record.window_length, 0);
        assert_eq!(record.stored_bytes(), 0);
        assert_eq!(record.original_length as usize, WINDOW_SIZE);
        assert!(record.decompress().unwrap().is_empty());
        assert_eq!(record.decompress_padded().unwrap(), vec![0u8; WINDOW_SIZE]);
    }

    #[test]
    fn sparse_usage_is_clipped_to_short_windows() {
        // A 100-byte window occupies the last 100 marker offsets; usage
        // pointing before it must be ignored.
        let window: Vec<u8> = (0..100u8).collect();
        let usage = vec![(0u32, 50u32), ((WINDOW_SIZE - 10) as u32, 10u32)];
        let record = CompressedWindow::from_window_sparse(&window, &usage);
        assert_eq!(record.window_length, 10);
        assert_eq!(record.original_length, 100);
        assert_eq!(record.decompress().unwrap(), &window[90..]);
        let padded = record.decompress_padded().unwrap();
        assert_eq!(padded.len(), 100);
        assert!(padded[..90].iter().all(|&b| b == 0));
    }

    #[test]
    fn corruption_is_detected_on_decompress() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 256) as u8).collect();
        let mut record = CompressedWindow::from_window(&window);

        let mut wrong_checksum = record.clone();
        wrong_checksum.checksum ^= 0xDEAD_BEEF;
        assert!(matches!(
            wrong_checksum.decompress(),
            Err(WindowError::ChecksumMismatch { .. })
        ));

        // A shrunk declared length trips the output bound mid-decode...
        let mut shrunk_length = record.clone();
        shrunk_length.window_length -= 1;
        assert!(matches!(
            shrunk_length.decompress(),
            Err(WindowError::Deflate(
                DeflateError::OutputLimitExceeded { .. }
            ))
        ));
        // ...while a grown one surfaces as a length mismatch after decoding.
        let mut grown_length = CompressedWindow::from_window(&window[..1000]);
        grown_length.window_length += 1;
        assert!(matches!(
            grown_length.decompress(),
            Err(WindowError::LengthMismatch { .. })
        ));

        record.payload[0] ^= 0xFF;
        assert!(record.decompress().is_err());
    }

    #[test]
    fn hostile_expanding_payload_is_bounded_by_the_declared_length() {
        // A tiny deflate payload that expands to 1 MiB: decompress() must
        // stop at the declared window_length instead of materialising it.
        let bomb = compressor().compress(&vec![0u8; 1 << 20]);
        assert!(bomb.len() < WINDOW_SIZE, "payload must fit the size checks");
        let record = CompressedWindow {
            flags: flags::COMPRESSED,
            original_length: 100,
            window_length: 100,
            checksum: 0,
            payload: bomb,
        };
        assert!(matches!(
            record.decompress(),
            Err(WindowError::Deflate(
                DeflateError::OutputLimitExceeded { .. }
            ))
        ));
    }

    #[test]
    fn verbatim_records_skip_compression_until_recompressed() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 32) as u8).collect();
        let verbatim = CompressedWindow::from_window_verbatim(&window);
        assert!(!verbatim.is_compressed());
        assert_eq!(verbatim.payload, window);
        assert_eq!(verbatim.decompress().unwrap(), window);

        let recompressed = verbatim.recompressed().expect("repetitive data shrinks");
        assert!(recompressed.is_compressed());
        assert!(recompressed.stored_bytes() < window.len() / 4);
        assert_eq!(recompressed.decompress().unwrap(), window);
        // Already-compressed and sparse records are left alone.
        assert!(recompressed.recompressed().is_none());
        let sparse = CompressedWindow::from_window_sparse(&window, &[]);
        assert!(sparse.recompressed().is_none());
    }

    #[test]
    fn validate_rejects_hostile_lengths() {
        let record = CompressedWindow {
            flags: flags::COMPRESSED,
            original_length: (WINDOW_SIZE + 1) as u32,
            window_length: 10,
            checksum: 0,
            payload: vec![0u8; 4],
        };
        assert!(matches!(
            record.validate(),
            Err(WindowError::TooLarge { .. })
        ));

        let record = CompressedWindow {
            flags: 0,
            original_length: 100,
            window_length: 10,
            checksum: 0,
            payload: vec![0u8; 4], // raw payload must equal window_length
        };
        assert!(matches!(
            record.validate(),
            Err(WindowError::LengthMismatch { .. })
        ));
    }
}
