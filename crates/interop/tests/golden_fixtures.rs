//! Golden-fixture tests: the checked-in gztool / indexed_gzip / native
//! index files under `tests/fixtures/` pin the exact serialised bytes of
//! every exporter.  Any unintended change to a format writer — or to the
//! chunking and window sparsification that feed it — shows up as a byte
//! diff here.
//!
//! Regenerate after an *intended* format change with:
//! `cargo run -p rgz_interop --example generate_fixtures`

use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;

use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_index::{DetectedFormat, IndexFormat};
use rgz_interop::{export_index, import_index, AnyIndexFormat};
use rgz_io::SharedFileReader;

fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// The exact reader configuration the generator used.
fn generator_options() -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: 2,
        chunk_size: 8 * 1024,
        ..Default::default()
    }
}

#[test]
fn exports_are_byte_identical_to_the_golden_fixtures() {
    let compressed = fixture("interop_corpus.gz");
    let mut reader = ParallelGzipReader::from_bytes(compressed, generator_options()).unwrap();
    let index = reader.build_full_index().unwrap();
    assert!(index.block_map.len() >= 8, "fixture corpus lost its points");

    for (name, format) in [
        ("interop_corpus.gzi", AnyIndexFormat::Gztool),
        ("interop_corpus.gzidx", AnyIndexFormat::IndexedGzip),
        (
            "interop_corpus.rgzidx",
            AnyIndexFormat::Native(IndexFormat::V2),
        ),
    ] {
        let exported = export_index(&index, format);
        let golden = fixture(name);
        assert_eq!(
            exported, golden,
            "{name}: export no longer matches the golden fixture; if the \
             format change is intended, regenerate with \
             `cargo run -p rgz_interop --example generate_fixtures`"
        );
    }
}

#[test]
fn fixture_magics_are_detected() {
    for (name, expected) in [
        ("interop_corpus.gzi", DetectedFormat::Gztool),
        ("interop_corpus.gzidx", DetectedFormat::IndexedGzip),
        ("interop_corpus.rgzidx", DetectedFormat::Rgz),
        ("interop_corpus.gz", DetectedFormat::Unknown),
    ] {
        assert_eq!(rgz_index::detect_format(&fixture(name)), expected, "{name}");
    }
}

#[test]
fn golden_indexes_drive_correct_random_access_reads() {
    let compressed = fixture("interop_corpus.gz");
    let data = rgz_gzip::decompress(&compressed).unwrap();
    assert_eq!(data.len(), 200_000);

    for name in [
        "interop_corpus.gzi",
        "interop_corpus.gzidx",
        "interop_corpus.rgzidx",
    ] {
        let imported =
            import_index(&fixture(name)).unwrap_or_else(|e| panic!("{name}: import failed: {e}"));
        assert_eq!(imported.windowless_points_dropped, 0, "{name}");
        let mut reader = ParallelGzipReader::with_index(
            SharedFileReader::from_bytes(compressed.clone()),
            generator_options(),
            imported.index,
        )
        .unwrap();
        assert_eq!(
            reader.uncompressed_size(),
            Some(data.len() as u64),
            "{name}"
        );
        let mut buffer = vec![0u8; 4096];
        for offset in [0u64, 50_000, 123_456, 195_904] {
            reader.seek(SeekFrom::Start(offset)).unwrap();
            reader.read_exact(&mut buffer).unwrap();
            assert_eq!(
                &buffer[..],
                &data[offset as usize..offset as usize + 4096],
                "{name}: mismatch at offset {offset}"
            );
        }
        let mut full = Vec::new();
        reader.seek(SeekFrom::Start(0)).unwrap();
        reader.read_to_end(&mut full).unwrap();
        assert_eq!(full, data, "{name}: full read mismatch");
    }
}
