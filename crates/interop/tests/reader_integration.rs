//! End-to-end proof of the acceptance criterion: an index converted to a
//! foreign format and back drives byte-identical random-access reads through
//! `ParallelGzipReader`, compared against a natively built index.

use std::io::{Read, Seek, SeekFrom};

use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_gzip::{CompressorFrontend, FrontendKind, GzipWriter};
use rgz_index::GzipIndex;
use rgz_interop::{export_index, import_index, AnyIndexFormat};
use rgz_io::SharedFileReader;

fn options() -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: 4,
        chunk_size: 64 * 1024,
        ..Default::default()
    }
}

fn build_index(compressed: &[u8]) -> GzipIndex {
    let mut reader = ParallelGzipReader::from_bytes(compressed.to_vec(), options()).unwrap();
    reader.build_full_index().unwrap()
}

fn read_at(reader: &mut ParallelGzipReader, offset: u64, length: usize) -> Vec<u8> {
    let mut buffer = vec![0u8; length];
    reader.seek(SeekFrom::Start(offset)).unwrap();
    reader.read_exact(&mut buffer).unwrap();
    buffer
}

/// Every format (native v1/v2, gztool, indexed_gzip) must serve the same
/// bytes at the same offsets as the natively built index, for both a
/// marker-heavy stream and a BGZF-style multi-member one.
#[test]
fn foreign_indexes_drive_byte_identical_random_access() {
    let corpora: Vec<(&str, Vec<u8>, Vec<u8>)> = vec![
        {
            let data = rgz_datagen::silesia_like(1_500_000, 90);
            let compressed = GzipWriter::default().compress(&data);
            ("silesia", data, compressed)
        },
        {
            let data = rgz_datagen::fastq_of_size(1_000_000, 91);
            let compressed = CompressorFrontend::new(FrontendKind::Bgzf, 6).compress(&data);
            ("bgzf", data, compressed)
        },
    ];
    for (name, data, compressed) in corpora {
        let index = build_index(&compressed);
        let offsets: Vec<u64> = vec![
            0,
            1,
            data.len() as u64 / 3,
            data.len() as u64 / 2 + 17,
            data.len() as u64 - 8192,
        ];
        for format in [
            AnyIndexFormat::Native(rgz_index::IndexFormat::V1),
            AnyIndexFormat::Native(rgz_index::IndexFormat::V2),
            AnyIndexFormat::Gztool,
            AnyIndexFormat::IndexedGzip,
        ] {
            let serialized = export_index(&index, format);
            let imported = import_index(&serialized)
                .unwrap_or_else(|e| panic!("{name}/{format}: import failed: {e}"));
            assert_eq!(
                imported.windowless_points_dropped, 0,
                "{name}/{format}: dropped points on a complete index"
            );
            let mut reader = ParallelGzipReader::with_index(
                SharedFileReader::from_bytes(compressed.clone()),
                options(),
                imported.index,
            )
            .unwrap();
            assert_eq!(
                reader.uncompressed_size(),
                Some(data.len() as u64),
                "{name}/{format}"
            );
            for &offset in &offsets {
                let restored = read_at(&mut reader, offset, 8192);
                let expected = &data[offset as usize..offset as usize + 8192];
                assert_eq!(
                    restored, expected,
                    "{name}/{format}: mismatch at offset {offset}"
                );
            }
            assert!(
                reader.statistics().index_chunks > 0,
                "{name}/{format}: the index fast path was never used"
            );
            // Full sequential decompression through the imported index.
            let mut full = Vec::new();
            reader.seek(SeekFrom::Start(0)).unwrap();
            reader.read_to_end(&mut full).unwrap();
            assert_eq!(full, data, "{name}/{format}: full read mismatch");
        }
    }
}

/// An index whose foreign form lost its interior windows (indexed_gzip v1
/// allows data-less points) still serves correct reads everywhere — spans
/// merge onto the preceding windowed point.
#[test]
fn reads_stay_correct_after_windowless_points_are_dropped() {
    let data = rgz_datagen::base64_random(900_000, 92);
    let compressed = GzipWriter::default().compress(&data);
    let index = build_index(&compressed);
    let mut serialized = export_index(&index, AnyIndexFormat::IndexedGzip);

    // Clear the data flag of every second windowed point and remove its
    // 32 KiB window block from the tail section.
    let npoints = u32::from_le_bytes(serialized[31..35].try_into().unwrap()) as usize;
    let records_start = 35;
    let data_start = records_start + npoints * 18;
    let mut window_position = data_start;
    let mut removals: Vec<usize> = Vec::new();
    let mut windowed_seen = 0usize;
    for point in 0..npoints {
        let flag_position = records_start + point * 18 + 17;
        if serialized[flag_position] == 0 {
            continue;
        }
        windowed_seen += 1;
        if windowed_seen % 2 == 0 {
            serialized[flag_position] = 0;
            removals.push(window_position);
        }
        // Positions are in the original layout; every windowed point owns a
        // block there, removed or not.
        window_position += 32768;
    }
    // Remove from the back so earlier positions stay valid.
    for &position in removals.iter().rev() {
        serialized.drain(position..position + 32768);
    }
    assert!(!removals.is_empty(), "corpus produced too few seek points");

    let imported = import_index(&serialized).unwrap();
    assert_eq!(imported.windowless_points_dropped, removals.len());
    let mut reader = ParallelGzipReader::with_index(
        SharedFileReader::from_bytes(compressed),
        options(),
        imported.index,
    )
    .unwrap();
    for offset in [0u64, 123_456, 456_789, data.len() as u64 - 4096] {
        let restored = read_at(&mut reader, offset, 4096);
        assert_eq!(
            restored,
            &data[offset as usize..offset as usize + 4096],
            "mismatch at offset {offset}"
        );
    }
}
