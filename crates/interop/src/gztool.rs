//! The gztool `.gzi` on-disk index format (v0, magic `gzipindx`).
//!
//! gztool (<https://github.com/circulosmeos/gztool>) extends zlib's `zran.c`
//! random-access demo with a persistent index.  Its v0 container, as
//! implemented here:
//!
//! ```text
//! offset  size  field                     encoding
//! 0       8     0x00 * 8                  distinguishes from bgzip .gzi
//! 8       8     magic "gzipindx"          ("gzipindX" = v1, with line info)
//! 16      8     planned point count       u64, big-endian
//! 24      8     stored point count        u64, big-endian
//! 32      ...   point records
//! end-8   8     uncompressed file size    u64, big-endian
//! ```
//!
//! Each point record is:
//!
//! ```text
//! out          u64 BE   uncompressed offset of the point
//! in           u64 BE   compressed offset of the first full byte
//! bits         u32 BE   0..=7; >0 means the block starts `bits` bits
//!                       before `in * 8` (zran convention)
//! window_size  u32 BE   stored window length; 0 = no window
//! window       bytes    zlib stream of the 32 KiB window
//! ```
//!
//! All integers are big-endian (gztool serialises in network order for
//! portability).  Windows are zlib-compressed; a `window_size` of zero marks
//! a window-less point.  v1 files (`gzipindX`) append line-counting data this
//! reproduction does not model; they are rejected with
//! [`IndexError::UnsupportedVersion`] rather than misparsed.

use rgz_checksum::crc32;
use rgz_index::{DetectedFormat, GzipIndex, IndexError, WINDOW_SIZE};
use rgz_window::{flags, CompressedWindow};

use crate::convert::{assemble, bit_offset_from_parts, bit_offset_to_parts, RawSeekPoint};
use crate::zlib;
use crate::ImportedIndex;

const ZERO_PREFIX: usize = 8;
const MAGIC_V0: &[u8; 8] = b"gzipindx";
const HEADER_LEN: usize = ZERO_PREFIX + MAGIC_V0.len() + 8 + 8;
/// Fixed part of a point record (out + in + bits + window_size).
const POINT_FIXED_LEN: usize = 8 + 8 + 4 + 4;
/// A zlib stream for a 32 KiB window is at most the window plus stored-block
/// framing (5 bytes per 16 KiB block), the 2-byte header and the 4-byte
/// Adler-32; anything beyond this bound is corrupt or hostile.
const MAX_STORED_WINDOW: usize = WINDOW_SIZE + 1024;

fn read_u64_be(data: &[u8], cursor: &mut usize) -> Result<u64, IndexError> {
    let bytes = data
        .get(*cursor..*cursor + 8)
        .ok_or(IndexError::Truncated)?;
    *cursor += 8;
    Ok(u64::from_be_bytes(bytes.try_into().unwrap()))
}

fn read_u32_be(data: &[u8], cursor: &mut usize) -> Result<u32, IndexError> {
    let bytes = data
        .get(*cursor..*cursor + 4)
        .ok_or(IndexError::Truncated)?;
    *cursor += 4;
    Ok(u32::from_be_bytes(bytes.try_into().unwrap()))
}

/// Parses a gztool `.gzi` file into a native index.
pub fn import(data: &[u8]) -> Result<ImportedIndex, IndexError> {
    match rgz_index::detect_format(data) {
        DetectedFormat::Gztool => {}
        DetectedFormat::GztoolWithLines => return Err(IndexError::UnsupportedVersion(1)),
        _ => return Err(IndexError::BadMagic),
    }
    let mut cursor = ZERO_PREFIX + MAGIC_V0.len();
    let _planned = read_u64_be(data, &mut cursor)?;
    let have = read_u64_be(data, &mut cursor)?;
    // Bound the declared count by what the remaining bytes could possibly
    // hold *before* any allocation: each point is at least POINT_FIXED_LEN
    // bytes, and the trailing file size takes 8 more.
    let remaining = data.len().saturating_sub(HEADER_LEN + 8);
    if have > (remaining / POINT_FIXED_LEN) as u64 {
        return Err(IndexError::PointCountTooLarge { count: have });
    }

    let mut points = Vec::with_capacity(have as usize);
    for _ in 0..have {
        let out = read_u64_be(data, &mut cursor)?;
        let within = read_u64_be(data, &mut cursor)?;
        let bits = read_u32_be(data, &mut cursor)?;
        let window_size = read_u32_be(data, &mut cursor)? as usize;
        if window_size > MAX_STORED_WINDOW {
            return Err(IndexError::WindowTooLarge {
                length: window_size as u64,
            });
        }
        let compressed_bit_offset = bit_offset_from_parts(within, bits)?;
        let stored = data
            .get(cursor..cursor + window_size)
            .ok_or(IndexError::Truncated)?;
        cursor += window_size;
        let window = if window_size == 0 {
            None
        } else {
            Some(decode_window(stored)?)
        };
        points.push(RawSeekPoint {
            compressed_bit_offset,
            uncompressed_offset: out,
            window,
        });
    }
    let uncompressed_size = read_u64_be(data, &mut cursor)?;
    // gztool does not record the compressed size; leave it unknown (0).
    assemble(points, 0, uncompressed_size, DetectedFormat::Gztool)
}

/// Decodes one stored window, keeping the raw-DEFLATE body as the record's
/// compressed payload whenever it fits the native bound, so the import does
/// not have to recompress anything.
fn decode_window(stored: &[u8]) -> Result<CompressedWindow, IndexError> {
    let window = zlib::decompress(stored, WINDOW_SIZE).map_err(|error| match error {
        zlib::ZlibError::Truncated => IndexError::Truncated,
        zlib::ZlibError::ChecksumMismatch { .. } => IndexError::ChecksumMismatch,
        _ => IndexError::InvalidWindow,
    })?;
    let body = &stored[2..stored.len() - 4];
    if body.len() < window.len() && body.len() <= WINDOW_SIZE {
        Ok(CompressedWindow {
            flags: flags::COMPRESSED,
            original_length: window.len() as u32,
            window_length: window.len() as u32,
            checksum: crc32(&window),
            payload: body.to_vec(),
        })
    } else {
        // An incompressible window: its zlib body may exceed the native
        // payload bound, so store the plain bytes instead.
        Ok(CompressedWindow::from_window_verbatim(&window))
    }
}

/// Serialises a native index as a gztool v0 `.gzi` file.
///
/// Sparse (span-reduced) windows are written zero-padded back to their full
/// length: that decodes identically for every span the index describes.
/// Window-less points keep `window_size = 0`, which gztool understands.
pub fn export(index: &GzipIndex) -> Vec<u8> {
    let points = index.block_map.points();
    let mut out = Vec::new();
    out.extend_from_slice(&[0u8; ZERO_PREFIX]);
    out.extend_from_slice(MAGIC_V0);
    out.extend_from_slice(&(points.len() as u64).to_be_bytes());
    out.extend_from_slice(&(points.len() as u64).to_be_bytes());
    for point in points {
        let (within, bits) = bit_offset_to_parts(point.compressed_bit_offset);
        out.extend_from_slice(&point.uncompressed_offset.to_be_bytes());
        out.extend_from_slice(&within.to_be_bytes());
        out.extend_from_slice(&bits.to_be_bytes());
        let window = index
            .window_map
            .get_compressed(point.compressed_bit_offset)
            .and_then(|record| record.decompress_padded().ok())
            .unwrap_or_default();
        if window.is_empty() {
            out.extend_from_slice(&0u32.to_be_bytes());
        } else {
            let stored = zlib::compress(&window);
            out.extend_from_slice(&(stored.len() as u32).to_be_bytes());
            out.extend_from_slice(&stored);
        }
    }
    out.extend_from_slice(&index.effective_uncompressed_size().to_be_bytes());
    out
}
