//! The indexed_gzip on-disk index format (magic `GZIDX`, versions 0 and 1).
//!
//! indexed_gzip (<https://github.com/pauldmccarthy/indexed_gzip>) exports
//! its `zran` seek-point list as a flat little-endian file:
//!
//! ```text
//! offset  size  field
//! 0       5     magic "GZIDX"
//! 5       1     version (0 or 1)
//! 6       1     reserved flags (must be 0)
//! 7       8     compressed file size      u64 LE
//! 15      8     uncompressed file size    u64 LE
//! 23      4     point spacing             u32 LE
//! 27      4     window size               u32 LE (<= 32768)
//! 31      4     point count               u32 LE
//! 35      ...   point records, then window data blocks
//! ```
//!
//! A point record is `cmp_offset u64 LE, uncmp_offset u64 LE, bits u8`
//! (zran convention: a non-zero `bits` puts the block `bits` bits before
//! `cmp_offset * 8`), plus — in version 1 only — a one-byte flag telling
//! whether the point owns a window data block.  In version 0 every point
//! except those at uncompressed offset zero owns one.  The window data
//! blocks follow the point list in point order, each exactly `window size`
//! bytes, **uncompressed**.

use rgz_index::{DetectedFormat, GzipIndex, IndexError, WINDOW_SIZE};
use rgz_window::CompressedWindow;

use crate::convert::{assemble, bit_offset_from_parts, bit_offset_to_parts, RawSeekPoint};
use crate::ImportedIndex;

const MAGIC: &[u8; 5] = b"GZIDX";
const HEADER_LEN: usize = 5 + 1 + 1 + 8 + 8 + 4 + 4 + 4;

fn read_u64_le(data: &[u8], cursor: &mut usize) -> Result<u64, IndexError> {
    let bytes = data
        .get(*cursor..*cursor + 8)
        .ok_or(IndexError::Truncated)?;
    *cursor += 8;
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

fn read_u32_le(data: &[u8], cursor: &mut usize) -> Result<u32, IndexError> {
    let bytes = data
        .get(*cursor..*cursor + 4)
        .ok_or(IndexError::Truncated)?;
    *cursor += 4;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn read_u8(data: &[u8], cursor: &mut usize) -> Result<u8, IndexError> {
    let byte = *data.get(*cursor).ok_or(IndexError::Truncated)?;
    *cursor += 1;
    Ok(byte)
}

/// Parses an indexed_gzip `GZIDX` file into a native index.
pub fn import(data: &[u8]) -> Result<ImportedIndex, IndexError> {
    if rgz_index::detect_format(data) != DetectedFormat::IndexedGzip {
        return Err(IndexError::BadMagic);
    }
    if data.len() < HEADER_LEN {
        return Err(IndexError::Truncated);
    }
    let version = data[5];
    if version > 1 {
        return Err(IndexError::UnsupportedVersion(u32::from(version)));
    }
    if data[6] != 0 {
        return Err(IndexError::InvalidPoint("reserved header flags set"));
    }
    let mut cursor = 7usize;
    let compressed_size = read_u64_le(data, &mut cursor)?;
    let uncompressed_size = read_u64_le(data, &mut cursor)?;
    let _spacing = read_u32_le(data, &mut cursor)?;
    let window_size = read_u32_le(data, &mut cursor)? as usize;
    if window_size > WINDOW_SIZE {
        return Err(IndexError::WindowTooLarge {
            length: window_size as u64,
        });
    }
    let point_count = read_u32_le(data, &mut cursor)? as u64;
    // Bound the declared count before allocating: a point record is at
    // least 17 bytes (18 in version 1).
    let record_len = if version == 0 { 17 } else { 18 };
    let remaining = data.len().saturating_sub(HEADER_LEN);
    if point_count > (remaining / record_len) as u64 {
        return Err(IndexError::PointCountTooLarge { count: point_count });
    }

    // First pass: the fixed-size point records.
    let mut parsed: Vec<(u64, u64, bool)> = Vec::with_capacity(point_count as usize);
    for _ in 0..point_count {
        let cmp_offset = read_u64_le(data, &mut cursor)?;
        let uncmp_offset = read_u64_le(data, &mut cursor)?;
        let bits = read_u8(data, &mut cursor)?;
        let has_window = if version == 0 {
            // Version 0 stores a window for every point that has history.
            uncmp_offset != 0
        } else {
            read_u8(data, &mut cursor)? != 0
        };
        let compressed_bit_offset = bit_offset_from_parts(cmp_offset, u32::from(bits))?;
        parsed.push((compressed_bit_offset, uncmp_offset, has_window));
    }

    // Second pass: the window data blocks, `window_size` bytes each, in
    // point order.
    let mut points = Vec::with_capacity(parsed.len());
    for (compressed_bit_offset, uncompressed_offset, has_window) in parsed {
        let window = if has_window && window_size > 0 {
            let stored = data
                .get(cursor..cursor + window_size)
                .ok_or(IndexError::Truncated)?;
            cursor += window_size;
            // Stored verbatim (the file keeps windows uncompressed); the v2
            // exporter recompresses on the way out, exactly like the native
            // v1 import path.
            Some(CompressedWindow::from_window_verbatim(stored))
        } else {
            None
        };
        points.push(RawSeekPoint {
            compressed_bit_offset,
            uncompressed_offset,
            window,
        });
    }
    assemble(
        points,
        compressed_size,
        uncompressed_size,
        DetectedFormat::IndexedGzip,
    )
}

/// Serialises a native index as an indexed_gzip version-1 `GZIDX` file.
///
/// The format requires every window data block to be exactly the header's
/// `window size` (32 KiB here): shorter stored windows — early seek points
/// and span-reduced (sparse) ones — are zero-padded at the *front*, which
/// decodes identically because DEFLATE back-references never reach past the
/// real history.  Points with no window at all are flagged as data-less.
pub fn export(index: &GzipIndex) -> Vec<u8> {
    let points = index.block_map.points();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(1u8); // version
    out.push(0u8); // reserved flags
    out.extend_from_slice(&index.compressed_size.to_le_bytes());
    out.extend_from_slice(&index.effective_uncompressed_size().to_le_bytes());
    // Nominal spacing: the largest gap between successive points (the
    // format's tools only use it as a hint), floored at the window size.
    let spacing = points
        .windows(2)
        .map(|pair| pair[1].uncompressed_offset - pair[0].uncompressed_offset)
        .max()
        .unwrap_or(0)
        .max(WINDOW_SIZE as u64)
        .min(u64::from(u32::MAX)) as u32;
    out.extend_from_slice(&spacing.to_le_bytes());
    out.extend_from_slice(&(WINDOW_SIZE as u32).to_le_bytes());
    out.extend_from_slice(&(points.len() as u32).to_le_bytes());

    let mut windows: Vec<Option<Vec<u8>>> = Vec::with_capacity(points.len());
    for point in points {
        let window = index
            .window_map
            .get_compressed(point.compressed_bit_offset)
            .and_then(|record| record.decompress_padded().ok())
            .filter(|window| !window.is_empty())
            .map(|window| {
                let mut padded = vec![0u8; WINDOW_SIZE - window.len()];
                padded.extend_from_slice(&window);
                padded
            });
        let (cmp_offset, bits) = bit_offset_to_parts(point.compressed_bit_offset);
        out.extend_from_slice(&cmp_offset.to_le_bytes());
        out.extend_from_slice(&point.uncompressed_offset.to_le_bytes());
        out.push(bits as u8);
        out.push(u8::from(window.is_some()));
        windows.push(window);
    }
    for window in windows.into_iter().flatten() {
        out.extend_from_slice(&window);
    }
    out
}
