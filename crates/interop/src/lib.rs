//! On-disk index interop: importers and exporters for the gztool (`.gzi`)
//! and indexed_gzip (`GZIDX`) seek-point index formats.
//!
//! The paper positions rapidgzip against gztool and indexed_gzip, whose
//! defining feature is a *reusable* on-disk index.  This crate makes the
//! native [`GzipIndex`] a citizen of that ecosystem:
//!
//! * [`import_index`] sniffs the magic bytes ([`rgz_index::detect_format`])
//!   and parses native v1/v2, gztool v0 and indexed_gzip v0/v1 files into a
//!   [`GzipIndex`], normalising zran-style *(byte, bits)* offsets into
//!   absolute bit offsets, deriving per-point spans, dropping window-less
//!   interior points (reported, never silently) and synthesising a leading
//!   point so the head of the file stays readable;
//! * [`export_index`] writes any of the four formats; foreign windows go
//!   through the same [`rgz_window`] records as native ones, so v2
//!   sparsification/compression still applies on the way in and
//!   zero-padding restores full windows on the way out;
//! * [`AnyIndexFormat`] is the CLI-facing name for "one of the four".
//!
//! Hostile files fail with typed [`IndexError`]s *before* any large
//! allocation: declared point counts are bounded by the file length,
//! declared window lengths by the 32 KiB window bound, and zlib windows are
//! inflated through an output-limited decoder.

pub mod convert;
pub mod gztool;
pub mod indexed_gzip;
pub mod zlib;

use std::str::FromStr;

pub use convert::ImportedIndex;
use rgz_index::{DetectedFormat, GzipIndex, IndexError, IndexFormat};

/// Any index format this workspace can read and write: the two native
/// container versions plus the two foreign formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyIndexFormat {
    /// The native `RGZIDX01` container (v1, v2 or v3).
    Native(IndexFormat),
    /// gztool's `.gzi` v0 format.
    Gztool,
    /// indexed_gzip's `GZIDX` format (written as version 1).
    IndexedGzip,
}

impl Default for AnyIndexFormat {
    fn default() -> Self {
        AnyIndexFormat::Native(IndexFormat::default())
    }
}

impl std::fmt::Display for AnyIndexFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyIndexFormat::Native(IndexFormat::V1) => write!(f, "v1"),
            AnyIndexFormat::Native(IndexFormat::V2) => write!(f, "v2"),
            AnyIndexFormat::Native(IndexFormat::V3) => write!(f, "v3"),
            AnyIndexFormat::Gztool => write!(f, "gztool"),
            AnyIndexFormat::IndexedGzip => write!(f, "indexed-gzip"),
        }
    }
}

impl FromStr for AnyIndexFormat {
    type Err = String;

    fn from_str(value: &str) -> Result<Self, Self::Err> {
        match value {
            "gztool" | "gzi" => Ok(AnyIndexFormat::Gztool),
            "indexed-gzip" | "indexed_gzip" | "gzidx" => Ok(AnyIndexFormat::IndexedGzip),
            other => other
                .parse::<IndexFormat>()
                .map(AnyIndexFormat::Native)
                .map_err(|_| {
                    format!(
                        "unknown index format '{other}' \
                         (expected v1, v2, v3, gztool or indexed-gzip)"
                    )
                }),
        }
    }
}

/// Imports an index in whichever supported format the bytes are in,
/// dispatching on the magic.
pub fn import_index(data: &[u8]) -> Result<ImportedIndex, IndexError> {
    match rgz_index::detect_format(data) {
        DetectedFormat::Rgz => {
            let index = GzipIndex::import(data)?;
            let checksummed_points = index.checksum_map.len();
            Ok(ImportedIndex {
                index,
                format: DetectedFormat::Rgz,
                windowless_points_dropped: 0,
                synthesized_leading_point: false,
                checksummed_points,
            })
        }
        DetectedFormat::Gztool | DetectedFormat::GztoolWithLines => gztool::import(data),
        DetectedFormat::IndexedGzip => indexed_gzip::import(data),
        DetectedFormat::Unknown => Err(IndexError::BadMagic),
    }
}

/// Serialises an index in the requested format.
pub fn export_index(index: &GzipIndex, format: AnyIndexFormat) -> Vec<u8> {
    match format {
        AnyIndexFormat::Native(native) => index.export_as(native),
        AnyIndexFormat::Gztool => gztool::export(index),
        AnyIndexFormat::IndexedGzip => indexed_gzip::export(index),
    }
}

/// What an export could not represent in the target format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportReport {
    /// Seek points whose stored CRC-32 fragments were dropped because the
    /// target format (native v1/v2, gztool, indexed_gzip) cannot carry them.
    /// Random-access reads through the exported file will be unverifiable.
    pub checksummed_points_dropped: usize,
}

/// Like [`export_index`], but also reports what the target format lost.
/// Only native v3 preserves per-point checksum fragments.
pub fn export_index_with_report(
    index: &GzipIndex,
    format: AnyIndexFormat,
) -> (Vec<u8>, ExportReport) {
    let dropped = match format {
        AnyIndexFormat::Native(IndexFormat::V3) => 0,
        _ => index.checksum_map.len(),
    };
    (
        export_index(index, format),
        ExportReport {
            checksummed_points_dropped: dropped,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rgz_index::{SeekPoint, WINDOW_SIZE};

    /// A deterministic index whose windows are full 32 KiB buffers (the
    /// shape both foreign formats represent losslessly).
    fn full_window_index(point_count: u64) -> GzipIndex {
        let mut index = GzipIndex::new();
        index.compressed_size = 123_456;
        let mut uncompressed = 0u64;
        // First point: start of the stream, no history.
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 0,
                uncompressed_offset: 0,
                uncompressed_size: 100_000,
            },
            &[],
        );
        uncompressed += 100_000;
        let mut compressed_bits = 80u64;
        for i in 0..point_count {
            let window: Vec<u8> = (0..WINDOW_SIZE)
                .map(|j| ((j as u64 * 31 + i * 7) % 256) as u8)
                .collect();
            compressed_bits += 50_001 + i; // exercises all sub-byte phases
            index.add_seek_point(
                SeekPoint {
                    compressed_bit_offset: compressed_bits,
                    uncompressed_offset: uncompressed,
                    uncompressed_size: 100_000,
                },
                &window,
            );
            uncompressed += 100_000;
        }
        index.uncompressed_size = uncompressed;
        index
    }

    fn assert_same_points_and_windows(imported: &GzipIndex, original: &GzipIndex) {
        assert_eq!(imported.block_map.points(), original.block_map.points());
        for point in original.block_map.points() {
            assert_eq!(
                imported
                    .window_map
                    .get(point.compressed_bit_offset)
                    .as_deref(),
                original
                    .window_map
                    .get(point.compressed_bit_offset)
                    .as_deref(),
                "window mismatch at bit offset {}",
                point.compressed_bit_offset
            );
        }
    }

    #[test]
    fn gztool_round_trip_is_lossless_for_windowed_points() {
        let index = full_window_index(5);
        let serialized = export_index(&index, AnyIndexFormat::Gztool);
        assert_eq!(
            rgz_index::detect_format(&serialized),
            DetectedFormat::Gztool
        );
        let imported = import_index(&serialized).unwrap();
        assert_eq!(imported.format, DetectedFormat::Gztool);
        assert_eq!(imported.windowless_points_dropped, 0);
        assert!(!imported.synthesized_leading_point);
        assert_eq!(imported.index.uncompressed_size, index.uncompressed_size);
        assert_same_points_and_windows(&imported.index, &index);
    }

    #[test]
    fn indexed_gzip_round_trip_is_lossless_for_windowed_points() {
        let index = full_window_index(5);
        let serialized = export_index(&index, AnyIndexFormat::IndexedGzip);
        assert_eq!(
            rgz_index::detect_format(&serialized),
            DetectedFormat::IndexedGzip
        );
        let imported = import_index(&serialized).unwrap();
        assert_eq!(imported.format, DetectedFormat::IndexedGzip);
        assert_eq!(imported.windowless_points_dropped, 0);
        assert_eq!(imported.index.compressed_size, index.compressed_size);
        assert_eq!(imported.index.uncompressed_size, index.uncompressed_size);
        assert_same_points_and_windows(&imported.index, &index);
    }

    #[test]
    fn gztool_round_trip_preserves_short_windows_exactly() {
        // gztool stores window lengths explicitly, so even windows shorter
        // than 32 KiB survive byte-exactly (indexed_gzip pads those).
        let mut index = GzipIndex::new();
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 0,
                uncompressed_offset: 0,
                uncompressed_size: 500,
            },
            &[],
        );
        let short: Vec<u8> = (0..500u32).map(|i| (i % 256) as u8).collect();
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 4003,
                uncompressed_offset: 500,
                uncompressed_size: 700,
            },
            &short,
        );
        index.uncompressed_size = 1200;
        let imported = import_index(&export_index(&index, AnyIndexFormat::Gztool)).unwrap();
        assert_same_points_and_windows(&imported.index, &index);
    }

    #[test]
    fn indexed_gzip_pads_short_windows_to_the_window_size() {
        let mut index = GzipIndex::new();
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 0,
                uncompressed_offset: 0,
                uncompressed_size: 500,
            },
            &[],
        );
        let short = vec![0xAAu8; 600];
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 4003,
                uncompressed_offset: 500,
                uncompressed_size: 700,
            },
            &short,
        );
        index.uncompressed_size = 1200;
        let imported = import_index(&export_index(&index, AnyIndexFormat::IndexedGzip)).unwrap();
        let window = imported.index.window_map.get(4003).unwrap();
        assert_eq!(window.len(), WINDOW_SIZE);
        assert!(window[..WINDOW_SIZE - 600].iter().all(|&b| b == 0));
        assert_eq!(&window[WINDOW_SIZE - 600..], &short[..]);
    }

    #[test]
    fn windowless_interior_points_are_dropped_and_spans_merged() {
        // Hand-craft an indexed_gzip v1 file whose middle point has no
        // window: the import must drop it and extend the previous span.
        let index = full_window_index(2);
        let mut serialized = export_index(&index, AnyIndexFormat::IndexedGzip);
        // Point records start at byte 35; each is 18 bytes; the data flag is
        // the record's last byte.  Clear the flag of point 1 (the second).
        let flag_position = 35 + 18 + 17;
        assert_eq!(serialized[flag_position], 1);
        serialized[flag_position] = 0;
        // Remove its 32 KiB window block (the first data block, since point
        // 0 has none).
        let data_start = 35 + 3 * 18;
        serialized.drain(data_start..data_start + WINDOW_SIZE);

        let imported = import_index(&serialized).unwrap();
        assert_eq!(imported.windowless_points_dropped, 1);
        assert_eq!(imported.index.block_map.len(), 2);
        let first = &imported.index.block_map.points()[0];
        // Point 0's span now covers the dropped point's data.
        assert_eq!(first.uncompressed_size, 200_000);
    }

    #[test]
    fn foreign_index_without_a_leading_point_gets_a_synthetic_one() {
        // gztool/zran indexes often start at the first span boundary, not at
        // offset zero.
        let mut index = GzipIndex::new();
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 256) as u8).collect();
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 1_000_003,
                uncompressed_offset: 1 << 20,
                uncompressed_size: 1 << 20,
            },
            &window,
        );
        index.uncompressed_size = 2 << 20;
        let imported = import_index(&export_index(&index, AnyIndexFormat::Gztool)).unwrap();
        assert!(imported.synthesized_leading_point);
        let points = imported.index.block_map.points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].compressed_bit_offset, 0);
        assert_eq!(points[0].uncompressed_offset, 0);
        assert_eq!(points[0].uncompressed_size, 1 << 20);
        assert_eq!(points[1], index.block_map.points()[0]);
    }

    #[test]
    fn sparse_windows_export_zero_padded() {
        let mut index = GzipIndex::new();
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 0,
                uncompressed_offset: 0,
                uncompressed_size: 64_000,
            },
            &[],
        );
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 253) as u8).collect();
        let usage = vec![(30_000u32, 100u32)];
        index.add_seek_point_sparse(
            SeekPoint {
                compressed_bit_offset: 777_777,
                uncompressed_offset: 64_000,
                uncompressed_size: 64_000,
            },
            &window,
            &usage,
        );
        index.uncompressed_size = 128_000;
        for format in [AnyIndexFormat::Gztool, AnyIndexFormat::IndexedGzip] {
            let imported = import_index(&export_index(&index, format)).unwrap();
            let restored = imported.index.window_map.get(777_777).unwrap();
            assert_eq!(restored.len(), WINDOW_SIZE, "{format}");
            assert!(restored[..30_000].iter().all(|&b| b == 0));
            assert_eq!(&restored[30_000..30_100], &window[30_000..30_100]);
            assert!(restored[30_100..].iter().all(|&b| b == 0));
        }
    }

    /// A minimal hand-built gztool file with one interior window-less
    /// point.
    fn gztool_all_windowless(file_size: u64) -> Vec<u8> {
        let mut data = vec![0u8; 8];
        data.extend_from_slice(b"gzipindx");
        data.extend_from_slice(&1u64.to_be_bytes()); // planned
        data.extend_from_slice(&1u64.to_be_bytes()); // have
        data.extend_from_slice(&100_000u64.to_be_bytes()); // out
        data.extend_from_slice(&5_000u64.to_be_bytes()); // in
        data.extend_from_slice(&0u32.to_be_bytes()); // bits
        data.extend_from_slice(&0u32.to_be_bytes()); // window_size
        data.extend_from_slice(&file_size.to_be_bytes());
        data
    }

    #[test]
    fn dropping_every_point_still_covers_the_stream_or_errors() {
        // Known total: a synthetic point spans the whole stream, so the
        // index never silently reads as empty.
        let imported = import_index(&gztool_all_windowless(250_000)).unwrap();
        assert_eq!(imported.windowless_points_dropped, 1);
        assert!(imported.synthesized_leading_point);
        let points = imported.index.block_map.points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].compressed_bit_offset, 0);
        assert_eq!(points[0].uncompressed_offset, 0);
        assert_eq!(points[0].uncompressed_size, 250_000);

        // Unknown total: the index would carry no information; refuse it.
        assert!(matches!(
            import_index(&gztool_all_windowless(0)).unwrap_err(),
            IndexError::InvalidPoint(_)
        ));
    }

    #[test]
    fn format_names_parse_and_print() {
        for (name, format) in [
            ("v1", AnyIndexFormat::Native(IndexFormat::V1)),
            ("v2", AnyIndexFormat::Native(IndexFormat::V2)),
            ("v3", AnyIndexFormat::Native(IndexFormat::V3)),
            ("gztool", AnyIndexFormat::Gztool),
            ("gzi", AnyIndexFormat::Gztool),
            ("indexed-gzip", AnyIndexFormat::IndexedGzip),
            ("indexed_gzip", AnyIndexFormat::IndexedGzip),
            ("gzidx", AnyIndexFormat::IndexedGzip),
        ] {
            assert_eq!(name.parse::<AnyIndexFormat>().unwrap(), format);
        }
        assert!("bgzf".parse::<AnyIndexFormat>().is_err());
        assert_eq!(AnyIndexFormat::Gztool.to_string(), "gztool");
        assert_eq!(AnyIndexFormat::IndexedGzip.to_string(), "indexed-gzip");
        assert_eq!(AnyIndexFormat::default().to_string(), "v3");
    }

    #[test]
    fn native_files_pass_through_import_index() {
        let index = full_window_index(2);
        for native in [IndexFormat::V1, IndexFormat::V2, IndexFormat::V3] {
            let imported = import_index(&index.export_as(native)).unwrap();
            assert_eq!(imported.format, DetectedFormat::Rgz);
            assert_same_points_and_windows(&imported.index, &index);
        }
        assert_eq!(
            import_index(b"not an index at all").unwrap_err(),
            IndexError::BadMagic
        );
    }

    /// Attaches a stored CRC fragment to every seek point of `index`.
    fn checksum_every_point(index: &GzipIndex) {
        for (position, point) in index.block_map.points().iter().enumerate() {
            index.checksum_map.insert(
                point.compressed_bit_offset,
                rgz_index::PointChecksums::from_fragments(
                    position as u64,
                    [(0xDEAD_BEEF ^ position as u32, point.uncompressed_size)],
                ),
            );
        }
    }

    #[test]
    fn only_native_v3_round_trips_checksum_fragments() {
        let index = full_window_index(2);
        checksum_every_point(&index);
        let total = index.checksum_map.len();
        assert_eq!(total, 3);

        let (serialized, report) =
            export_index_with_report(&index, AnyIndexFormat::Native(IndexFormat::V3));
        assert_eq!(report.checksummed_points_dropped, 0);
        let imported = import_index(&serialized).unwrap();
        assert_eq!(imported.checksummed_points, total);
        assert_eq!(imported.index.checksum_map.len(), total);

        for lossy in [
            AnyIndexFormat::Native(IndexFormat::V1),
            AnyIndexFormat::Native(IndexFormat::V2),
            AnyIndexFormat::Gztool,
            AnyIndexFormat::IndexedGzip,
        ] {
            let (serialized, report) = export_index_with_report(&index, lossy);
            assert_eq!(report.checksummed_points_dropped, total, "{lossy}");
            let imported = import_index(&serialized).unwrap();
            assert_eq!(imported.checksummed_points, 0, "{lossy}");
            assert!(imported.index.checksum_map.is_empty(), "{lossy}");
        }
    }

    #[test]
    fn gztool_v1_line_format_is_rejected_not_misparsed() {
        let index = full_window_index(1);
        let mut serialized = export_index(&index, AnyIndexFormat::Gztool);
        serialized[15] = b'X'; // "gzipindx" -> "gzipindX"
        assert_eq!(
            import_index(&serialized).unwrap_err(),
            IndexError::UnsupportedVersion(1)
        );
    }

    #[test]
    fn absurd_point_counts_fail_before_any_allocation() {
        let index = full_window_index(1);

        let mut gzi = export_index(&index, AnyIndexFormat::Gztool);
        // The "have" count lives at bytes 24..32, big-endian.
        gzi[24..32].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(matches!(
            import_index(&gzi).unwrap_err(),
            IndexError::PointCountTooLarge { count: u64::MAX }
        ));

        let mut gzidx = export_index(&index, AnyIndexFormat::IndexedGzip);
        // The point count lives at bytes 31..35, little-endian.
        gzidx[31..35].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            import_index(&gzidx).unwrap_err(),
            IndexError::PointCountTooLarge { .. }
        ));
    }

    #[test]
    fn oversized_window_lengths_fail_before_any_allocation() {
        let index = full_window_index(1);

        let mut gzi = export_index(&index, AnyIndexFormat::Gztool);
        // Point 0 has no window; its record starts at byte 32 and its
        // window_size field sits at offset 20 within the record.
        gzi[32 + 20..32 + 24].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            import_index(&gzi).unwrap_err(),
            IndexError::WindowTooLarge {
                length
            } if length == u64::from(u32::MAX)
        ));

        let mut gzidx = export_index(&index, AnyIndexFormat::IndexedGzip);
        // The header's window size field sits at bytes 27..31.
        gzidx[27..31].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            import_index(&gzidx).unwrap_err(),
            IndexError::WindowTooLarge { .. }
        ));
    }

    #[test]
    fn non_monotonic_and_invalid_points_are_typed_errors_not_panics() {
        let index = full_window_index(2);

        // Swap the uncompressed offsets of points 1 and 2 in a gztool file:
        // point 1's "out" field (record 1 starts right after record 0's
        // empty window at byte 32 + 24).
        let mut gzi = export_index(&index, AnyIndexFormat::Gztool);
        gzi[56..64].copy_from_slice(&(5_000_000u64).to_be_bytes());
        assert!(matches!(
            import_index(&gzi).unwrap_err(),
            IndexError::NonMonotonic { .. }
        ));

        // A bits field outside 0..=7.
        let mut gzi = export_index(&index, AnyIndexFormat::Gztool);
        gzi[32 + 16..32 + 20].copy_from_slice(&99u32.to_be_bytes());
        assert_eq!(
            import_index(&gzi).unwrap_err(),
            IndexError::InvalidPoint("bit count outside 0..=7")
        );

        // indexed_gzip: cmp_offset 0 with bits > 0 would underflow.
        let mut gzidx = export_index(&index, AnyIndexFormat::IndexedGzip);
        gzidx[35..43].copy_from_slice(&0u64.to_le_bytes());
        gzidx[35 + 16] = 3;
        assert!(matches!(
            import_index(&gzidx).unwrap_err(),
            IndexError::InvalidPoint(_)
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Truncating a foreign index anywhere must fail with a typed error,
        /// never panic or allocate absurdly.
        #[test]
        fn truncated_foreign_files_fail_cleanly(
            point_count in 1u64..4,
            cut_seed in 0usize..1_000_000,
        ) {
            let index = full_window_index(point_count);
            for format in [AnyIndexFormat::Gztool, AnyIndexFormat::IndexedGzip] {
                let serialized = export_index(&index, format);
                let cut = 1 + cut_seed % (serialized.len() - 1);
                match import_index(&serialized[..cut]) {
                    Err(_) => {}
                    // A cut behind all windows can still parse: the formats
                    // carry no whole-file checksum (their reference tools
                    // accept them too).  It must at least not gain points.
                    Ok(imported) => {
                        prop_assert!(imported.index.block_map.len() <= index.block_map.len() + 1);
                    }
                }
            }
        }

        /// Arbitrary bytes after a valid magic must never panic.
        #[test]
        fn random_bodies_never_panic(
            body in proptest::collection::vec(any::<u8>(), 0..600),
            which in 0usize..3,
        ) {
            let mut data = match which {
                0 => {
                    let mut d = vec![0u8; 8];
                    d.extend_from_slice(b"gzipindx");
                    d
                }
                1 => b"GZIDX\x01\x00".to_vec(),
                _ => b"RGZIDX01".to_vec(),
            };
            data.extend_from_slice(&body);
            let _ = import_index(&data);
        }

        /// gztool round-trips random window contents and lengths exactly.
        #[test]
        fn gztool_round_trips_arbitrary_windows(
            windows in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..1500),
                1..6,
            ),
        ) {
            let mut index = GzipIndex::new();
            index.add_seek_point(
                SeekPoint {
                    compressed_bit_offset: 0,
                    uncompressed_offset: 0,
                    uncompressed_size: 10_000,
                },
                &[],
            );
            let mut uncompressed = 10_000u64;
            let mut compressed_bits = 100_000u64;
            for window in &windows {
                index.add_seek_point(
                    SeekPoint {
                        compressed_bit_offset: compressed_bits,
                        uncompressed_offset: uncompressed,
                        uncompressed_size: 10_000,
                    },
                    window,
                );
                uncompressed += 10_000;
                compressed_bits += 81_003;
            }
            index.uncompressed_size = uncompressed;
            let imported = import_index(&export_index(&index, AnyIndexFormat::Gztool)).unwrap();
            prop_assert_eq!(imported.windowless_points_dropped, 0);
            prop_assert_eq!(imported.index.block_map.points(), index.block_map.points());
            for point in index.block_map.points() {
                prop_assert_eq!(
                    imported.index.window_map.get(point.compressed_bit_offset).as_deref(),
                    index.window_map.get(point.compressed_bit_offset).as_deref()
                );
            }
        }
    }
}
