//! A minimal zlib (RFC 1950) wrapper around the workspace's raw-DEFLATE
//! codec.
//!
//! gztool stores each seek-point window as a zlib stream: a two-byte header,
//! a raw DEFLATE body, and a big-endian Adler-32 of the decompressed bytes.
//! The workspace's `rgz_deflate` crate speaks raw DEFLATE only, so this
//! module adds exactly the framing gztool needs — nothing more (preset
//! dictionaries are rejected, not implemented).

use rgz_bitio::BitReader;
use rgz_checksum::adler32;
use rgz_deflate::{
    inflate_limited, CompressionLevel, CompressorOptions, DeflateCompressor, DeflateError,
};
use rgz_window::WINDOW_SIZE;

/// Errors from decoding a zlib stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZlibError {
    /// The two-byte header is malformed (bad method, window size, or header
    /// check), or requests an unsupported feature (preset dictionary).
    BadHeader,
    /// The stream ends before the Adler-32 trailer.
    Truncated,
    /// The DEFLATE body is malformed or expands past the caller's limit.
    Deflate(DeflateError),
    /// The decompressed bytes do not hash to the stored Adler-32.
    ChecksumMismatch {
        /// Adler-32 stored in the trailer.
        expected: u32,
        /// Adler-32 of the bytes actually produced.
        actual: u32,
    },
}

impl std::fmt::Display for ZlibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZlibError::BadHeader => write!(f, "malformed or unsupported zlib header"),
            ZlibError::Truncated => write!(f, "truncated zlib stream"),
            ZlibError::Deflate(e) => write!(f, "zlib DEFLATE body: {e}"),
            ZlibError::ChecksumMismatch { expected, actual } => write!(
                f,
                "zlib Adler-32 mismatch: stored {expected:#010x}, computed {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for ZlibError {}

/// CMF byte: method 8 (DEFLATE), 32 KiB window.
const CMF: u8 = 0x78;
/// FLG byte for `CMF = 0x78`, default compression level, no dictionary:
/// `(0x78 << 8 | 0x9C) % 31 == 0`.
const FLG: u8 = 0x9C;

/// Compresses `data` into a zlib stream (header, raw DEFLATE, Adler-32).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let compressor = DeflateCompressor::new(CompressorOptions {
        level: CompressionLevel::Default,
        // Windows are at most 32 KiB: one DEFLATE block suffices.
        block_size: WINDOW_SIZE,
        force_dynamic: false,
    });
    let body = compressor.compress(data);
    let mut out = Vec::with_capacity(body.len() + 6);
    out.push(CMF);
    out.push(FLG);
    out.extend_from_slice(&body);
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompresses a zlib stream, bounding the output at `limit` bytes so a
/// hostile stream cannot balloon before validation.
pub fn decompress(data: &[u8], limit: usize) -> Result<Vec<u8>, ZlibError> {
    if data.len() < 2 + 4 {
        return Err(ZlibError::Truncated);
    }
    let cmf = data[0];
    let flg = data[1];
    let method = cmf & 0x0F;
    let info = cmf >> 4;
    // FDICT (bit 5 of FLG) would require the 4-byte dictionary id we never
    // write and gztool never uses; reject rather than misparse.
    if method != 8 || info > 7 || (u16::from(cmf) << 8 | u16::from(flg)) % 31 != 0 {
        return Err(ZlibError::BadHeader);
    }
    if flg & 0x20 != 0 {
        return Err(ZlibError::BadHeader);
    }
    let body = &data[2..data.len() - 4];
    let mut reader = BitReader::new(body);
    let mut out = Vec::with_capacity(limit.min(WINDOW_SIZE));
    inflate_limited(&mut reader, &[], &mut out, u64::MAX, limit).map_err(ZlibError::Deflate)?;
    let stored = u32::from_be_bytes(data[data.len() - 4..].try_into().unwrap());
    let actual = adler32(&out);
    if stored != actual {
        return Err(ZlibError::ChecksumMismatch {
            expected: stored,
            actual,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_text_and_binary() {
        for data in [
            b"".to_vec(),
            b"hello zlib hello zlib hello zlib".to_vec(),
            (0..WINDOW_SIZE).map(|i| (i % 251) as u8).collect(),
        ] {
            let stream = compress(&data);
            assert_eq!(stream[0], 0x78);
            assert_eq!(
                (u16::from(stream[0]) << 8 | u16::from(stream[1])) % 31,
                0,
                "header check must divide 31"
            );
            assert_eq!(decompress(&stream, WINDOW_SIZE).unwrap(), data);
        }
    }

    #[test]
    fn rejects_bad_headers_and_corruption() {
        let stream = compress(b"some window bytes");
        assert_eq!(decompress(&[], 100), Err(ZlibError::Truncated));
        assert_eq!(decompress(&stream[..4], 100), Err(ZlibError::Truncated));

        let mut bad_method = stream.clone();
        bad_method[0] = 0x77; // method 7
        assert_eq!(
            decompress(&bad_method, WINDOW_SIZE),
            Err(ZlibError::BadHeader)
        );

        let mut with_dict = stream.clone();
        with_dict[1] |= 0x20;
        // Fix the header check so only FDICT is at fault.
        while (u16::from(with_dict[0]) << 8 | u16::from(with_dict[1])) % 31 != 0 {
            with_dict[1] = with_dict[1].wrapping_add(1) | 0x20;
        }
        assert_eq!(
            decompress(&with_dict, WINDOW_SIZE),
            Err(ZlibError::BadHeader)
        );

        let mut bad_adler = stream.clone();
        let length = bad_adler.len();
        bad_adler[length - 1] ^= 0xFF;
        assert!(matches!(
            decompress(&bad_adler, WINDOW_SIZE),
            Err(ZlibError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn output_limit_stops_hostile_expansion() {
        let bomb = compress(&vec![0u8; 1 << 20]);
        assert!(bomb.len() < 4096);
        assert!(matches!(
            decompress(&bomb, WINDOW_SIZE),
            Err(ZlibError::Deflate(_))
        ));
    }
}
