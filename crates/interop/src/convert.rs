//! The format-independent half of every importer: raw seek points in,
//! [`GzipIndex`] out.
//!
//! Both foreign formats describe a seek point as *(compressed byte offset,
//! sub-byte bit count, uncompressed offset, optional window)* and store
//! neither per-point spans nor (in gztool's case) a point at uncompressed
//! offset zero.  This module normalises all of that into the native model:
//!
//! * bit offsets become absolute (`in * 8 - bits`);
//! * per-point `uncompressed_size` is derived from successive offsets plus
//!   the file's total uncompressed size;
//! * interior points without a window are **dropped** (decoding cannot
//!   resume there; reads fall back to the preceding windowed point), and the
//!   drop is reported;
//! * a synthetic window-less point at offset zero is prepended when the
//!   foreign index starts later, so the head of the file stays readable.

use rgz_index::{DetectedFormat, GzipIndex, IndexError, SeekPoint};
use rgz_window::CompressedWindow;

/// A seek point as parsed from a foreign file, before normalisation.
#[derive(Debug)]
pub(crate) struct RawSeekPoint {
    /// Absolute bit offset of the DEFLATE block the point resumes at.
    pub compressed_bit_offset: u64,
    /// Uncompressed offset of the point.
    pub uncompressed_offset: u64,
    /// The stored window, already validated; `None` for window-less points.
    pub window: Option<CompressedWindow>,
}

/// Converts a foreign *(byte offset, bits)* pair into an absolute bit offset.
///
/// Both gztool and indexed_gzip follow zran's convention: `offset` is the
/// first full byte of the block, and a non-zero `bits` says the block starts
/// `bits` bits *before* that byte (inside `offset - 1`).
pub(crate) fn bit_offset_from_parts(offset: u64, bits: u32) -> Result<u64, IndexError> {
    if bits > 7 {
        return Err(IndexError::InvalidPoint("bit count outside 0..=7"));
    }
    offset
        .checked_mul(8)
        .and_then(|total| total.checked_sub(u64::from(bits)))
        .ok_or(IndexError::InvalidPoint(
            "bit offset outside the addressable range",
        ))
}

/// Splits an absolute bit offset back into zran's *(byte offset, bits)*.
pub(crate) fn bit_offset_to_parts(bit_offset: u64) -> (u64, u32) {
    let bits = ((8 - (bit_offset % 8)) % 8) as u32;
    ((bit_offset + u64::from(bits)) / 8, bits)
}

/// An index imported from a foreign (or native) on-disk format, together
/// with what the conversion had to do to it.
#[derive(Debug)]
pub struct ImportedIndex {
    /// The converted index, ready for `ParallelGzipReader::with_index`.
    pub index: GzipIndex,
    /// Format the bytes were recognised as.
    pub format: DetectedFormat,
    /// Interior seek points discarded because the file stored no window for
    /// them (decoding cannot resume at such a point; reads covering their
    /// span decode forward from the preceding windowed point instead).
    pub windowless_points_dropped: usize,
    /// Whether a synthetic point at offset zero was prepended because the
    /// foreign index only starts deeper into the stream.
    pub synthesized_leading_point: bool,
    /// Seek points that carry stored CRC-32 fragments (only native v3 files
    /// have any).  Zero means random-access reads through this index cannot
    /// be verified and are reported as such by the reader's statistics.
    pub checksummed_points: usize,
}

/// Builds a [`GzipIndex`] out of parsed foreign points and stream totals.
pub(crate) fn assemble(
    points: Vec<RawSeekPoint>,
    compressed_size: u64,
    uncompressed_size: u64,
    format: DetectedFormat,
) -> Result<ImportedIndex, IndexError> {
    let mut kept: Vec<RawSeekPoint> = Vec::with_capacity(points.len());
    let mut dropped = 0usize;
    for point in points {
        // A window-less point can only seed decoding at the very start of
        // the stream (bit offset 0 parses the gzip header; uncompressed
        // offset 0 needs no history).
        let resumable = point.window.is_some()
            || point.uncompressed_offset == 0
            || point.compressed_bit_offset == 0;
        if resumable {
            kept.push(point);
        } else {
            dropped += 1;
        }
    }

    let mut index = GzipIndex {
        compressed_size,
        uncompressed_size,
        ..Default::default()
    };
    // Dropping *every* point must not produce an index that silently reads
    // as an empty stream: with a known total a single synthetic point spans
    // the whole file (reads decode from offset zero); without one the
    // index carries no usable information at all, so refuse it.
    if kept.is_empty() && dropped > 0 && uncompressed_size == 0 {
        return Err(IndexError::InvalidPoint(
            "every seek point is window-less and the total size is unknown",
        ));
    }
    let synthesized = match kept.first() {
        None if uncompressed_size > 0 => {
            index.add_imported_point(
                SeekPoint {
                    compressed_bit_offset: 0,
                    uncompressed_offset: 0,
                    uncompressed_size,
                },
                Some(CompressedWindow::from_window_verbatim(&[])),
            )?;
            true
        }
        Some(first) if first.uncompressed_offset > 0 => {
            index.add_imported_point(
                SeekPoint {
                    compressed_bit_offset: 0,
                    uncompressed_offset: 0,
                    uncompressed_size: first.uncompressed_offset,
                },
                Some(CompressedWindow::from_window_verbatim(&[])),
            )?;
            true
        }
        _ => false,
    };
    // Per-point spans come from the *next* point's offset; the last span
    // runs to the end of the stream (an unknown total of 0 leaves it empty
    // rather than inventing one).
    let ends: Vec<u64> = (0..kept.len())
        .map(|position| match kept.get(position + 1) {
            Some(next) => next.uncompressed_offset,
            None => uncompressed_size.max(kept[position].uncompressed_offset),
        })
        .collect();
    for (position, (point, end)) in kept.into_iter().zip(ends).enumerate() {
        if end < point.uncompressed_offset {
            return Err(IndexError::NonMonotonic {
                point: position as u64,
            });
        }
        // Kept window-less points (starts of streams) get an explicit empty
        // record so imported indexes look exactly like natively built ones,
        // which store a (possibly empty) record for every seek point.
        let record = point
            .window
            .unwrap_or_else(|| CompressedWindow::from_window_verbatim(&[]));
        index.add_imported_point(
            SeekPoint {
                compressed_bit_offset: point.compressed_bit_offset,
                uncompressed_offset: point.uncompressed_offset,
                uncompressed_size: end - point.uncompressed_offset,
            },
            Some(record),
        )?;
    }
    if index.uncompressed_size == 0 {
        index.uncompressed_size = index.effective_uncompressed_size();
    }
    Ok(ImportedIndex {
        index,
        format,
        windowless_points_dropped: dropped,
        synthesized_leading_point: synthesized,
        // Foreign formats store no per-point checksums.
        checksummed_points: 0,
    })
}
