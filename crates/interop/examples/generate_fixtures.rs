//! Regenerates the golden interop fixtures under `tests/fixtures/`.
//!
//! The fixtures pin the exact bytes of every on-disk index format for a
//! small deterministic corpus: `tests/golden_fixtures.rs` re-exports the
//! same index and asserts byte equality, so any unintended change to a
//! serialiser (or to the chunking/sparsification that feeds it) fails CI.
//!
//! Run from anywhere in the workspace:
//!
//! ```text
//! cargo run -p rgz_interop --example generate_fixtures
//! ```
//!
//! An optional first argument redirects the output to another directory
//! (created if needed). The CI `fixture-freshness` job uses this to render
//! the fixtures into a temporary directory and `git diff --no-index` them
//! against the checked-in `tests/fixtures/`, so a serialiser change that
//! forgot to regenerate the goldens fails before the byte-equality tests do.
//!
//! Everything is derived from fixed seeds and fixed reader options; the
//! output is identical on every platform (the vendored `rand` is part of
//! the workspace precisely to keep the corpora deterministic).

use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_gzip::GzipWriter;
use rgz_index::IndexFormat;
use rgz_interop::{export_index, AnyIndexFormat};

fn main() {
    let fixtures = match std::env::args().nth(1) {
        Some(directory) => {
            let path = std::path::PathBuf::from(directory);
            std::fs::create_dir_all(&path).expect("cannot create the output directory");
            path
        }
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fixtures")
            .canonicalize()
            .or_else(|_| {
                let path =
                    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
                std::fs::create_dir_all(&path).map(|_| path)
            })
            .expect("cannot locate tests/fixtures"),
    };

    // The corpus: 200 KB of deterministic FASTQ records, compressed
    // pigz-style (a deflate block boundary every 24 KiB of input) so the
    // chunking actually finds split points in a corpus this small.
    let data = rgz_datagen::fastq_of_size(200_000, 4242);
    let compressed = GzipWriter::default().compress_pigz_like(&data, 24 * 1024);
    std::fs::write(fixtures.join("interop_corpus.gz"), &compressed).unwrap();

    // The index: fixed 8 KiB chunks (small, so the tiny corpus still yields
    // a handful of seek points), built by the ordinary first pass
    // (sparsified, compressed windows included).
    let mut reader = ParallelGzipReader::from_bytes(
        compressed,
        ParallelGzipReaderOptions {
            parallelization: 2,
            chunk_size: 8 * 1024,
            ..Default::default()
        },
    )
    .unwrap();
    let index = reader.build_full_index().unwrap();

    for (name, format) in [
        ("interop_corpus.gzi", AnyIndexFormat::Gztool),
        ("interop_corpus.gzidx", AnyIndexFormat::IndexedGzip),
        (
            "interop_corpus.rgzidx",
            AnyIndexFormat::Native(IndexFormat::V2),
        ),
    ] {
        let serialized = export_index(&index, format);
        std::fs::write(fixtures.join(name), &serialized).unwrap();
        println!(
            "wrote {name}: {} bytes, {} seek points",
            serialized.len(),
            index.block_map.len()
        );
    }
    println!(
        "corpus: {} bytes decompressed, {} seek points",
        data.len(),
        index.block_map.len()
    );
}
