//! Prometheus text exposition format 0.0.4.
//!
//! One `# HELP` / `# TYPE` pair per family, one line per series, histogram
//! families expanded into cumulative `_bucket{le="..."}` series plus `_sum`
//! and `_count`.  Families render in name order and series in label order
//! (both maps are ordered at the source), so output is deterministic and a
//! family can never emit duplicate series.

use crate::{FamilySnapshot, HistogramSnapshot, MetricsSnapshot, SeriesValue};
use std::fmt::Write as _;

/// Escapes a HELP text: backslash and newline, per the format spec.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, newline.
fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats an `f64` the way Prometheus expects (`+Inf`, `-Inf`, `NaN`,
/// shortest round-trip decimal otherwise).
fn format_value(value: f64) -> String {
    if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if value.is_nan() {
        "NaN".to_string()
    } else {
        format!("{value}")
    }
}

/// Renders `{a="x",b="y"}` (empty string when there are no labels), with an
/// optional extra label appended (used for histogram `le`).
fn label_block(names: &[String], values: &[String], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = names
        .iter()
        .zip(values)
        .map(|(name, value)| format!("{name}=\"{}\"", escape_label_value(value)))
        .collect();
    if let Some((name, value)) = extra {
        pairs.push(format!("{name}=\"{}\"", escape_label_value(value)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_histogram(
    out: &mut String,
    family: &FamilySnapshot,
    label_values: &[String],
    histogram: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (bound, bucket) in histogram.bounds.iter().zip(&histogram.buckets) {
        cumulative += bucket;
        let labels = label_block(
            &family.label_names,
            label_values,
            Some(("le", &format_value(*bound))),
        );
        let _ = writeln!(out, "{}_bucket{labels} {cumulative}", family.name);
    }
    let labels = label_block(&family.label_names, label_values, Some(("le", "+Inf")));
    let _ = writeln!(out, "{}_bucket{labels} {}", family.name, histogram.count);
    let labels = label_block(&family.label_names, label_values, None);
    let _ = writeln!(
        out,
        "{}_sum{labels} {}",
        family.name,
        format_value(histogram.sum)
    );
    let _ = writeln!(out, "{}_count{labels} {}", family.name, histogram.count);
}

pub(crate) fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        for series in &family.series {
            match &series.value {
                SeriesValue::Counter(value) => {
                    let labels = label_block(&family.label_names, &series.label_values, None);
                    let _ = writeln!(out, "{}{labels} {value}", family.name);
                }
                SeriesValue::Gauge(value) => {
                    let labels = label_block(&family.label_names, &series.label_values, None);
                    let _ = writeln!(out, "{}{labels} {value}", family.name);
                }
                SeriesValue::Histogram(histogram) => {
                    render_histogram(&mut out, family, &series.label_values, histogram);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn renders_help_type_and_series() {
        let registry = MetricsRegistry::new_enabled();
        registry.counter("plain_total", "A plain counter.").add(3);
        registry
            .counter_with_labels("labeled_total", "By path.", &[("path", "a")])
            .add(1);
        registry
            .counter_with_labels("labeled_total", "By path.", &[("path", "b")])
            .add(2);
        registry.gauge("depth", "A gauge.").set(-4);
        let text = registry.render_prometheus();
        assert!(text.contains("# HELP plain_total A plain counter.\n"));
        assert!(text.contains("# TYPE plain_total counter\n"));
        assert!(text.contains("plain_total 3\n"));
        assert!(text.contains("labeled_total{path=\"a\"} 1\n"));
        assert!(text.contains("labeled_total{path=\"b\"} 2\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("depth -4\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_sum_count() {
        let registry = MetricsRegistry::new_enabled();
        let histogram = registry.histogram("lat_seconds", "Latency.", &[0.5, 1.0]);
        histogram.observe(0.25);
        histogram.observe(0.75);
        histogram.observe(2.0);
        let text = registry.render_prometheus();
        assert!(text.contains("lat_seconds_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_seconds_sum 3\n"));
        assert!(text.contains("lat_seconds_count 3\n"));
    }

    #[test]
    fn escapes_help_and_label_values() {
        let registry = MetricsRegistry::new_enabled();
        registry
            .counter_with_labels(
                "esc_total",
                "line one\nback\\slash",
                &[("file", "a\"b\\c\nd")],
            )
            .inc();
        let text = registry.render_prometheus();
        assert!(text.contains("# HELP esc_total line one\\nback\\\\slash\n"));
        assert!(text.contains("esc_total{file=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
