//! Background sampling: periodic registry snapshots in a bounded ring.
//!
//! Rates ("MB/s over the last tick") need two timestamped snapshots; the
//! [`Sampler`] owns a thread that takes one every `interval`, keeps the last
//! `capacity` of them, and hands each fresh pair to an optional observer —
//! which is how the CLI's `--stats-interval` progress line is produced
//! without touching the decode loop.

use std::collections::VecDeque;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::{MetricsRegistry, MetricsSnapshot};

/// One snapshot with the elapsed time since the sampler started.
#[derive(Debug, Clone)]
pub struct TimedSample {
    pub elapsed: Duration,
    pub snapshot: MetricsSnapshot,
}

/// Two consecutive samples — everything a rate computation needs.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    pub previous: TimedSample,
    pub current: TimedSample,
}

impl SampleWindow {
    /// Wall time covered by this window.
    pub fn interval(&self) -> Duration {
        self.current.elapsed.saturating_sub(self.previous.elapsed)
    }

    /// Increase of one counter series over the window.
    pub fn counter_delta(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let now = self.current.snapshot.counter(name, labels).unwrap_or(0);
        let before = self.previous.snapshot.counter(name, labels).unwrap_or(0);
        now.saturating_sub(before)
    }

    /// Increase of a whole counter family (summed over label values).
    pub fn counter_total_delta(&self, name: &str) -> u64 {
        self.current
            .snapshot
            .counter_total(name)
            .saturating_sub(self.previous.snapshot.counter_total(name))
    }

    /// Family increase divided by the window length, per second.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let seconds = self.interval().as_secs_f64();
        if seconds <= 0.0 {
            return 0.0;
        }
        self.counter_total_delta(name) as f64 / seconds
    }

    /// Current value of a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.current.snapshot.gauge(name, labels)
    }
}

type Observer = Box<dyn Fn(&SampleWindow) + Send>;

struct SamplerShared {
    ring: Mutex<VecDeque<TimedSample>>,
    capacity: usize,
}

impl SamplerShared {
    fn push(&self, sample: TimedSample) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
    }
}

/// Owns the sampling thread; dropping it stops the thread and joins it.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    stop: Option<mpsc::Sender<()>>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `registry` every `interval`, keeping the most recent
    /// `capacity` samples.  A baseline sample is taken immediately so the
    /// first tick already forms a window.
    pub fn start(registry: Arc<MetricsRegistry>, interval: Duration, capacity: usize) -> Sampler {
        Self::start_with_observer(registry, interval, capacity, None)
    }

    /// Like [`Sampler::start`], with an observer invoked (on the sampler
    /// thread) after every tick with the freshest window.
    pub fn start_with_observer(
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        capacity: usize,
        observer: Option<Observer>,
    ) -> Sampler {
        let interval = interval.max(Duration::from_millis(10));
        let capacity = capacity.max(2);
        let shared = Arc::new(SamplerShared {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        });
        let (stop, ticks) = mpsc::channel::<()>();
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rgz-sampler".to_string())
            .spawn(move || {
                let started = Instant::now();
                let mut previous = TimedSample {
                    elapsed: Duration::ZERO,
                    snapshot: registry.snapshot(),
                };
                thread_shared.push(previous.clone());
                // Any non-timeout result means the sender hung up (or sent an
                // explicit stop message): the loop ends and the thread exits.
                while let Err(RecvTimeoutError::Timeout) = ticks.recv_timeout(interval) {
                    let current = TimedSample {
                        elapsed: started.elapsed(),
                        snapshot: registry.snapshot(),
                    };
                    thread_shared.push(current.clone());
                    let window = SampleWindow {
                        previous,
                        current: current.clone(),
                    };
                    if let Some(observer) = observer.as_ref() {
                        observer(&window);
                    }
                    previous = current;
                }
            })
            .expect("failed to spawn sampler thread");
        Sampler {
            shared,
            stop: Some(stop),
            handle: Some(handle),
        }
    }

    /// The ring's current contents, oldest first.
    pub fn samples(&self) -> Vec<TimedSample> {
        self.shared.ring.lock().iter().cloned().collect()
    }

    /// The freshest consecutive pair, if two samples exist yet.
    pub fn latest_window(&self) -> Option<SampleWindow> {
        let ring = self.shared.ring.lock();
        let len = ring.len();
        if len < 2 {
            return None;
        }
        Some(SampleWindow {
            previous: ring[len - 2].clone(),
            current: ring[len - 1].clone(),
        })
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_accumulate_and_windows_expose_deltas() {
        let registry = Arc::new(MetricsRegistry::new_enabled());
        let counter = registry.counter("ticks_total", "test");
        let gauge = registry.gauge("depth", "test");
        gauge.set(3);
        let sampler = Sampler::start(Arc::clone(&registry), Duration::from_millis(20), 8);
        for _ in 0..10 {
            counter.add(10);
            std::thread::sleep(Duration::from_millis(10));
        }
        // Wait until at least one post-baseline sample landed.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.latest_window().is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let window = sampler.latest_window().expect("sampler produced no window");
        assert!(window.interval() > Duration::ZERO);
        assert!(window.current.snapshot.counter("ticks_total", &[]).unwrap() <= 100);
        assert_eq!(window.gauge("depth", &[]), Some(3));
        let samples = sampler.samples();
        assert!(!samples.is_empty() && samples.len() <= 8);
        assert_eq!(samples[0].elapsed, Duration::ZERO, "baseline sample first");
    }

    #[test]
    fn ring_is_bounded() {
        let registry = Arc::new(MetricsRegistry::new_enabled());
        let sampler = Sampler::start(registry, Duration::from_millis(10), 2);
        std::thread::sleep(Duration::from_millis(120));
        assert!(sampler.samples().len() <= 2);
    }

    #[test]
    fn observer_sees_every_tick_and_drop_stops_the_thread() {
        let registry = Arc::new(MetricsRegistry::new_enabled());
        let counter = registry.counter("obs_total", "test");
        let seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen_in_observer = Arc::clone(&seen);
        let sampler = Sampler::start_with_observer(
            Arc::clone(&registry),
            Duration::from_millis(15),
            4,
            Some(Box::new(move |window| {
                seen_in_observer.fetch_add(
                    window.counter_total_delta("obs_total"),
                    std::sync::atomic::Ordering::Relaxed,
                );
            })),
        );
        counter.add(7);
        let deadline = Instant::now() + Duration::from_secs(5);
        while seen.load(std::sync::atomic::Ordering::Relaxed) < 7 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(sampler);
        assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 7);
    }
}
