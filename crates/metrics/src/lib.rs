//! Live telemetry for the rapidgzip-rs pipeline.
//!
//! [`rgz_trace`](../rgz_trace/index.html) answers *"what happened during that
//! run?"* — a structured event log read after the fact.  This crate answers
//! *"what is the process doing right now?"*: a lock-free registry of
//! monotonic [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s that a
//! long-running process can scrape continuously, the layer an `rgz serve`
//! `/metrics` endpoint will mount unchanged.
//!
//! The gating discipline mirrors `rgz_trace::TraceSink`: every record call
//! starts with a single relaxed atomic load of the registry-wide enabled
//! flag and returns immediately when it is off, so instrumentation can stay
//! compiled into every hot path.  When enabled, counters and histograms
//! write to relaxed per-thread-sharded atomics (no locks, no CAS loops on
//! the count path) which are summed on scrape; gauges are a single padded
//! atomic cell because `set` semantics cannot be sharded.
//!
//! ```
//! use rgz_metrics::MetricsRegistry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new_enabled());
//! let chunks = registry.counter_with_labels(
//!     "rgz_chunks_decoded_total",
//!     "Chunks decoded, by pipeline path.",
//!     &[("path", "speculative")],
//! );
//! chunks.add(3);
//! let text = registry.render_prometheus();
//! assert!(text.contains("rgz_chunks_decoded_total{path=\"speculative\"} 3"));
//! ```

mod expose;
mod sampler;

pub use sampler::{SampleWindow, Sampler, TimedSample};

/// Well-known metric names of the pipeline, so producers (the crates that
/// register them), consumers (the CLI progress line, `--metrics-export`) and
/// tests can never drift apart on spelling.
pub mod names {
    // rgz_core: the parallel reader.
    /// Counter, label `path` ∈ {`speculative`, `on_demand`, `index`}.
    pub const CHUNKS_DECODED: &str = "rgz_chunks_decoded_total";
    pub const CHUNKS_WASTED: &str = "rgz_chunks_wasted_total";
    pub const BYTES_OUT: &str = "rgz_bytes_out_total";
    pub const BYTES_WASTED: &str = "rgz_bytes_wasted_total";
    pub const SPECULATION_MISMATCHES: &str = "rgz_speculation_mismatches_total";
    /// Counter, label `kind` ∈ {`speculative`, `index`}.
    pub const PREFETCH_ISSUED: &str = "rgz_prefetch_issued_total";
    pub const PREFETCH_HITS: &str = "rgz_prefetch_hits_total";
    /// Counter, label `outcome` ∈ {`member_verified`, `index_verified`,
    /// `index_unverified`}.
    pub const VERIFICATION: &str = "rgz_verification_total";
    /// Histogram, label `stage` ∈ {`decode_two_stage`, `decode_one_stage`,
    /// `marker_replace`, `crc_fold`, `prefetch_decode`, `random_access`}.
    pub const STAGE_SECONDS: &str = "rgz_stage_seconds";

    // rgz_fetcher: the worker pool.
    pub const POOL_QUEUE_DEPTH: &str = "rgz_pool_queue_depth";
    pub const POOL_TASKS_INFLIGHT: &str = "rgz_pool_tasks_inflight";
    pub const POOL_TASKS_TOTAL: &str = "rgz_pool_tasks_total";
    pub const POOL_TASK_WAIT_SECONDS: &str = "rgz_pool_task_wait_seconds";

    // rgz_window: the seek-point window store.
    pub const WINDOW_STORE_BYTES: &str = "rgz_window_store_bytes";
    pub const WINDOW_STORE_WINDOWS: &str = "rgz_window_store_windows";
    /// Counter, label `event` ∈ {`hit`, `miss`, `evicted`}.
    pub const WINDOW_CACHE: &str = "rgz_window_cache_total";
    pub const WINDOW_COMPRESS_SECONDS: &str = "rgz_window_compress_seconds";
    pub const WINDOW_INFLATE_SECONDS: &str = "rgz_window_inflate_seconds";

    // rgz_io: the compressed input.
    pub const READ_CALLS: &str = "rgz_read_calls_total";
    pub const READ_BYTES: &str = "rgz_read_bytes_total";
    pub const READ_SECONDS: &str = "rgz_read_seconds";

    // rgz_compress: the write path.
    pub const COMPRESS_CHUNKS: &str = "rgz_compress_chunks_total";
    pub const COMPRESS_MEMBERS: &str = "rgz_compress_members_total";
    pub const COMPRESS_BYTES_IN: &str = "rgz_compress_bytes_in_total";
    pub const COMPRESS_BYTES_OUT: &str = "rgz_compress_bytes_out_total";
    pub const COMPRESS_ENCODE_SECONDS: &str = "rgz_compress_encode_seconds";
}

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// Number of per-thread shards behind each counter/histogram.  Threads are
/// assigned a shard round-robin at first use; 16 covers the pool sizes the
/// pipeline actually runs with while keeping scrape cost trivial.
const SHARDS: usize = 16;

static NEXT_THREAD_SLOT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's shard index, assigned once on first metric write.
    static THREAD_SHARD: usize =
        (NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) as usize) % SHARDS;
}

#[inline]
fn shard_index() -> usize {
    THREAD_SHARD.with(|slot| *slot)
}

/// A cache-line-padded atomic, so two shards never share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

#[repr(align(64))]
#[derive(Default)]
struct PaddedI64(AtomicI64);

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

struct CounterCore {
    enabled: Arc<AtomicBool>,
    shards: [PaddedU64; SHARDS],
}

/// A monotonically increasing counter.
///
/// Handles are cheap `Arc` clones of the registered series; incrementing a
/// disabled registry's counter costs one relaxed load.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            core: Arc::new(CounterCore {
                enabled,
                shards: Default::default(),
            }),
        }
    }

    /// A counter wired to nothing: records are dropped. Useful as a default
    /// before instrumentation is attached.
    pub fn disconnected() -> Self {
        Self::new(Arc::new(AtomicBool::new(false)))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if !self.core.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.core.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Aggregated value across all thread shards.
    pub fn value(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

struct GaugeCore {
    enabled: Arc<AtomicBool>,
    value: PaddedI64,
}

/// An instantaneous value that can go up and down (queue depth, resident
/// bytes).  A single padded atomic cell: `set` is last-writer-wins, which a
/// sharded representation cannot express.
#[derive(Clone)]
pub struct Gauge {
    core: Arc<GaugeCore>,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            core: Arc::new(GaugeCore {
                enabled,
                value: PaddedI64::default(),
            }),
        }
    }

    /// A gauge wired to nothing: records are dropped.
    pub fn disconnected() -> Self {
        Self::new(Arc::new(AtomicBool::new(false)))
    }

    #[inline]
    pub fn set(&self, value: i64) {
        if !self.core.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.core.value.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if !self.core.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.core.value.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn value(&self) -> i64 {
        self.core.value.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.value())
            .finish()
    }
}

struct HistogramShard {
    /// One slot per finite bound plus the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values as `f64` bits, updated with a CAS loop.  The
    /// loop only ever contends with other threads mapped to the same shard.
    sum_bits: AtomicU64,
}

struct HistogramCore {
    enabled: Arc<AtomicBool>,
    bounds: Vec<f64>,
    shards: Vec<HistogramShard>,
}

/// A fixed-bucket histogram (cumulative `le` buckets on exposition).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new(enabled: Arc<AtomicBool>, bounds: Vec<f64>) -> Self {
        let shards = (0..SHARDS)
            .map(|_| HistogramShard {
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })
            .collect();
        Self {
            core: Arc::new(HistogramCore {
                enabled,
                bounds,
                shards,
            }),
        }
    }

    /// A histogram wired to nothing: records are dropped.
    pub fn disconnected() -> Self {
        Self::new(Arc::new(AtomicBool::new(false)), vec![1.0])
    }

    #[inline]
    pub fn observe(&self, value: f64) {
        if !self.core.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.record(value);
    }

    fn record(&self, value: f64) {
        let shard = &self.core.shards[shard_index()];
        // First bucket whose upper bound admits the value; values above every
        // finite bound land in the +Inf slot at the end.
        let slot = self.core.bounds.partition_point(|bound| value > *bound);
        shard.buckets[slot].fetch_add(1, Ordering::Relaxed);
        let mut current = shard.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match shard.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Times a region and observes its duration in **seconds** on drop.
    ///
    /// When the registry is disabled this never calls `Instant::now`, so the
    /// cost stays at the one relaxed load of the gate.
    #[inline]
    pub fn start_timer(&self) -> HistogramTimer {
        let started = self.core.enabled.load(Ordering::Relaxed).then(Instant::now);
        HistogramTimer {
            histogram: self.clone(),
            started,
        }
    }

    /// Aggregated (count, sum, per-bucket counts) across shards.  Bucket
    /// counts are per-slot, not cumulative.
    pub fn snapshot_values(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; self.core.bounds.len() + 1];
        let mut sum = 0.0f64;
        for shard in &self.core.shards {
            for (slot, bucket) in shard.buckets.iter().enumerate() {
                buckets[slot] += bucket.load(Ordering::Relaxed);
            }
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            bounds: self.core.bounds.clone(),
            count: buckets.iter().sum(),
            sum,
            buckets,
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snapshot = self.snapshot_values();
        f.debug_struct("Histogram")
            .field("count", &snapshot.count)
            .field("sum", &snapshot.sum)
            .finish()
    }
}

/// RAII guard from [`Histogram::start_timer`].
pub struct HistogramTimer {
    histogram: Histogram,
    started: Option<Instant>,
}

impl HistogramTimer {
    /// Discards the measurement (e.g. on an error path that should not
    /// pollute a latency distribution).
    pub fn discard(mut self) {
        self.started = None;
    }
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.histogram.record(started.elapsed().as_secs_f64());
        }
    }
}

/// `count + 1` exponentially spaced upper bounds starting at `start`.
///
/// The conventional helper for latency histograms; bounds are in the same
/// unit the histogram observes (seconds for `start_timer`).
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0, "exponential_buckets start must be positive");
    assert!(factor > 1.0, "exponential_buckets factor must exceed 1");
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start;
    for _ in 0..count {
        bounds.push(bound);
        bound *= factor;
    }
    bounds
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// What a registered family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword in the Prometheus text format.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Label *names*, fixed at first registration; every series must carry
    /// exactly this set.
    label_names: Vec<String>,
    /// Histogram families share one bucket layout.
    bounds: Vec<f64>,
    series: BTreeMap<Vec<String>, Series>,
}

/// Rejected registrations.  Registration is static (call sites use literal
/// names), so the panicking wrappers are the normal API; the `try_` variants
/// exist for validation tests and defensive callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    InvalidMetricName(String),
    InvalidLabelName(String),
    InvalidBuckets(String),
    /// A family with this name exists with a different kind, help text,
    /// label set, or bucket layout.
    Mismatched(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidMetricName(name) => {
                write!(f, "invalid metric name {name:?}")
            }
            RegistryError::InvalidLabelName(name) => {
                write!(f, "invalid label name {name:?}")
            }
            RegistryError::InvalidBuckets(why) => write!(f, "invalid buckets: {why}"),
            RegistryError::Mismatched(why) => {
                write!(f, "conflicting registration: {why}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    if name.starts_with("__") {
        return false;
    }
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The process-wide metric store: registration, aggregation, exposition.
///
/// Clone-free sharing is by `Arc<MetricsRegistry>`; every layer of the
/// pipeline accepts one and registers its families at construction.
/// Registration is get-or-create: asking for an existing `(name, labels)`
/// series with a matching shape returns a handle to the same storage, so
/// several components can share one registry without coordination.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    families: Mutex<BTreeMap<String, Family>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .field("families", &self.families.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A registry with recording **disabled**: every record call is one
    /// relaxed load.  Scrapes see registered families with zero values.
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(false)),
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry with recording enabled.
    pub fn new_enabled() -> Self {
        let registry = Self::new();
        registry.set_enabled(true);
        registry
    }

    /// A process-wide disabled registry for "no metrics requested" wiring,
    /// mirroring `TraceSink::shared_disabled`.  Never enable it: every
    /// component defaulted to it would start recording into shared series.
    pub fn shared_disabled() -> Arc<MetricsRegistry> {
        static SHARED: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(MetricsRegistry::new())))
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    // -- registration -------------------------------------------------------

    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with_labels(name, help, &[])
    }

    pub fn counter_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.try_counter_with_labels(name, help, labels)
            .unwrap_or_else(|err| panic!("metric registration failed: {err}"))
    }

    pub fn try_counter_with_labels(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Counter, RegistryError> {
        let series = self.register(name, help, MetricKind::Counter, labels, &[])?;
        match series {
            Series::Counter(counter) => Ok(counter),
            _ => unreachable!("registry returned a non-counter for a counter family"),
        }
    }

    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with_labels(name, help, &[])
    }

    pub fn gauge_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.try_gauge_with_labels(name, help, labels)
            .unwrap_or_else(|err| panic!("metric registration failed: {err}"))
    }

    pub fn try_gauge_with_labels(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Gauge, RegistryError> {
        let series = self.register(name, help, MetricKind::Gauge, labels, &[])?;
        match series {
            Series::Gauge(gauge) => Ok(gauge),
            _ => unreachable!("registry returned a non-gauge for a gauge family"),
        }
    }

    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with_labels(name, help, bounds, &[])
    }

    pub fn histogram_with_labels(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        self.try_histogram_with_labels(name, help, bounds, labels)
            .unwrap_or_else(|err| panic!("metric registration failed: {err}"))
    }

    pub fn try_histogram_with_labels(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Result<Histogram, RegistryError> {
        if bounds.is_empty() {
            return Err(RegistryError::InvalidBuckets(format!(
                "{name}: at least one finite bucket bound is required"
            )));
        }
        if !bounds.windows(2).all(|pair| pair[0] < pair[1]) {
            return Err(RegistryError::InvalidBuckets(format!(
                "{name}: bounds must be strictly increasing"
            )));
        }
        if bounds.iter().any(|bound| !bound.is_finite()) {
            return Err(RegistryError::InvalidBuckets(format!(
                "{name}: bounds must be finite (+Inf is implicit)"
            )));
        }
        let series = self.register(name, help, MetricKind::Histogram, labels, bounds)?;
        match series {
            Series::Histogram(histogram) => Ok(histogram),
            _ => unreachable!("registry returned a non-histogram for a histogram family"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Result<Series, RegistryError> {
        if !valid_metric_name(name) {
            return Err(RegistryError::InvalidMetricName(name.to_string()));
        }
        for (label, _) in labels {
            if !valid_label_name(label) {
                return Err(RegistryError::InvalidLabelName(label.to_string()));
            }
        }
        let label_names: Vec<String> = labels.iter().map(|(l, _)| l.to_string()).collect();
        let label_values: Vec<String> = labels.iter().map(|(_, v)| v.to_string()).collect();

        let mut families = self.families.lock();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            label_names: label_names.clone(),
            bounds: bounds.to_vec(),
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            return Err(RegistryError::Mismatched(format!(
                "{name} already registered as a {}",
                family.kind.as_str()
            )));
        }
        if family.help != help {
            return Err(RegistryError::Mismatched(format!(
                "{name} already registered with different help text"
            )));
        }
        if family.label_names != label_names {
            return Err(RegistryError::Mismatched(format!(
                "{name} already registered with labels {:?}",
                family.label_names
            )));
        }
        if kind == MetricKind::Histogram && family.bounds != bounds {
            return Err(RegistryError::Mismatched(format!(
                "{name} already registered with a different bucket layout"
            )));
        }
        let enabled = Arc::clone(&self.enabled);
        let family_bounds = family.bounds.clone();
        let series = family
            .series
            .entry(label_values)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Series::Counter(Counter::new(enabled)),
                MetricKind::Gauge => Series::Gauge(Gauge::new(enabled)),
                MetricKind::Histogram => Series::Histogram(Histogram::new(enabled, family_bounds)),
            });
        Ok(series.clone())
    }

    // -- scraping -----------------------------------------------------------

    /// Aggregates every registered series into an owned, point-in-time view.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.lock();
        let snapshot_families = families
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name: name.clone(),
                help: family.help.clone(),
                kind: family.kind,
                label_names: family.label_names.clone(),
                series: family
                    .series
                    .iter()
                    .map(|(label_values, series)| SeriesSnapshot {
                        label_values: label_values.clone(),
                        value: match series {
                            Series::Counter(counter) => SeriesValue::Counter(counter.value()),
                            Series::Gauge(gauge) => SeriesValue::Gauge(gauge.value()),
                            Series::Histogram(histogram) => {
                                SeriesValue::Histogram(histogram.snapshot_values())
                            }
                        },
                    })
                    .collect(),
            })
            .collect();
        MetricsSnapshot {
            families: snapshot_families,
        }
    }

    /// Renders the registry in the Prometheus text exposition format 0.0.4.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Aggregated histogram state (per-slot bucket counts, not cumulative).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Values in the order of the family's `label_names`.
    pub label_values: Vec<String>,
    pub value: SeriesValue,
}

#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub label_names: Vec<String>,
    pub series: Vec<SeriesSnapshot>,
}

/// A point-in-time aggregation of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|family| family.name == name)
    }

    fn series_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesValue> {
        let family = self.family(name)?;
        let wanted: Vec<&str> = family
            .label_names
            .iter()
            .map(|label| {
                labels
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| *v)
                    .unwrap_or("")
            })
            .collect();
        family
            .series
            .iter()
            .find(|series| {
                series
                    .label_values
                    .iter()
                    .map(String::as_str)
                    .eq(wanted.iter().copied())
            })
            .map(|series| &series.value)
    }

    /// The value of one counter series (labels must match exactly).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series_value(name, labels)? {
            SeriesValue::Counter(value) => Some(*value),
            _ => None,
        }
    }

    /// Sum of a counter family across all of its label values.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.family(name)
            .map(|family| {
                family
                    .series
                    .iter()
                    .map(|series| match &series.value {
                        SeriesValue::Counter(value) => *value,
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.series_value(name, labels)? {
            SeriesValue::Gauge(value) => Some(*value),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.series_value(name, labels)? {
            SeriesValue::Histogram(histogram) => Some(histogram),
            _ => None,
        }
    }

    /// Renders this snapshot in the Prometheus text exposition format 0.0.4.
    pub fn render_prometheus(&self) -> String {
        expose::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("c_total", "help");
        let gauge = registry.gauge("g", "help");
        let histogram = registry.histogram("h", "help", &[1.0, 2.0]);
        counter.add(5);
        gauge.set(7);
        histogram.observe(1.5);
        assert_eq!(counter.value(), 0);
        assert_eq!(gauge.value(), 0);
        assert_eq!(histogram.snapshot_values().count, 0);
    }

    #[test]
    fn get_or_register_returns_the_same_storage() {
        let registry = MetricsRegistry::new_enabled();
        let first = registry.counter_with_labels("c_total", "help", &[("path", "a")]);
        let second = registry.counter_with_labels("c_total", "help", &[("path", "a")]);
        first.add(2);
        second.add(3);
        assert_eq!(first.value(), 5);
        assert_eq!(second.value(), 5);
        let other = registry.counter_with_labels("c_total", "help", &[("path", "b")]);
        other.inc();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("c_total", &[("path", "a")]), Some(5));
        assert_eq!(snapshot.counter("c_total", &[("path", "b")]), Some(1));
        assert_eq!(snapshot.counter_total("c_total"), 6);
    }

    #[test]
    fn registration_validates_names_labels_and_shape() {
        let registry = MetricsRegistry::new();
        assert!(matches!(
            registry.try_counter_with_labels("0bad", "h", &[]),
            Err(RegistryError::InvalidMetricName(_))
        ));
        assert!(matches!(
            registry.try_counter_with_labels("ok_total", "h", &[("__reserved", "x")]),
            Err(RegistryError::InvalidLabelName(_))
        ));
        assert!(matches!(
            registry.try_counter_with_labels("ok_total", "h", &[("bad-label", "x")]),
            Err(RegistryError::InvalidLabelName(_))
        ));
        registry.counter("ok_total", "h");
        assert!(matches!(
            registry.try_gauge_with_labels("ok_total", "h", &[]),
            Err(RegistryError::Mismatched(_))
        ));
        assert!(matches!(
            registry.try_counter_with_labels("ok_total", "different help", &[]),
            Err(RegistryError::Mismatched(_))
        ));
        assert!(matches!(
            registry.try_counter_with_labels("ok_total", "h", &[("path", "a")]),
            Err(RegistryError::Mismatched(_))
        ));
        assert!(matches!(
            registry.try_histogram_with_labels("hist", "h", &[], &[]),
            Err(RegistryError::InvalidBuckets(_))
        ));
        assert!(matches!(
            registry.try_histogram_with_labels("hist", "h", &[2.0, 1.0], &[]),
            Err(RegistryError::InvalidBuckets(_))
        ));
        assert!(matches!(
            registry.try_histogram_with_labels("hist", "h", &[1.0, f64::INFINITY], &[]),
            Err(RegistryError::InvalidBuckets(_))
        ));
        registry.histogram("hist", "h", &[1.0, 2.0]);
        assert!(matches!(
            registry.try_histogram_with_labels("hist", "h", &[1.0, 3.0], &[]),
            Err(RegistryError::Mismatched(_))
        ));
    }

    #[test]
    fn gauge_tracks_ups_and_downs() {
        let registry = MetricsRegistry::new_enabled();
        let gauge = registry.gauge("depth", "queue depth");
        gauge.inc();
        gauge.inc();
        gauge.dec();
        assert_eq!(gauge.value(), 1);
        gauge.set(42);
        assert_eq!(registry.snapshot().gauge("depth", &[]), Some(42));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let registry = MetricsRegistry::new_enabled();
        let histogram = registry.histogram("h", "help", &[1.0, 5.0, 10.0]);
        // Exactly on a bound counts into that bound's bucket (le semantics).
        histogram.observe(1.0);
        histogram.observe(0.5);
        histogram.observe(5.0);
        histogram.observe(5.1);
        histogram.observe(10.0);
        histogram.observe(11.0); // +Inf overflow
        let snapshot = histogram.snapshot_values();
        assert_eq!(snapshot.buckets, vec![2, 1, 2, 1]);
        assert_eq!(snapshot.count, 6);
        assert!((snapshot.sum - 32.6).abs() < 1e-9);
    }

    #[test]
    fn histogram_timer_observes_seconds_and_discard_drops() {
        let registry = MetricsRegistry::new_enabled();
        let histogram = registry.histogram("h_seconds", "help", &[10.0]);
        {
            let _timer = histogram.start_timer();
        }
        histogram.start_timer().discard();
        let snapshot = histogram.snapshot_values();
        assert_eq!(snapshot.count, 1);
        assert!(snapshot.sum < 10.0, "a no-op region takes well under 10s");
    }

    #[test]
    fn exponential_buckets_shape() {
        let bounds = exponential_buckets(0.001, 4.0, 5);
        assert_eq!(bounds.len(), 5);
        assert!((bounds[0] - 0.001).abs() < 1e-12);
        assert!((bounds[4] - 0.256).abs() < 1e-12);
        assert!(bounds.windows(2).all(|pair| pair[0] < pair[1]));
    }

    #[test]
    fn concurrent_increments_are_exact() {
        // N threads x M metrics: totals must be exact despite sharding.
        const THREADS: usize = 8;
        const METRICS: usize = 4;
        const INCREMENTS: u64 = 10_000;
        let registry = Arc::new(MetricsRegistry::new_enabled());
        let counters: Vec<Counter> = (0..METRICS)
            .map(|m| registry.counter(&format!("stress_{m}_total"), "stress"))
            .collect();
        let histogram = registry.histogram("stress_seconds", "stress", &[0.5]);
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let counters = counters.clone();
                let histogram = histogram.clone();
                std::thread::spawn(move || {
                    for i in 0..INCREMENTS {
                        for counter in &counters {
                            counter.inc();
                        }
                        histogram.observe(if i % 2 == 0 { 0.25 } else { 1.0 });
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        for counter in &counters {
            assert_eq!(counter.value(), (THREADS as u64) * INCREMENTS);
        }
        let snapshot = histogram.snapshot_values();
        assert_eq!(snapshot.count, (THREADS as u64) * INCREMENTS);
        assert_eq!(
            snapshot.buckets,
            vec![
                (THREADS as u64) * INCREMENTS / 2,
                (THREADS as u64) * INCREMENTS / 2
            ]
        );
    }

    #[test]
    fn shared_disabled_is_a_singleton() {
        let a = MetricsRegistry::shared_disabled();
        let b = MetricsRegistry::shared_disabled();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_enabled());
    }
}
