//! Pins the three observability surfaces to each other: the reader's own
//! [`ReaderStatistics`], the live metrics registry, and the trace-derived
//! [`MetricsReport`] must all be views of the same underlying events.
//!
//! Every counter the reader tracks has a registry twin incremented at the
//! same program point, so after the pool quiesces the registry snapshot must
//! reproduce `statistics()` **exactly** — not approximately.

use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions, ReaderStatistics};
use rgz_datagen::base64_random;
use rgz_gzip::GzipWriter;
use rgz_metrics::{names, MetricsRegistry};
use rgz_trace::{MetricsReport, TraceSink};

fn compressed_corpus() -> (Vec<u8>, Vec<u8>) {
    let data = base64_random(512 * 1024, 7);
    let compressed = GzipWriter::default().compress(&data);
    (data, compressed)
}

fn options(registry: &Arc<MetricsRegistry>) -> ParallelGzipReaderOptions {
    let mut options = ParallelGzipReaderOptions::with_parallelization(4).with_chunk_size(32 * 1024);
    options = options.with_metrics(Arc::clone(registry));
    options
}

/// Waits until no task is queued or running on the reader's pool, so gauge
/// comparisons cannot race in-flight window-compression tasks.
fn quiesce(reader: &ParallelGzipReader) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let statistics = reader.statistics();
        if statistics.pool_queue_depth == 0 && statistics.pool_tasks_inflight == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "worker pool did not quiesce");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn sequential_statistics_match_registry_snapshot() {
    let (data, compressed) = compressed_corpus();
    let registry = Arc::new(MetricsRegistry::new_enabled());
    let mut reader = ParallelGzipReader::from_bytes(compressed, options(&registry)).unwrap();

    let mut restored = Vec::new();
    reader.read_to_end(&mut restored).unwrap();
    assert_eq!(restored, data);
    quiesce(&reader);

    let snapshot = registry.snapshot();
    let statistics = reader.statistics();
    let reconstructed = ReaderStatistics::from_metrics_snapshot(&snapshot);
    assert_eq!(reconstructed, statistics);

    // Committed output bytes must account for every decompressed byte.
    assert_eq!(snapshot.counter_total(names::BYTES_OUT), data.len() as u64);
    // The stream verifier's member count is mirrored into the labeled
    // verification counter.
    assert_eq!(
        snapshot.counter(names::VERIFICATION, &[("outcome", "member_verified")]),
        Some(reader.verification_statistics().members_verified),
    );
    // The instrumented input reader saw at least the whole compressed file.
    assert!(snapshot.counter_total(names::READ_BYTES) >= reader.index().compressed_size);
}

#[test]
fn random_access_statistics_match_registry_snapshot() {
    let (data, compressed) = compressed_corpus();
    // First pass without metrics builds the index.
    let plain = ParallelGzipReaderOptions::with_parallelization(4).with_chunk_size(32 * 1024);
    let mut first = ParallelGzipReader::from_bytes(compressed.clone(), plain).unwrap();
    std::io::copy(&mut first, &mut std::io::sink()).unwrap();
    let index = first.index();

    let registry = Arc::new(MetricsRegistry::new_enabled());
    let mut reader = ParallelGzipReader::with_index(
        rgz_io::SharedFileReader::from_bytes(compressed),
        options(&registry),
        index,
    )
    .unwrap();

    // A sequential sweep plus a few scattered seeks exercises the index fast
    // path, the index-aligned prefetcher, and the window store.
    let mut buffer = vec![0u8; 48 * 1024];
    for &offset in &[0u64, 300 * 1024, 64 * 1024, 450 * 1024, 128 * 1024] {
        reader.seek(SeekFrom::Start(offset)).unwrap();
        let count = reader.read(&mut buffer).unwrap();
        assert_eq!(
            &buffer[..count],
            &data[offset as usize..offset as usize + count]
        );
    }
    quiesce(&reader);

    let snapshot = registry.snapshot();
    let statistics = reader.statistics();
    assert!(statistics.index_chunks > 0, "index fast path not exercised");
    let reconstructed = ReaderStatistics::from_metrics_snapshot(&snapshot);
    assert_eq!(reconstructed, statistics);
}

#[test]
fn trace_report_counters_match_registry_snapshot() {
    let (_, compressed) = compressed_corpus();
    let registry = Arc::new(MetricsRegistry::new_enabled());
    let trace = Arc::new(TraceSink::new_enabled());
    let mut reader = ParallelGzipReader::from_bytes(
        compressed,
        options(&registry).with_trace(Arc::clone(&trace)),
    )
    .unwrap();

    std::io::copy(&mut reader, &mut std::io::sink()).unwrap();
    // Revisit the start through the index fast path for prefetch events.
    reader.seek(SeekFrom::Start(0)).unwrap();
    let mut buffer = vec![0u8; 64 * 1024];
    let _ = reader.read(&mut buffer).unwrap();
    quiesce(&reader);

    let report = MetricsReport::from_sink(&trace);
    let snapshot = registry.snapshot();
    let counter = |name: &str, labels: &[(&str, &str)]| snapshot.counter(name, labels).unwrap_or(0);

    // Trace instants and registry counters are recorded at the same program
    // points; the aggregations must therefore agree exactly.
    assert_eq!(
        report.speculation.submitted,
        counter(names::PREFETCH_ISSUED, &[("kind", "speculative")]),
    );
    assert_eq!(
        report.speculation.committed_chunks,
        counter(names::CHUNKS_DECODED, &[("path", "speculative")]),
    );
    assert_eq!(
        report.speculation.wasted_chunks,
        counter(names::CHUNKS_WASTED, &[])
    );
    assert_eq!(
        report.speculation.wasted_bytes,
        counter(names::BYTES_WASTED, &[])
    );
    assert_eq!(
        report.prefetch.issued,
        counter(names::PREFETCH_ISSUED, &[("kind", "index")]),
    );
    assert_eq!(report.prefetch.hits, counter(names::PREFETCH_HITS, &[]));
}
