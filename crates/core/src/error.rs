//! Error type of the parallel reader.

use rgz_deflate::DeflateError;
use rgz_gzip::GzipError;
use rgz_index::IndexError;
use rgz_window::WindowError;

/// Errors produced by the parallel gzip reader.
#[derive(Debug)]
pub enum CoreError {
    /// Reading the compressed input failed.
    Io(std::io::Error),
    /// The gzip container was malformed.
    Gzip(GzipError),
    /// A DEFLATE stream was malformed.
    Deflate(DeflateError),
    /// Importing an index failed.
    Index(IndexError),
    /// A stored seek-point window failed validation when it was needed.
    Window(WindowError),
    /// No DEFLATE block could be found inside a chunk even though more
    /// compressed data follows; decompression cannot be parallelized past
    /// this point without falling back to sequential decoding.
    NoBlockFound {
        /// Guessed chunk start (bit offset) where the search began.
        search_start_bits: u64,
    },
    /// An imported index does not match the file (e.g. decoding from a seek
    /// point failed).
    IndexMismatch {
        /// The seek point's compressed bit offset.
        compressed_bit_offset: u64,
    },
    /// A seek targeted an offset beyond the end of the decompressed stream.
    SeekOutOfRange {
        /// Requested offset.
        offset: u64,
        /// Total decompressed size.
        size: u64,
    },
    /// A gzip member's decompressed data does not hash to the CRC-32 its
    /// trailer stores (detected by the pipelined verification fold).
    ChecksumMismatch {
        /// Zero-based index of the offending member in the file.
        member: u64,
        /// CRC-32 stored in the member's trailer.
        expected: u32,
        /// CRC-32 folded from the decompressed chunk fragments.
        actual: u32,
    },
    /// A gzip member's decompressed length does not match the ISIZE
    /// (size modulo 2^32) its trailer stores.
    MemberSizeMismatch {
        /// Zero-based index of the offending member in the file.
        member: u64,
        /// ISIZE stored in the member's trailer.
        expected: u32,
        /// Actual decompressed length of the member.
        actual: u64,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Io(e) => write!(f, "I/O error: {e}"),
            CoreError::Gzip(e) => write!(f, "gzip error: {e}"),
            CoreError::Deflate(e) => write!(f, "DEFLATE error: {e}"),
            CoreError::Index(e) => write!(f, "index error: {e}"),
            CoreError::Window(e) => write!(f, "seek-point window error: {e}"),
            CoreError::NoBlockFound { search_start_bits } => write!(
                f,
                "no DEFLATE block found searching from bit offset {search_start_bits}"
            ),
            CoreError::IndexMismatch {
                compressed_bit_offset,
            } => write!(
                f,
                "index does not match the file at compressed bit offset {compressed_bit_offset}"
            ),
            CoreError::SeekOutOfRange { offset, size } => {
                write!(f, "seek to {offset} is beyond the decompressed size {size}")
            }
            CoreError::ChecksumMismatch {
                member,
                expected,
                actual,
            } => write!(
                f,
                "CRC-32 mismatch in gzip member {member}: trailer stores {expected:#010x}, \
                 decompressed data hashes to {actual:#010x}"
            ),
            CoreError::MemberSizeMismatch {
                member,
                expected,
                actual,
            } => write!(
                f,
                "ISIZE mismatch in gzip member {member}: trailer stores {expected}, \
                 decompressed length is {actual}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<std::io::Error> for CoreError {
    fn from(error: std::io::Error) -> Self {
        CoreError::Io(error)
    }
}

impl From<GzipError> for CoreError {
    fn from(error: GzipError) -> Self {
        CoreError::Gzip(error)
    }
}

impl From<DeflateError> for CoreError {
    fn from(error: DeflateError) -> Self {
        CoreError::Deflate(error)
    }
}

impl From<IndexError> for CoreError {
    fn from(error: IndexError) -> Self {
        CoreError::Index(error)
    }
}

impl From<WindowError> for CoreError {
    fn from(error: WindowError) -> Self {
        CoreError::Window(error)
    }
}

impl From<CoreError> for std::io::Error {
    fn from(error: CoreError) -> Self {
        match error {
            CoreError::Io(e) => e,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let io_error: CoreError = std::io::Error::other("disk on fire").into();
        assert!(io_error.to_string().contains("disk on fire"));
        let gzip_error: CoreError = GzipError::Truncated.into();
        assert!(gzip_error.to_string().contains("gzip"));
        let deflate_error: CoreError = DeflateError::ReservedBlockType.into();
        assert!(deflate_error.to_string().contains("DEFLATE"));
        let index_error: CoreError = IndexError::BadMagic.into();
        assert!(index_error.to_string().contains("index"));
        let window_error: CoreError = WindowError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(window_error.to_string().contains("window"));
        let back_to_io: std::io::Error = CoreError::NoBlockFound {
            search_start_bits: 5,
        }
        .into();
        assert_eq!(back_to_io.kind(), std::io::ErrorKind::InvalidData);
        let checksum = CoreError::ChecksumMismatch {
            member: 3,
            expected: 0xDEADBEEF,
            actual: 0,
        }
        .to_string();
        assert!(checksum.contains("member 3") && checksum.contains("0xdeadbeef"));
        let size = CoreError::MemberSizeMismatch {
            member: 1,
            expected: 10,
            actual: 11,
        }
        .to_string();
        assert!(size.contains("ISIZE") && size.contains("member 1"));
    }
}
