//! Chunk decompression tasks.
//!
//! Two kinds of chunk decoding exist (§3.3):
//!
//! * **Speculative** ([`decode_speculative_chunk`]): a worker thread is given
//!   a *guessed* chunk start (a multiple of the chunk size), locates the next
//!   DEFLATE block with the block finder, and decodes in two-stage mode
//!   producing 16-bit marker symbols because the preceding window is unknown.
//!   This can fail entirely (no block found) or latch onto a false positive;
//!   both cases are handled gracefully by the orchestrator.
//! * **Direct** ([`decode_chunk_at`]): the exact block offset *and* its
//!   window are known (from the previous chunk or from an index), so the
//!   chunk decodes straight to bytes without markers — the same fast path
//!   used when an index has been imported.
//!
//! Both tasks read their compressed byte range through the shared
//! [`FileReader`], growing the range geometrically when a chunk's last block
//! runs past the guessed boundary.

use rgz_bitio::BitReader;
use rgz_blockfinder::{BlockFinder, CombinedBlockFinder};
use rgz_deflate::{inflate, inflate_hashed, inflate_two_stage, DeflateError, StopReason};
use rgz_gzip::{parse_footer, parse_header, GzipError, GzipFooter};
use rgz_io::{FileReader, SharedFileReader};
use rgz_trace::{Outcome, Stage, TraceSink};

use crate::verify::ChunkFragment;
use crate::CoreError;

/// Result of a direct (window-known) chunk decode.
#[derive(Debug, Clone)]
pub struct ChunkResult {
    /// Absolute bit offset decoding started at.
    pub start_bit_offset: u64,
    /// Absolute bit offset at which the next chunk starts.
    pub end_bit_offset: u64,
    /// Decompressed bytes of this chunk.
    pub data: Vec<u8>,
    /// Whether the end of the compressed file was reached.
    pub reached_end_of_file: bool,
    /// Which bytes of the preceding window the chunk referenced, as sorted
    /// marker-space `(offset, length)` runs — the index uses this to store a
    /// sparsified window for the chunk's seek point.
    pub window_usage: Vec<(u32, u32)>,
    /// `data` split at gzip member boundaries, each fragment carrying the
    /// CRC-32 of its bytes (when decoded with `verify`) and, for fragments
    /// that end a member, the member's trailer.  The verification pipeline
    /// folds these in stream order.
    pub fragments: Vec<ChunkFragment>,
    /// DEFLATE blocks the multi-symbol fast path routed through the
    /// single-symbol reference decoder (see
    /// [`rgz_deflate::InflateOutcome::fast_fallback_blocks`]); used to tag
    /// decode spans with a *fallback* outcome.
    pub fast_fallback_blocks: u32,
}

/// Result of a speculative (two-stage) chunk decode.
#[derive(Debug, Clone)]
pub struct SpeculativeChunk {
    /// Guessed bit offset the block search started from.
    pub requested_bit_offset: u64,
    /// Bit offset of the block the finder located (the chunk's actual start).
    pub found_bit_offset: u64,
    /// Absolute bit offset at which the next chunk starts.
    pub end_bit_offset: u64,
    /// 16-bit output symbols (literals and markers).
    pub symbols: Vec<u16>,
    /// Number of DEFLATE blocks decoded.
    pub block_count: usize,
    /// Whether the end of the compressed file was reached.
    pub reached_end_of_file: bool,
    /// Gzip member boundaries inside the chunk: `(end offset in symbol
    /// space, trailer)` per member that *ends* within this chunk, in order.
    /// Symbols map 1:1 to output bytes, so these offsets split the resolved
    /// data into per-member CRC fragments after marker replacement.
    pub member_ends: Vec<(u64, GzipFooter)>,
}

fn is_eof_like_deflate(error: &DeflateError) -> bool {
    matches!(error, DeflateError::UnexpectedEof)
}

fn is_eof_like(error: &CoreError) -> bool {
    match error {
        CoreError::Deflate(e) => is_eof_like_deflate(e),
        CoreError::Gzip(GzipError::Truncated) => true,
        _ => false,
    }
}

/// Reads the compressed range `[start_byte, start_byte + length)`.
fn read_compressed_range(
    reader: &SharedFileReader,
    start_byte: u64,
    length: u64,
) -> Result<Vec<u8>, CoreError> {
    Ok(reader.read_range(start_byte, length as usize)?)
}

/// Parses the gzip footer at the current (possibly unaligned) position and,
/// if another member follows, its header too.  Returns the parsed footer and
/// `true` if the end of the input was reached (only trailing zero padding or
/// nothing remains).
fn cross_member_boundary(reader: &mut BitReader<'_>) -> Result<(GzipFooter, bool), CoreError> {
    let footer = parse_footer(reader).map_err(CoreError::Gzip)?;
    // Trailing padding / end of file detection.
    loop {
        if reader.remaining_bits() < 8 * 18 {
            let position = (reader.position() / 8) as usize;
            let rest = &reader.data()[position..];
            if rest.iter().all(|&b| b == 0) {
                return Ok((footer, true));
            }
            // Something follows but is too short to be a member: treat as
            // truncation so the caller can grow the range.
            return Err(CoreError::Gzip(GzipError::Truncated));
        }
        let position = (reader.position() / 8) as usize;
        if reader.data()[position] == 0 && reader.data()[position + 1] == 0 {
            // Zero padding between members (rare but legal for bgzip -
            // produced files); skip one byte and re-check.
            reader
                .consume(8)
                .map_err(|_| CoreError::Gzip(GzipError::Truncated))?;
            continue;
        }
        parse_header(reader).map_err(CoreError::Gzip)?;
        return Ok((footer, false));
    }
}

/// Decodes a chunk whose exact start offset and window are known, producing
/// plain bytes.
///
/// * `start_bit_offset` — absolute bit offset of the first DEFLATE block (or
///   of a gzip member header if `at_member_start` is true).
/// * `stop_bit_offset` — guessed boundary of the next chunk; decoding stops
///   at the first Dynamic or Non-Compressed block at or after it.
/// * `window` — up to 32 KiB of decompressed data preceding the chunk.
/// * `verify` — hash the decompressed bytes per member fragment (CRC-32 on
///   this thread) so the caller can fold them against member trailers.
pub fn decode_chunk_at(
    reader: &SharedFileReader,
    start_bit_offset: u64,
    stop_bit_offset: u64,
    window: &[u8],
    at_member_start: bool,
    chunk_size: usize,
    verify: bool,
) -> Result<ChunkResult, CoreError> {
    let file_size = reader.size();
    let start_byte = start_bit_offset / 8;
    let mut slack = (chunk_size as u64).max(64 * 1024);

    loop {
        let stop_byte = stop_bit_offset.div_ceil(8);
        let range_end = (stop_byte + slack).min(file_size);
        let range = read_compressed_range(reader, start_byte, range_end - start_byte)?;
        let range_covers_file_end = start_byte + range.len() as u64 >= file_size;

        let attempt = decode_direct_in_range(
            &range,
            start_byte,
            start_bit_offset,
            stop_bit_offset,
            window,
            at_member_start,
            verify,
        );
        match attempt {
            Ok(result) => return Ok(result),
            Err(error) if !range_covers_file_end => {
                // The chunk extends past the range we read; widen and retry.
                let _ = error;
                slack = slack.saturating_mul(4);
            }
            Err(error) => return Err(error),
        }
    }
}

fn decode_direct_in_range(
    range: &[u8],
    range_start_byte: u64,
    start_bit_offset: u64,
    stop_bit_offset: u64,
    window: &[u8],
    at_member_start: bool,
    verify: bool,
) -> Result<ChunkResult, CoreError> {
    let range_start_bits = range_start_byte * 8;
    let mut reader = BitReader::new(range);
    reader
        .seek_to_bit(start_bit_offset - range_start_bits)
        .map_err(|_| CoreError::Deflate(DeflateError::UnexpectedEof))?;
    let relative_stop = stop_bit_offset.saturating_sub(range_start_bits);

    if at_member_start {
        parse_header(&mut reader).map_err(CoreError::Gzip)?;
    }

    let mut data = Vec::new();
    let mut first_call = true;
    let mut reached_end_of_file = false;
    let mut fast_fallback_blocks = 0u32;
    let mut window_usage = Vec::new();
    // One inflate call never crosses a member boundary, so each iteration
    // contributes exactly one CRC fragment.
    let mut fragments = Vec::new();
    let mut fragment_start = 0usize;
    loop {
        let call_window = if first_call { window } else { &[] };
        first_call = false;
        let outcome = if verify {
            inflate_hashed(&mut reader, call_window, &mut data, relative_stop)
        } else {
            inflate(&mut reader, call_window, &mut data, relative_stop)
        }
        .map_err(CoreError::Deflate)?;
        fast_fallback_blocks += outcome.fast_fallback_blocks;
        if window_usage.is_empty() {
            // Only the first member of the chunk can reference the preceding
            // window; later inflate calls get an empty window.
            window_usage = outcome.window_usage.clone();
        }
        let fragment = ChunkFragment {
            crc32: outcome.crc32.unwrap_or(0),
            length: (data.len() - fragment_start) as u64,
            trailer: None,
        };
        fragment_start = data.len();
        match outcome.stop_reason {
            StopReason::StopOffsetReached => {
                fragments.push(fragment);
                break;
            }
            StopReason::EndOfInput => {
                return Err(CoreError::Deflate(DeflateError::UnexpectedEof));
            }
            StopReason::EndOfStream => {
                let (footer, at_end_of_file) = cross_member_boundary(&mut reader)?;
                fragments.push(ChunkFragment {
                    trailer: Some(footer),
                    ..fragment
                });
                if at_end_of_file {
                    reached_end_of_file = true;
                    break;
                }
            }
        }
    }

    Ok(ChunkResult {
        start_bit_offset,
        end_bit_offset: range_start_bits + reader.position(),
        data,
        reached_end_of_file,
        window_usage,
        fragments,
        fast_fallback_blocks,
    })
}

/// Speculatively decodes the chunk whose guessed start is
/// `guess_index * chunk_size` bytes, using the block finder and two-stage
/// decoding.  Returns `Ok(None)` if no DEFLATE block could be found inside
/// the guessed chunk range.
#[cfg_attr(not(test), allow(dead_code))]
pub fn decode_speculative_chunk(
    reader: &SharedFileReader,
    chunk_size: usize,
    guess_index: usize,
) -> Result<Option<SpeculativeChunk>, CoreError> {
    decode_speculative_chunk_traced(
        reader,
        chunk_size,
        guess_index,
        &TraceSink::shared_disabled(),
    )
}

/// [`decode_speculative_chunk`] with block-find and two-stage decode spans
/// recorded into `trace` (chunk id = the guessed bit offset).
pub fn decode_speculative_chunk_traced(
    reader: &SharedFileReader,
    chunk_size: usize,
    guess_index: usize,
    trace: &TraceSink,
) -> Result<Option<SpeculativeChunk>, CoreError> {
    let file_size = reader.size();
    let guess_byte = (guess_index as u64) * chunk_size as u64;
    if guess_byte >= file_size {
        return Ok(None);
    }
    let guess_bit = guess_byte * 8;
    let stop_bit = (guess_byte + chunk_size as u64) * 8;
    let mut slack = chunk_size as u64;

    loop {
        let range_end = (stop_bit / 8 + slack).min(file_size);
        let range = read_compressed_range(reader, guess_byte, range_end - guess_byte)?;
        let range_covers_file_end = guess_byte + range.len() as u64 >= file_size;

        match decode_speculative_in_range(&range, guess_byte, guess_bit, stop_bit, trace) {
            SpeculativeOutcome::Found(chunk) => return Ok(Some(chunk)),
            SpeculativeOutcome::NoBlock => return Ok(None),
            SpeculativeOutcome::NeedMoreData if !range_covers_file_end => {
                slack = slack.saturating_mul(4);
            }
            SpeculativeOutcome::NeedMoreData => return Ok(None),
        }
    }
}

enum SpeculativeOutcome {
    Found(SpeculativeChunk),
    NoBlock,
    NeedMoreData,
}

fn decode_speculative_in_range(
    range: &[u8],
    range_start_byte: u64,
    guess_bit: u64,
    stop_bit: u64,
    trace: &TraceSink,
) -> SpeculativeOutcome {
    let range_start_bits = range_start_byte * 8;
    let relative_guess = guess_bit - range_start_bits;
    let relative_stop = stop_bit - range_start_bits;
    let finder = CombinedBlockFinder::new();

    let mut search_from = relative_guess;
    loop {
        let candidate = {
            let mut span = trace.span(Stage::BlockFind).chunk(guess_bit);
            match finder.find_next(range, search_from) {
                // The first candidate block may already belong to the next
                // chunk, in which case this chunk has nothing to offer.
                Some(candidate) if candidate < relative_stop => candidate,
                _ => {
                    span.set_outcome(Outcome::NotFound);
                    return SpeculativeOutcome::NoBlock;
                }
            }
        };

        let mut span = trace
            .span(Stage::DecodeTwoStage)
            .chunk(guess_bit)
            .compressed_range(
                range_start_byte + candidate / 8,
                range_start_byte + range.len() as u64,
            );
        match try_speculative_decode(range, candidate, relative_stop) {
            Ok((symbols, end_position, block_count, reached_end_of_file, member_ends)) => {
                span.set_bytes(symbols.len() as u64);
                span.set_compressed_range(
                    range_start_byte + candidate / 8,
                    range_start_byte + end_position.div_ceil(8),
                );
                span.finish();
                return SpeculativeOutcome::Found(SpeculativeChunk {
                    requested_bit_offset: guess_bit,
                    found_bit_offset: range_start_bits + candidate,
                    end_bit_offset: range_start_bits + end_position,
                    symbols,
                    block_count,
                    reached_end_of_file,
                    member_ends,
                });
            }
            Err(error) if is_eof_like(&error) => {
                // Could be a genuine block whose data extends past the range
                // we read: ask the caller for more data.
                span.set_outcome(Outcome::Error);
                return SpeculativeOutcome::NeedMoreData;
            }
            Err(_) => {
                // False positive: try the next candidate.
                span.set_outcome(Outcome::NotFound);
                search_from = candidate + 1;
            }
        }
    }
}

type SpeculativeDecode = (Vec<u16>, u64, usize, bool, Vec<(u64, GzipFooter)>);

fn try_speculative_decode(
    range: &[u8],
    start: u64,
    relative_stop: u64,
) -> Result<SpeculativeDecode, CoreError> {
    let mut reader = BitReader::new(range);
    reader
        .seek_to_bit(start)
        .map_err(|_| CoreError::Deflate(DeflateError::UnexpectedEof))?;
    let mut symbols = Vec::new();
    let mut block_count = 0usize;
    let mut reached_end_of_file = false;
    let mut member_ends = Vec::new();
    loop {
        let outcome = inflate_two_stage(&mut reader, &mut symbols, relative_stop)
            .map_err(CoreError::Deflate)?;
        block_count += outcome.blocks.len();
        match outcome.stop_reason {
            StopReason::StopOffsetReached => break,
            StopReason::EndOfInput => {
                return Err(CoreError::Deflate(DeflateError::UnexpectedEof));
            }
            StopReason::EndOfStream => {
                let (footer, at_end_of_file) = cross_member_boundary(&mut reader)?;
                member_ends.push((symbols.len() as u64, footer));
                if at_end_of_file {
                    reached_end_of_file = true;
                    break;
                }
            }
        }
    }
    Ok((
        symbols,
        reader.position(),
        block_count,
        reached_end_of_file,
        member_ends,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_deflate::replace_markers;
    use rgz_gzip::GzipWriter;

    fn corpus(records: usize) -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..records {
            data.extend_from_slice(
                format!("record {:07} -- some repetitive payload text\n", i % 10_000).as_bytes(),
            );
        }
        data
    }

    #[test]
    fn direct_decode_of_whole_small_file() {
        let data = corpus(2_000);
        let compressed = GzipWriter::default().compress(&data);
        let reader = SharedFileReader::from_bytes(compressed);
        let result = decode_chunk_at(&reader, 0, u64::MAX, &[], true, 128 * 1024, true).unwrap();
        assert_eq!(result.data, data);
        assert!(result.reached_end_of_file);
        // A single-member file yields one trailer fragment hashing the
        // whole output.
        assert_eq!(result.fragments.len(), 1);
        let fragment = &result.fragments[0];
        assert_eq!(fragment.length, data.len() as u64);
        assert_eq!(fragment.crc32, rgz_checksum::crc32(&data));
        let trailer = fragment.trailer.expect("member ends in this chunk");
        assert_eq!(trailer.crc32, fragment.crc32);
        assert_eq!(trailer.uncompressed_size, data.len() as u32);
    }

    #[test]
    fn direct_decode_without_verification_skips_hashing() {
        let data = corpus(1_000);
        let compressed = GzipWriter::default().compress(&data);
        let reader = SharedFileReader::from_bytes(compressed);
        let result = decode_chunk_at(&reader, 0, u64::MAX, &[], true, 128 * 1024, false).unwrap();
        assert_eq!(result.data, data);
        assert_eq!(result.fragments.len(), 1);
        assert_eq!(result.fragments[0].crc32, 0);
        assert!(result.fragments[0].trailer.is_some());
    }

    #[test]
    fn direct_decode_handles_multi_member_files() {
        let writer = GzipWriter::default();
        let part_a = corpus(500);
        let part_b = corpus(700);
        let compressed = writer.compress_members(&[&part_a, &part_b]);
        let reader = SharedFileReader::from_bytes(compressed);
        let result = decode_chunk_at(&reader, 0, u64::MAX, &[], true, 128 * 1024, true).unwrap();
        let mut expected = part_a.clone();
        expected.extend_from_slice(&part_b);
        assert_eq!(result.data, expected);
        assert!(result.reached_end_of_file);
        // Two members, two fragments, split exactly at the member boundary.
        assert_eq!(result.fragments.len(), 2);
        assert_eq!(result.fragments[0].length, part_a.len() as u64);
        assert_eq!(result.fragments[0].crc32, rgz_checksum::crc32(&part_a));
        assert_eq!(result.fragments[1].crc32, rgz_checksum::crc32(&part_b));
        assert_eq!(
            result.fragments[0].trailer.unwrap().crc32,
            rgz_checksum::crc32(&part_a)
        );
        assert_eq!(
            result.fragments[1].trailer.unwrap().uncompressed_size,
            part_b.len() as u32
        );
    }

    #[test]
    fn speculative_chunk_matches_direct_decode() {
        let data = corpus(60_000);
        let compressed = GzipWriter::default().compress(&data);
        let chunk_size = 64 * 1024;
        let shared = SharedFileReader::from_bytes(compressed);

        // Decode chunk 0 directly to learn the exact boundary and window.
        let chunk0 = decode_chunk_at(
            &shared,
            0,
            (chunk_size as u64) * 8,
            &[],
            true,
            chunk_size,
            true,
        )
        .unwrap();
        assert!(!chunk0.reached_end_of_file);
        // The member continues past the chunk: its only fragment carries no
        // trailer but still hashes the chunk's bytes.
        assert_eq!(chunk0.fragments.len(), 1);
        assert!(chunk0.fragments[0].trailer.is_none());
        assert_eq!(chunk0.fragments[0].crc32, rgz_checksum::crc32(&chunk0.data));

        // Speculatively decode guess index 1 and verify it lines up.
        let speculative = decode_speculative_chunk(&shared, chunk_size, 1)
            .unwrap()
            .expect("a block must be found in chunk 1");
        assert_eq!(speculative.requested_bit_offset, (chunk_size as u64) * 8);
        assert_eq!(speculative.found_bit_offset, chunk0.end_bit_offset);
        assert!(speculative.block_count >= 1);
        assert!(
            speculative.member_ends.is_empty(),
            "a mid-member chunk records no member boundary"
        );

        // Resolving its markers with chunk 0's window yields the original data.
        let window_start = chunk0.data.len().saturating_sub(32 * 1024);
        let resolved = replace_markers(&speculative.symbols, &chunk0.data[window_start..]).unwrap();
        let offset = chunk0.data.len();
        assert_eq!(&resolved[..], &data[offset..offset + resolved.len()]);
    }

    #[test]
    fn speculative_chunks_record_member_boundaries() {
        // Two multi-block members with several blocks per chunk: the chunk
        // containing member A's end starts at a findable (non-final) block
        // before A's final block, decodes across the boundary into member B,
        // and must record the boundary with A's trailer.  (BGZF members are
        // single final blocks the block finder never reports, so they
        // exercise the on-demand path instead.)
        let part_a = corpus(15_000);
        let part_b = corpus(9_000);
        let writer = GzipWriter::new(rgz_deflate::CompressorOptions {
            block_size: 16 * 1024,
            ..Default::default()
        });
        let compressed = writer.compress_members(&[&part_a, &part_b]);
        let chunk_size = 8 * 1024;
        assert!(compressed.len() > 4 * chunk_size);
        let shared = SharedFileReader::from_bytes(compressed.clone());

        let mut recorded = Vec::new();
        for guess in 1..compressed.len().div_ceil(chunk_size) {
            if let Some(chunk) = decode_speculative_chunk(&shared, chunk_size, guess).unwrap() {
                recorded.extend(chunk.member_ends);
            }
        }
        let crc_a = rgz_checksum::crc32(&part_a);
        assert!(
            recorded.iter().any(|&(end, footer)| end > 0
                && footer.crc32 == crc_a
                && footer.uncompressed_size == part_a.len() as u32),
            "no speculative chunk recorded member A's trailer: {recorded:?}"
        );
    }

    #[test]
    fn speculative_chunk_beyond_the_file_is_none() {
        let compressed = GzipWriter::default().compress(&corpus(100));
        let shared = SharedFileReader::from_bytes(compressed);
        assert!(decode_speculative_chunk(&shared, 1 << 20, 5)
            .unwrap()
            .is_none());
    }

    #[test]
    fn speculative_chunk_in_single_block_file_is_none() {
        // A Huffman-only single-block file (igzip -0 style) offers no block
        // boundaries to start from, so speculation must come up empty rather
        // than hallucinate data.
        let data = corpus(30_000);
        let compressed =
            rgz_gzip::CompressorFrontend::new(rgz_gzip::FrontendKind::Igzip, 0).compress(&data);
        let chunk_size = 32 * 1024;
        let shared = SharedFileReader::from_bytes(compressed.clone());
        assert!((compressed.len() / chunk_size) > 2);
        let speculative = decode_speculative_chunk(&shared, chunk_size, 1).unwrap();
        assert!(
            speculative.is_none(),
            "single-block files cannot provide speculative chunks"
        );
    }

    #[test]
    fn direct_decode_with_wrong_offset_fails() {
        let data = corpus(5_000);
        let compressed = GzipWriter::default().compress(&data);
        let shared = SharedFileReader::from_bytes(compressed);
        // Bit offset 12345 is (almost certainly) not a valid block start.
        let result = decode_chunk_at(&shared, 12_345, u64::MAX, &[], false, 64 * 1024, false);
        assert!(result.is_err());
    }
}
