//! The pipelined checksum-verification state of the parallel reader.
//!
//! The paper leaves checksum computation during parallel decompression as
//! future work; this module closes that gap.  Every decoded chunk hashes its
//! own decompressed bytes on the worker thread that produced them, split
//! into [`ChunkFragment`]s at gzip member boundaries.  The
//! [`StreamVerifier`] then folds those per-chunk CRC-32 fragments in stream
//! order with `crc32_combine` — an O(log n) GF(2) matrix product per
//! fragment, so the sequential folding cost is negligible compared to
//! decompression — and compares the accumulated value against each member's
//! trailer CRC-32 and ISIZE.

use std::collections::BTreeMap;

use rgz_checksum::crc32_combine;
use rgz_gzip::GzipFooter;
use rgz_index::PointChecksums;
use rgz_metrics::Counter;

use crate::CoreError;

/// Whether (and how) the parallel reader verifies member checksums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerificationMode {
    /// Hash every decompressed byte on the worker threads and verify each
    /// member's trailer CRC-32 and ISIZE as chunks are committed in stream
    /// order.  This is the default.
    #[default]
    Full,
    /// Skip hashing and trailer verification entirely (rapidgzip's
    /// historical behaviour; silently corrupted archives decompress
    /// "successfully").
    Off,
}

/// One contiguous run of a chunk's decompressed bytes belonging to a single
/// gzip member.
///
/// A chunk that contains no member boundary is one fragment; a chunk whose
/// compressed range spans members is split at each boundary, so every
/// fragment can be attributed to exactly one trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkFragment {
    /// CRC-32 of the fragment's decompressed bytes (0 when hashing is off).
    pub crc32: u32,
    /// Length of the fragment in decompressed bytes.
    pub length: u64,
    /// The member's trailer, when the member ends with this fragment.
    /// `None` means the member continues into the next chunk (or the next
    /// fragment's member starts a new chunk-internal member).
    pub trailer: Option<GzipFooter>,
}

/// Counters describing what the verification pipeline has checked so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerificationStatistics {
    /// The mode the reader runs in.
    pub mode: VerificationMode,
    /// Members whose trailer CRC-32 and ISIZE both matched.
    pub members_verified: u64,
    /// Decompressed bytes folded into member checksums so far.
    pub bytes_verified: u64,
    /// Chunk fragments folded so far.
    pub fragments_folded: u64,
    /// Chunks whose fragments arrived out of order and await folding.
    pub chunks_pending: usize,
    /// Running CRC-32 over the *whole* decompressed stream (all members
    /// concatenated), folded from the same fragments.  After a complete
    /// in-order pass this equals `crc32` of the full output.
    pub stream_crc32: u32,
    /// Random-access (index fast path) chunk decodes whose output was
    /// checked against the CRC fragments stored in a v3 index.
    pub index_chunks_verified: u64,
    /// Random-access chunk decodes served without stored fragments (v1/v2
    /// files, foreign imports) — under [`VerificationMode::Full`] these
    /// complete *unverified* and are surfaced here instead of silently
    /// passing.
    pub index_chunks_unverified: u64,
}

#[derive(Debug, Clone, Copy)]
enum VerificationFailure {
    Checksum {
        member: u64,
        expected: u32,
        actual: u32,
    },
    Size {
        member: u64,
        expected: u32,
        actual: u64,
    },
}

/// Folds per-chunk CRC fragments in stream order and records the first
/// member whose trailer does not match.
#[derive(Debug)]
pub(crate) struct StreamVerifier {
    mode: VerificationMode,
    /// Fragments submitted by workers, keyed by chunk sequence number;
    /// drained in order as the contiguous prefix becomes available.
    slots: BTreeMap<u64, Vec<ChunkFragment>>,
    next_seq: u64,
    member_crc: u32,
    member_length: u64,
    member_index: u64,
    stream_crc: u32,
    members_verified: u64,
    bytes_verified: u64,
    fragments_folded: u64,
    failure: Option<VerificationFailure>,
    /// Registry twin of `members_verified`
    /// (`rgz_verification_total{outcome="member_verified"}`); disconnected
    /// unless the owning reader has a metrics registry attached.
    members_verified_counter: Counter,
}

impl StreamVerifier {
    pub(crate) fn new(mode: VerificationMode) -> Self {
        Self {
            mode,
            slots: BTreeMap::new(),
            next_seq: 0,
            member_crc: 0,
            member_length: 0,
            member_index: 0,
            stream_crc: 0,
            members_verified: 0,
            bytes_verified: 0,
            fragments_folded: 0,
            failure: None,
            members_verified_counter: Counter::disconnected(),
        }
    }

    /// Mirrors every member-verification success into a registry counter.
    pub(crate) fn set_member_verified_counter(&mut self, counter: Counter) {
        self.members_verified_counter = counter;
    }

    /// Accepts the fragments of the chunk committed as sequence number
    /// `seq`, then folds every contiguously-available chunk.  Workers may
    /// submit out of order; folding always happens in stream order.
    pub(crate) fn submit(&mut self, seq: u64, fragments: Vec<ChunkFragment>) {
        if self.mode == VerificationMode::Off {
            return;
        }
        self.slots.insert(seq, fragments);
        while let Some(fragments) = self.slots.remove(&self.next_seq) {
            self.next_seq += 1;
            for fragment in fragments {
                self.fold(fragment);
            }
        }
    }

    fn fold(&mut self, fragment: ChunkFragment) {
        self.fragments_folded += 1;
        self.bytes_verified += fragment.length;
        self.member_crc = crc32_combine(self.member_crc, fragment.crc32, fragment.length);
        self.stream_crc = crc32_combine(self.stream_crc, fragment.crc32, fragment.length);
        self.member_length += fragment.length;
        if let Some(trailer) = fragment.trailer {
            // Only the first failure is kept: everything after a corrupt
            // member decodes from a suspect window anyway.
            if self.failure.is_none() {
                if self.member_crc != trailer.crc32 {
                    self.failure = Some(VerificationFailure::Checksum {
                        member: self.member_index,
                        expected: trailer.crc32,
                        actual: self.member_crc,
                    });
                } else if self.member_length as u32 != trailer.uncompressed_size {
                    // ISIZE stores the size modulo 2^32 (RFC 1952 §2.3.1).
                    self.failure = Some(VerificationFailure::Size {
                        member: self.member_index,
                        expected: trailer.uncompressed_size,
                        actual: self.member_length,
                    });
                } else {
                    self.members_verified += 1;
                    self.members_verified_counter.inc();
                }
            }
            self.member_index += 1;
            self.member_crc = 0;
            self.member_length = 0;
        }
    }

    /// Errors with the first recorded trailer mismatch, if any.
    pub(crate) fn check(&self) -> Result<(), CoreError> {
        match self.failure {
            None => Ok(()),
            Some(VerificationFailure::Checksum {
                member,
                expected,
                actual,
            }) => Err(CoreError::ChecksumMismatch {
                member,
                expected,
                actual,
            }),
            Some(VerificationFailure::Size {
                member,
                expected,
                actual,
            }) => Err(CoreError::MemberSizeMismatch {
                member,
                expected,
                actual,
            }),
        }
    }

    pub(crate) fn statistics(&self) -> VerificationStatistics {
        VerificationStatistics {
            mode: self.mode,
            members_verified: self.members_verified,
            bytes_verified: self.bytes_verified,
            fragments_folded: self.fragments_folded,
            chunks_pending: self.slots.len(),
            stream_crc32: self.stream_crc,
            // Filled in by the reader, which owns the fast-path counters.
            index_chunks_verified: 0,
            index_chunks_unverified: 0,
        }
    }
}

/// Compares the fragments of a re-decoded chunk against the fragments a v3
/// index stores for its seek point, attributing the first disagreement to
/// the gzip member it belongs to.
///
/// Trailing zero-length fragments are ignored on both sides: the sequential
/// capture and the random-access re-decode differ in whether they emit an
/// empty piece when a chunk ends exactly on a member boundary, and an empty
/// piece carries no checksum information anyway.
pub(crate) fn check_point_fragments(
    stored: &PointChecksums,
    decoded: &[ChunkFragment],
) -> Result<(), CoreError> {
    let trimmed = |count: usize, length_at: &dyn Fn(usize) -> u64| -> usize {
        let mut count = count;
        while count > 0 && length_at(count - 1) == 0 {
            count -= 1;
        }
        count
    };
    let stored_count = trimmed(stored.fragments.len(), &|i| stored.fragments[i].length);
    let decoded_count = trimmed(decoded.len(), &|i| decoded[i].length);
    for i in 0..stored_count.max(decoded_count) {
        let expected = stored.fragments.get(i).filter(|_| i < stored_count);
        let actual = decoded.get(i).filter(|_| i < decoded_count);
        let matches = match (expected, actual) {
            (Some(expected), Some(actual)) => {
                expected.length == actual.length && expected.crc32 == actual.crc32
            }
            // One side ran out: the chunk's member structure changed, which
            // only corruption (or a stale index) can cause.
            _ => false,
        };
        if !matches {
            return Err(CoreError::ChecksumMismatch {
                member: stored.first_member + i as u64,
                expected: expected.map(|f| f.crc32).unwrap_or(0),
                actual: actual.map(|f| f.crc32).unwrap_or(0),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_checksum::crc32;

    fn fragment(data: &[u8], trailer: Option<GzipFooter>) -> ChunkFragment {
        ChunkFragment {
            crc32: crc32(data),
            length: data.len() as u64,
            trailer,
        }
    }

    #[test]
    fn folds_fragments_across_chunks_and_members() {
        let part_a = b"first member split across".to_vec();
        let part_b = b" two chunk fragments".to_vec();
        let mut whole = part_a.clone();
        whole.extend_from_slice(&part_b);
        let footer = GzipFooter {
            crc32: crc32(&whole),
            uncompressed_size: whole.len() as u32,
        };

        let mut verifier = StreamVerifier::new(VerificationMode::Full);
        // Chunk 1 arrives before chunk 0: folding must wait.
        verifier.submit(1, vec![fragment(&part_b, Some(footer))]);
        assert_eq!(verifier.statistics().members_verified, 0);
        assert_eq!(verifier.statistics().chunks_pending, 1);
        verifier.submit(0, vec![fragment(&part_a, None)]);
        let statistics = verifier.statistics();
        assert_eq!(statistics.members_verified, 1);
        assert_eq!(statistics.chunks_pending, 0);
        assert_eq!(statistics.bytes_verified, whole.len() as u64);
        assert_eq!(statistics.stream_crc32, crc32(&whole));
        assert!(verifier.check().is_ok());
    }

    #[test]
    fn wrong_trailer_crc_is_reported_with_the_member_index() {
        let mut verifier = StreamVerifier::new(VerificationMode::Full);
        let good = GzipFooter {
            crc32: crc32(b"ok"),
            uncompressed_size: 2,
        };
        let bad = GzipFooter {
            crc32: 0xDEAD_BEEF,
            uncompressed_size: 3,
        };
        verifier.submit(
            0,
            vec![fragment(b"ok", Some(good)), fragment(b"bad", Some(bad))],
        );
        match verifier.check() {
            Err(CoreError::ChecksumMismatch {
                member, expected, ..
            }) => {
                assert_eq!(member, 1);
                assert_eq!(expected, 0xDEAD_BEEF);
            }
            other => panic!("expected a checksum mismatch, got {other:?}"),
        }
        assert_eq!(verifier.statistics().members_verified, 1);
    }

    #[test]
    fn wrong_isize_is_reported_even_when_the_crc_matches() {
        let mut verifier = StreamVerifier::new(VerificationMode::Full);
        let footer = GzipFooter {
            crc32: crc32(b"payload"),
            uncompressed_size: 999,
        };
        verifier.submit(0, vec![fragment(b"payload", Some(footer))]);
        assert!(matches!(
            verifier.check(),
            Err(CoreError::MemberSizeMismatch {
                member: 0,
                expected: 999,
                actual: 7,
            })
        ));
    }

    #[test]
    fn off_mode_accepts_anything() {
        let mut verifier = StreamVerifier::new(VerificationMode::Off);
        let bad = GzipFooter {
            crc32: 1,
            uncompressed_size: 2,
        };
        verifier.submit(0, vec![fragment(b"whatever", Some(bad))]);
        assert!(verifier.check().is_ok());
        assert_eq!(verifier.statistics().members_verified, 0);
        assert_eq!(verifier.statistics().fragments_folded, 0);
    }

    #[test]
    fn point_fragment_comparison_names_the_member_and_ignores_empty_tails() {
        let stored = PointChecksums::from_fragments(5, [(0xAAAA, 100), (0xBBBB, 50)]);
        let decoded = |crcs: &[(u32, u64)], trailing_empty: bool| -> Vec<ChunkFragment> {
            let mut fragments: Vec<ChunkFragment> = crcs
                .iter()
                .map(|&(crc32, length)| ChunkFragment {
                    crc32,
                    length,
                    trailer: None,
                })
                .collect();
            if trailing_empty {
                fragments.push(ChunkFragment {
                    crc32: 0,
                    length: 0,
                    trailer: None,
                });
            }
            fragments
        };

        // Matching fragments pass, with or without the decode's trailing
        // empty piece (emitted when a chunk ends exactly on a member end).
        for trailing in [false, true] {
            assert!(check_point_fragments(
                &stored,
                &decoded(&[(0xAAAA, 100), (0xBBBB, 50)], trailing)
            )
            .is_ok());
        }
        // A CRC disagreement is attributed to first_member + index.
        match check_point_fragments(&stored, &decoded(&[(0xAAAA, 100), (0xCCCC, 50)], false)) {
            Err(CoreError::ChecksumMismatch {
                member,
                expected,
                actual,
            }) => {
                assert_eq!(member, 6);
                assert_eq!(expected, 0xBBBB);
                assert_eq!(actual, 0xCCCC);
            }
            other => panic!("expected a mismatch on member 6, got {other:?}"),
        }
        // A length disagreement counts too (the crc of wrong-length pieces
        // proves nothing).
        assert!(
            check_point_fragments(&stored, &decoded(&[(0xAAAA, 100), (0xBBBB, 51)], false))
                .is_err()
        );
        // A changed member structure (fragment count) is a mismatch on the
        // first absent index.
        match check_point_fragments(&stored, &decoded(&[(0xAAAA, 100)], false)) {
            Err(CoreError::ChecksumMismatch { member, .. }) => assert_eq!(member, 6),
            other => panic!("expected a mismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_member_verifies() {
        let mut verifier = StreamVerifier::new(VerificationMode::Full);
        let footer = GzipFooter {
            crc32: 0,
            uncompressed_size: 0,
        };
        verifier.submit(0, vec![fragment(b"", Some(footer))]);
        assert!(verifier.check().is_ok());
        assert_eq!(verifier.statistics().members_verified, 1);
    }
}
