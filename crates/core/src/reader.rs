//! The `ParallelGzipReader`: orchestration of speculative chunk
//! decompression, marker resolution, index construction and random access.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;

use parking_lot::Mutex;
use rgz_deflate::{replace_markers, replace_markers_hashed, resolve_window, WindowUsage};
use rgz_fetcher::{Cache, IndexAlignedPlan, TaskHandle, ThreadPool};
use rgz_index::{GzipIndex, PointChecksums, SeekPoint, WINDOW_SIZE};
use rgz_io::{FileReader, SharedFileReader};
use rgz_metrics::MetricsRegistry;
use rgz_trace::{instants, EventMeta, Outcome, Stage, TraceSink};

use crate::chunk::{decode_chunk_at, decode_speculative_chunk_traced, SpeculativeChunk};
use crate::metrics::ReaderMetrics;
use crate::verify::{
    check_point_fragments, ChunkFragment, StreamVerifier, VerificationMode, VerificationStatistics,
};
use crate::{CoreError, DEFAULT_CHUNK_SIZE};

/// Configuration of a [`ParallelGzipReader`].
#[derive(Debug, Clone)]
pub struct ParallelGzipReaderOptions {
    /// Number of worker threads used for speculative chunk decompression and
    /// marker replacement.  Defaults to the number of logical CPUs.
    pub parallelization: usize,
    /// Compressed chunk size in bytes (the paper's default is 4 MiB).
    pub chunk_size: usize,
    /// How many chunks ahead of the last access to prefetch.  Defaults to
    /// twice the parallelization, matching the paper's prefetch cache sizing.
    pub prefetch_degree: Option<usize>,
    /// Capacity of the cache of resolved chunks kept for random access.
    pub resolved_cache_chunks: usize,
    /// Whether to verify member CRC-32s and ISIZEs during the sequential
    /// pass.  [`VerificationMode::Full`] (the default) hashes every
    /// decompressed byte on the worker threads and folds the per-chunk CRCs
    /// in stream order with `crc32_combine`.
    pub verification: VerificationMode,
    /// Structured event sink every pipeline stage records into.  `None` (the
    /// default) uses the process-wide disabled sink, whose per-record cost is
    /// a single atomic load.
    pub trace: Option<Arc<TraceSink>>,
    /// Metrics registry every pipeline layer registers its series on.  `None`
    /// (the default) leaves all handles disconnected: each record call is a
    /// single relaxed load of a never-enabled gate, mirroring the trace sink.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for ParallelGzipReaderOptions {
    fn default() -> Self {
        Self {
            parallelization: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            chunk_size: DEFAULT_CHUNK_SIZE,
            prefetch_degree: None,
            resolved_cache_chunks: 4,
            verification: VerificationMode::default(),
            trace: None,
            metrics: None,
        }
    }
}

impl ParallelGzipReaderOptions {
    /// Convenience constructor fixing the degree of parallelism.
    pub fn with_parallelization(parallelization: usize) -> Self {
        Self {
            parallelization: parallelization.max(1),
            ..Default::default()
        }
    }

    /// Sets the compressed chunk size.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(4 * 1024);
        self
    }

    /// Sets the checksum verification mode.
    pub fn with_verification(mut self, verification: VerificationMode) -> Self {
        self.verification = verification;
        self
    }

    /// Attaches a trace sink; every pipeline stage records spans into it.
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a metrics registry; every pipeline layer registers and
    /// updates its counters, gauges and latency histograms on it.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn effective_prefetch_degree(&self) -> usize {
        self.prefetch_degree
            .unwrap_or(self.parallelization * 2)
            .max(1)
    }
}

/// Counters describing how the parallel reader behaved.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReaderStatistics {
    /// Chunks whose speculative result was used.
    pub speculative_chunks_used: u64,
    /// Chunks that had to be decoded on demand (cache miss or false
    /// positive).
    pub on_demand_chunks: u64,
    /// Speculative results that did not match the required offset (block
    /// finder false positives or boundary mismatches).
    pub speculative_mismatches: u64,
    /// Speculative prefetch tasks submitted to the pool.
    pub prefetches_issued: u64,
    /// Chunks decoded directly from the index fast path.
    pub index_chunks: u64,
    /// Index-aligned prefetch tasks submitted once a seek-point table was
    /// available (imported or built by the first pass).  Unlike speculative
    /// prefetches these decode exact chunks, so none of them is wasted on a
    /// misguessed boundary.
    pub index_prefetches_issued: u64,
    /// Reads that found their chunk already decoded (or decoding) by an
    /// index-aligned prefetch.
    pub index_prefetch_hits: u64,
    /// Index fast-path chunks whose decoded bytes were checked against the
    /// CRC fragments stored in a v3 index.
    pub index_chunks_verified: u64,
    /// Index fast-path chunks served without stored fragments (v1/v2 files,
    /// foreign imports) — completed *unverified* even under
    /// [`VerificationMode::Full`].
    pub index_chunks_unverified: u64,
    /// Speculatively decoded chunks whose result was discarded without ever
    /// being committed: block-finder false positives consumed at a boundary
    /// mismatch, plus finished results that became stale once the sequential
    /// pass moved past them.
    pub speculative_chunks_wasted: u64,
    /// Output symbols (1:1 with uncompressed bytes) decoded in vain by the
    /// wasted speculative chunks above — the paper's speculation-waste cost,
    /// previously invisible.
    pub speculative_bytes_wasted: u64,
    /// Tasks currently waiting in the worker pool's queue (sampled live when
    /// [`ParallelGzipReader::statistics`] is called).
    pub pool_queue_depth: u64,
    /// Tasks currently executing on a worker thread (sampled likewise).
    pub pool_tasks_inflight: u64,
    /// Total tasks ever submitted to the worker pool.
    pub pool_tasks_submitted: u64,
}

/// State of the sequential first pass.
struct SequentialPass {
    /// Exact bit offset where the next chunk starts.
    next_start_bit: u64,
    /// Uncompressed offset of the next chunk.
    next_uncompressed_offset: u64,
    /// Window (up to 32 KiB) preceding the next chunk.
    window: Arc<Vec<u8>>,
    /// Whether the whole file has been traversed.
    finished: bool,
    /// Sequence number of the next committed chunk; orders the CRC fragment
    /// fold even when worker threads finish out of order.
    next_seq: u64,
    /// Zero-based index of the gzip member the next chunk starts in; recorded
    /// into each seek point's [`PointChecksums`] so random-access mismatches
    /// can name the member.
    next_member: u64,
}

enum ChunkData {
    Ready(Arc<Vec<u8>>),
    Pending(TaskHandle<Result<Vec<u8>, CoreError>>),
}

struct ReaderState {
    index: GzipIndex,
    pass: SequentialPass,
    /// Resolved (or resolving) chunk data keyed by compressed bit offset.
    chunk_data: HashMap<u64, ChunkData>,
    /// LRU cache of chunk data for random access after the first pass.
    resolved_cache: Cache<u64, Vec<u8>>,
    /// Finished speculative chunks keyed by their *found* bit offset.
    speculative_ready: HashMap<u64, SpeculativeChunk>,
    /// In-flight speculative tasks keyed by guess index.
    speculative_pending: HashMap<usize, TaskHandle<Result<Option<SpeculativeChunk>, CoreError>>>,
    /// Guess indexes that have already been dispatched (or completed).
    speculative_issued: std::collections::HashSet<usize>,
    /// Prefetch plan aligned to the seek-point table; built lazily once the
    /// sequential pass is finished (or an index was imported).
    index_plan: Option<Arc<IndexAlignedPlan>>,
    /// Keys in `chunk_data` that were produced by index-aligned prefetching
    /// and have not been consumed yet.
    index_prefetched: std::collections::HashSet<u64>,
    /// Chunk index the last index-aligned prefetch ran for; consecutive
    /// reads inside one chunk skip the whole prefetch pipeline.
    last_prefetch_chunk: Option<usize>,
    statistics: ReaderStatistics,
}

/// Parallel decompression of and random access to a gzip file.
///
/// See the crate-level documentation for an overview of the architecture.
pub struct ParallelGzipReader {
    reader: SharedFileReader,
    options: ParallelGzipReaderOptions,
    pool: Arc<ThreadPool>,
    trace: Arc<TraceSink>,
    /// Pre-resolved registry handles; disconnected when no registry was
    /// attached, so the hot paths stay unconditional.
    metrics: Arc<ReaderMetrics>,
    state: Mutex<ReaderState>,
    /// Stream-ordered CRC fold; shared with the worker threads, which submit
    /// their chunk's fragments as soon as marker replacement finishes.
    verifier: Arc<Mutex<StreamVerifier>>,
    /// Current logical read position in the decompressed stream.
    position: u64,
}

impl std::fmt::Debug for ParallelGzipReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelGzipReader")
            .field("compressed_size", &self.reader.size())
            .field("position", &self.position)
            .finish()
    }
}

impl ParallelGzipReader {
    /// Creates a reader over any [`SharedFileReader`].
    pub fn new(
        reader: SharedFileReader,
        options: ParallelGzipReaderOptions,
    ) -> Result<Self, CoreError> {
        let parallelization = options.parallelization.max(1);
        let trace = options
            .trace
            .clone()
            .unwrap_or_else(TraceSink::shared_disabled);
        let metrics = match options.metrics.as_ref() {
            Some(registry) => Arc::new(ReaderMetrics::register(registry)),
            None => Arc::new(ReaderMetrics::disconnected()),
        };
        // Instrument the compressed input (read syscalls, bytes, latency)
        // only when a registry is attached; the wrapper adds one virtual
        // call per read otherwise.
        let reader = if options.metrics.is_some() {
            reader.instrumented(Arc::clone(&metrics.registry))
        } else {
            reader
        };
        let pool = Arc::new(ThreadPool::new_observed(
            parallelization,
            trace.clone(),
            Arc::clone(&metrics.registry),
        ));
        let mut index = GzipIndex::new();
        index.compressed_size = reader.size();
        // Seek-point windows compress on the shared pool as they are stored.
        index.window_map.set_pool(pool.clone());
        index.window_map.set_trace(trace.clone());
        if options.metrics.is_some() {
            index.window_map.set_metrics(&metrics.registry);
        }
        let mut verifier = StreamVerifier::new(options.verification);
        verifier.set_member_verified_counter(metrics.verify_member.clone());
        Ok(Self {
            pool,
            trace,
            metrics,
            verifier: Arc::new(Mutex::new(verifier)),
            state: Mutex::new(ReaderState {
                index,
                pass: SequentialPass {
                    next_start_bit: 0,
                    next_uncompressed_offset: 0,
                    window: Arc::new(Vec::new()),
                    finished: false,
                    next_seq: 0,
                    next_member: 0,
                },
                chunk_data: HashMap::new(),
                resolved_cache: Cache::new(options.resolved_cache_chunks.max(1)),
                speculative_ready: HashMap::new(),
                speculative_pending: HashMap::new(),
                speculative_issued: std::collections::HashSet::new(),
                index_plan: None,
                index_prefetched: std::collections::HashSet::new(),
                last_prefetch_chunk: None,
                statistics: ReaderStatistics::default(),
            }),
            reader,
            options,
            position: 0,
        })
    }

    /// Creates a reader over an in-memory compressed buffer.
    pub fn from_bytes(
        data: impl Into<bytes::Bytes>,
        options: ParallelGzipReaderOptions,
    ) -> Result<Self, CoreError> {
        Self::new(SharedFileReader::from_bytes(data.into()), options)
    }

    /// Opens a gzip file from a path.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        options: ParallelGzipReaderOptions,
    ) -> Result<Self, CoreError> {
        Self::new(SharedFileReader::open(path)?, options)
    }

    /// Creates a reader that uses an existing index, enabling the fast path
    /// (direct decoding with stored windows, balanced work distribution,
    /// constant-time seeks) from the start.
    pub fn with_index(
        reader: SharedFileReader,
        options: ParallelGzipReaderOptions,
        index: GzipIndex,
    ) -> Result<Self, CoreError> {
        let this = Self::new(reader, options)?;
        {
            let mut state = this.state.lock();
            let uncompressed_size = index.uncompressed_size;
            state.pass.finished = true;
            state.pass.next_uncompressed_offset = uncompressed_size;
            state.index = index;
            state.index.window_map.set_pool(this.pool.clone());
            state.index.window_map.set_trace(this.trace.clone());
            if this.options.metrics.is_some() {
                state.index.window_map.set_metrics(&this.metrics.registry);
            }
            if state.index.uncompressed_size == 0 {
                state.index.uncompressed_size = state.index.effective_uncompressed_size();
                state.pass.next_uncompressed_offset = state.index.uncompressed_size;
            }
            // Some foreign formats (gztool) record no compressed size, so
            // an imported index may carry 0; re-exports must still write
            // the real file size.
            if state.index.compressed_size == 0 {
                state.index.compressed_size = this.reader.size();
            }
        }
        Ok(this)
    }

    /// The options this reader was created with.
    pub fn options(&self) -> &ParallelGzipReaderOptions {
        &self.options
    }

    /// The trace sink this reader records into (the process-wide disabled
    /// sink unless one was attached via the options).
    pub fn trace(&self) -> &Arc<TraceSink> {
        &self.trace
    }

    /// Behaviour counters.  The `pool_*` fields are sampled live from the
    /// worker pool at call time.
    pub fn statistics(&self) -> ReaderStatistics {
        let mut statistics = self.state.lock().statistics;
        let pool = self.pool.statistics();
        statistics.pool_queue_depth = pool.queue_depth;
        statistics.pool_tasks_inflight = pool.tasks_inflight;
        statistics.pool_tasks_submitted = pool.tasks_submitted;
        statistics
    }

    /// The metrics registry this reader records into (the process-wide
    /// disabled registry unless one was attached via the options).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics.registry
    }

    /// Memory and cache counters of the seek-point window store (compressed
    /// window bytes vs. the raw bytes a v1-style index would hold).
    pub fn window_statistics(&self) -> rgz_window::WindowStoreStatistics {
        self.state.lock().index.window_map.statistics()
    }

    /// Counters of the checksum verification pipeline: members verified,
    /// bytes hashed, the running whole-stream CRC-32, and — for the random
    /// access fast path — how many chunk decodes were checked against a v3
    /// index's stored CRC fragments versus served unverified (v1/v2 files
    /// and foreign imports carry no fragments).
    pub fn verification_statistics(&self) -> VerificationStatistics {
        let mut statistics = self.verifier.lock().statistics();
        let reader_statistics = self.state.lock().statistics;
        statistics.index_chunks_verified = reader_statistics.index_chunks_verified;
        statistics.index_chunks_unverified = reader_statistics.index_chunks_unverified;
        statistics
    }

    /// Errors with the first recorded member-trailer mismatch, if any.
    fn check_verification(&self) -> Result<(), CoreError> {
        if self.options.verification == VerificationMode::Off {
            return Ok(());
        }
        self.verifier.lock().check()
    }

    /// Total decompressed size, if already known (i.e. after a full pass or
    /// when an index was imported).
    pub fn uncompressed_size(&self) -> Option<u64> {
        let state = self.state.lock();
        if state.pass.finished {
            Some(state.index.block_map.uncompressed_size())
        } else {
            None
        }
    }

    /// Returns a copy of the index built so far.  Call after reading the
    /// whole stream (or [`ParallelGzipReader::build_full_index`]) to get a
    /// complete index suitable for export.
    pub fn index(&self) -> GzipIndex {
        let mut state = self.state.lock();
        // Wait for in-flight chunk workers first: each one records its seek
        // point's CRC fragments as it finishes, and an export taken before
        // that would silently lose verification data for the last chunks.
        let pending: Vec<u64> = state
            .chunk_data
            .iter()
            .filter(|(_, data)| matches!(data, ChunkData::Pending(_)))
            .map(|(&key, _)| key)
            .collect();
        for key in pending {
            if let Some(ChunkData::Pending(handle)) = state.chunk_data.remove(&key) {
                if let Ok(data) = handle.wait() {
                    state
                        .chunk_data
                        .insert(key, ChunkData::Ready(Arc::new(data)));
                }
            }
        }
        let mut index = state.index.clone();
        index.uncompressed_size = index.block_map.uncompressed_size();
        state.index.uncompressed_size = index.uncompressed_size;
        index
    }

    /// Runs the sequential pass to the end of the file (if not already done)
    /// so that the index covers the whole stream, then returns it.
    pub fn build_full_index(&mut self) -> Result<GzipIndex, CoreError> {
        loop {
            let finished = self.state.lock().pass.finished;
            if finished {
                break;
            }
            self.advance_one_chunk()?;
        }
        Ok(self.index())
    }

    /// Decompresses the whole stream into memory.
    ///
    /// Unlike going through the `Read` implementation, this preserves typed
    /// [`CoreError`]s — in particular [`CoreError::ChecksumMismatch`] names
    /// the offending member instead of being flattened into an I/O error.
    pub fn decompress_all(&mut self) -> Result<Vec<u8>, CoreError> {
        let mut out = Vec::new();
        self.decompress_to(&mut out)?;
        Ok(out)
    }

    /// Decompresses the whole stream into a writer, returning the number of
    /// bytes written.
    pub fn decompress_to(&mut self, writer: &mut impl std::io::Write) -> Result<u64, CoreError> {
        self.position = 0;
        let mut buffer = vec![0u8; 1 << 20];
        let mut total = 0u64;
        loop {
            let read = self.read_at_position(&mut buffer)?;
            if read == 0 {
                return Ok(total);
            }
            writer.write_all(&buffer[..read])?;
            total += read as u64;
        }
    }

    // --- sequential pass ------------------------------------------------

    /// Advances the sequential pass by one chunk, extending the index.
    fn advance_one_chunk(&self) -> Result<(), CoreError> {
        let verify = self.options.verification == VerificationMode::Full;
        let (start_bit, uncompressed_offset, window, seq, first_member) = {
            let state = self.state.lock();
            if state.pass.finished {
                return Ok(());
            }
            (
                state.pass.next_start_bit,
                state.pass.next_uncompressed_offset,
                state.pass.window.clone(),
                state.pass.next_seq,
                state.pass.next_member,
            )
        };

        let chunk_bits = (self.options.chunk_size as u64) * 8;
        let file_bits = self.reader.size() * 8;
        if start_bit >= file_bits {
            self.state.lock().pass.finished = true;
            return Ok(());
        }

        // Keep the pool busy before doing this chunk's work.
        self.issue_prefetches(start_bit);

        // The stop offset is the next guessed chunk boundary after the start.
        let guess_index = (start_bit / chunk_bits) as usize;
        let stop_bit = ((guess_index as u64) + 1) * chunk_bits;

        // Try to reuse a speculative result for this exact offset.
        let speculative = self.take_speculative(start_bit, guess_index)?;

        let (data_handle, end_bit, chunk_length, window_for_next, reached_end_of_file);
        // Which window bytes the chunk actually referenced; the seek point
        // stores a sparsified window based on this.
        let window_usage;
        // How many gzip members end inside this chunk, advancing the member
        // counter for the next seek point's fragment attribution.
        let members_ended;
        match speculative {
            Some(chunk) if chunk.found_bit_offset == start_bit && start_bit != 0 => {
                // Non-empty usage is exactly "some symbol is a marker", so a
                // second contains_markers scan over the symbols is redundant.
                window_usage = WindowUsage::from_symbols(&chunk.symbols).intervals();
                // Resolve the trailing window serially, then dispatch the full
                // marker replacement to the pool (§2.2: only the window
                // propagation is inherently sequential).
                let next_window = if !window_usage.is_empty() {
                    resolve_window(&chunk.symbols, &window).map_err(CoreError::Deflate)?
                } else {
                    let resolved_tail: Vec<u8> = chunk
                        .symbols
                        .iter()
                        .skip(chunk.symbols.len().saturating_sub(WINDOW_SIZE))
                        .map(|&s| s as u8)
                        .collect();
                    let mut combined = Vec::with_capacity(WINDOW_SIZE);
                    if resolved_tail.len() < WINDOW_SIZE {
                        let need = WINDOW_SIZE - resolved_tail.len();
                        let take = need.min(window.len());
                        combined.extend_from_slice(&window[window.len() - take..]);
                    }
                    combined.extend_from_slice(&resolved_tail);
                    combined
                };
                end_bit = chunk.end_bit_offset;
                chunk_length = chunk.symbols.len() as u64;
                reached_end_of_file = chunk.reached_end_of_file;
                window_for_next = Arc::new(next_window);
                let window_clone = window.clone();
                let symbols = chunk.symbols;
                let member_ends = chunk.member_ends;
                members_ended = member_ends.len() as u64;
                let verifier = self.verifier.clone();
                let trace = self.trace.clone();
                let marker_seconds = self.metrics.stage_marker_replace.clone();
                let crc_seconds = self.metrics.stage_crc_fold.clone();
                // The checksum map shares storage with the index (and holds
                // no pool reference), so the worker can record this seek
                // point's fragments for verified random access later.
                let checksum_map = self.state.lock().index.checksum_map.clone();
                let handle = self.pool.submit(move || {
                    let _stage_timer = marker_seconds.start_timer();
                    let mut span = trace
                        .span(Stage::MarkerReplace)
                        .chunk(start_bit)
                        .member(first_member);
                    span.set_bytes(symbols.len() as u64);
                    let result = if verify {
                        // Hash the resolved bytes per member fragment right
                        // here on the worker, then hand the fragments to the
                        // stream-ordered fold.
                        let ends: Vec<usize> =
                            member_ends.iter().map(|&(end, _)| end as usize).collect();
                        replace_markers_hashed(&symbols, &window_clone, &ends)
                            .map_err(CoreError::Deflate)
                            .map(|(data, crcs)| {
                                let mut fragments = Vec::with_capacity(crcs.len());
                                let mut start = 0u64;
                                for (index, crc32) in crcs.into_iter().enumerate() {
                                    let (length, trailer) = match member_ends.get(index) {
                                        Some(&(end, footer)) => (end - start, Some(footer)),
                                        None => (data.len() as u64 - start, None),
                                    };
                                    fragments.push(ChunkFragment {
                                        crc32,
                                        length,
                                        trailer,
                                    });
                                    start += length;
                                }
                                checksum_map.insert(
                                    start_bit,
                                    PointChecksums::from_fragments(
                                        first_member,
                                        fragments.iter().map(|f| (f.crc32, f.length)),
                                    ),
                                );
                                {
                                    let _fold = trace.span(Stage::CrcFold).chunk(start_bit);
                                    let _crc_timer = crc_seconds.start_timer();
                                    verifier.lock().submit(seq, fragments);
                                }
                                data
                            })
                    } else {
                        replace_markers(&symbols, &window_clone).map_err(CoreError::Deflate)
                    };
                    span.set_outcome(match &result {
                        Ok(_) => Outcome::Committed,
                        Err(_) => Outcome::Error,
                    });
                    result
                });
                data_handle = ChunkData::Pending(handle);
                self.trace.instant(
                    instants::SPEC_COMMIT,
                    EventMeta {
                        chunk: Some(start_bit),
                        member: Some(first_member),
                        bytes: Some(chunk_length),
                        ..EventMeta::default()
                    },
                );
                self.state.lock().statistics.speculative_chunks_used += 1;
                self.metrics.chunks_speculative.inc();
                self.metrics.bytes_out.add(chunk_length);
            }
            other => {
                if let Some(wasted) = other {
                    let wasted_bytes = wasted.symbols.len() as u64;
                    let mut state = self.state.lock();
                    state.statistics.speculative_mismatches += 1;
                    state.statistics.speculative_chunks_wasted += 1;
                    state.statistics.speculative_bytes_wasted += wasted_bytes;
                    drop(state);
                    self.metrics.speculation_mismatches.inc();
                    self.metrics.chunks_wasted.inc();
                    self.metrics.bytes_wasted.add(wasted_bytes);
                    self.trace.instant(
                        instants::SPEC_WASTE,
                        EventMeta {
                            chunk: Some(wasted.found_bit_offset),
                            bytes: Some(wasted_bytes),
                            ..EventMeta::default()
                        },
                    );
                }
                // Decode on demand with the known window (first chunk, false
                // positive, or no speculative result available).
                let _stage_timer = self.metrics.stage_decode_one_stage.start_timer();
                let mut span = self
                    .trace
                    .span(Stage::DecodeOneStage)
                    .chunk(start_bit)
                    .member(first_member);
                let mut result = match decode_chunk_at(
                    &self.reader,
                    start_bit,
                    stop_bit,
                    &window,
                    start_bit == 0,
                    self.options.chunk_size,
                    verify,
                ) {
                    Ok(result) => {
                        span.set_bytes(result.data.len() as u64);
                        span.set_compressed_range(start_bit / 8, result.end_bit_offset.div_ceil(8));
                        span.set_outcome(if result.fast_fallback_blocks > 0 {
                            Outcome::Fallback
                        } else {
                            Outcome::Committed
                        });
                        span.finish();
                        result
                    }
                    Err(error) => {
                        span.set_outcome(Outcome::Error);
                        return Err(error);
                    }
                };
                members_ended = result
                    .fragments
                    .iter()
                    .filter(|f| f.trailer.is_some())
                    .count() as u64;
                if verify {
                    self.state.lock().index.checksum_map.insert(
                        start_bit,
                        PointChecksums::from_fragments(
                            first_member,
                            result.fragments.iter().map(|f| (f.crc32, f.length)),
                        ),
                    );
                    let _fold = self.trace.span(Stage::CrcFold).chunk(start_bit);
                    let _crc_timer = self.metrics.stage_crc_fold.start_timer();
                    self.verifier
                        .lock()
                        .submit(seq, std::mem::take(&mut result.fragments));
                }
                end_bit = result.end_bit_offset;
                chunk_length = result.data.len() as u64;
                reached_end_of_file = result.reached_end_of_file;
                window_usage = result.window_usage;
                let tail_start = result.data.len().saturating_sub(WINDOW_SIZE);
                let mut next_window: Vec<u8> = Vec::with_capacity(WINDOW_SIZE);
                if result.data.len() < WINDOW_SIZE {
                    let need = WINDOW_SIZE - result.data.len();
                    let take = need.min(window.len());
                    next_window.extend_from_slice(&window[window.len() - take..]);
                }
                next_window.extend_from_slice(&result.data[tail_start..]);
                window_for_next = Arc::new(next_window);
                data_handle = ChunkData::Ready(Arc::new(result.data));
                self.state.lock().statistics.on_demand_chunks += 1;
                self.metrics.chunks_on_demand.inc();
                self.metrics.bytes_out.add(chunk_length);
            }
        }

        let mut state = self.state.lock();
        state.index.add_seek_point_sparse(
            SeekPoint {
                compressed_bit_offset: start_bit,
                uncompressed_offset,
                uncompressed_size: chunk_length,
            },
            &window,
            &window_usage,
        );
        state.chunk_data.insert(start_bit, data_handle);
        state.pass.next_start_bit = end_bit;
        state.pass.next_uncompressed_offset = uncompressed_offset + chunk_length;
        state.pass.window = window_for_next;
        state.pass.next_seq = seq + 1;
        state.pass.next_member = first_member + members_ended;
        if reached_end_of_file || end_bit >= file_bits {
            state.pass.finished = true;
            state.index.uncompressed_size = state.index.block_map.uncompressed_size();
        }
        // Drop stale speculative results that can never match again, counting
        // each one as wasted speculation work.
        let next_start = state.pass.next_start_bit;
        let stale: Vec<u64> = state
            .speculative_ready
            .keys()
            .copied()
            .filter(|&found| found < next_start)
            .collect();
        let mut wasted_events: Vec<(u64, u64)> = Vec::with_capacity(stale.len());
        for found in stale {
            if let Some(chunk) = state.speculative_ready.remove(&found) {
                let bytes = chunk.symbols.len() as u64;
                state.statistics.speculative_chunks_wasted += 1;
                state.statistics.speculative_bytes_wasted += bytes;
                wasted_events.push((found, bytes));
            }
        }
        // At the end of the pass, harvest any speculative task that already
        // finished: its result can never be committed, so it is pure waste.
        // Tasks still genuinely in flight are left to complete on the pool and
        // are dropped unharvested (their cost is not attributable yet).
        if state.pass.finished {
            let finished: Vec<usize> = state
                .speculative_pending
                .iter()
                .filter(|(_, handle)| handle.is_finished())
                .map(|(&index, _)| index)
                .collect();
            for index in finished {
                if let Some(handle) = state.speculative_pending.remove(&index) {
                    if let Some(Ok(Ok(Some(chunk)))) = handle.try_wait() {
                        let bytes = chunk.symbols.len() as u64;
                        state.statistics.speculative_chunks_wasted += 1;
                        state.statistics.speculative_bytes_wasted += bytes;
                        wasted_events.push((chunk.found_bit_offset, bytes));
                    }
                }
            }
        }
        drop(state);
        for (found, bytes) in wasted_events {
            self.metrics.chunks_wasted.inc();
            self.metrics.bytes_wasted.add(bytes);
            self.trace.instant(
                instants::SPEC_WASTE,
                EventMeta {
                    chunk: Some(found),
                    bytes: Some(bytes),
                    ..EventMeta::default()
                },
            );
        }
        // Surface any mismatch the fold has found so far (an on-demand chunk
        // submits synchronously; speculative workers may have reported a
        // failure from an earlier chunk by now).
        self.check_verification()
    }

    /// Looks for a finished speculative chunk starting exactly at `start_bit`;
    /// waits for the in-flight task covering that guess index if necessary.
    fn take_speculative(
        &self,
        start_bit: u64,
        guess_index: usize,
    ) -> Result<Option<SpeculativeChunk>, CoreError> {
        // Harvest all finished speculative tasks.
        let handle_to_wait;
        {
            let mut state = self.state.lock();
            let finished: Vec<usize> = state
                .speculative_pending
                .iter()
                .filter(|(_, handle)| handle.is_finished())
                .map(|(&index, _)| index)
                .collect();
            for index in finished {
                if let Some(handle) = state.speculative_pending.remove(&index) {
                    if let Some(Ok(Ok(Some(chunk)))) = handle.try_wait() {
                        state
                            .speculative_ready
                            .insert(chunk.found_bit_offset, chunk);
                    }
                }
            }
            if let Some(chunk) = state.speculative_ready.remove(&start_bit) {
                return Ok(Some(chunk));
            }
            // If the task responsible for this offset is still running, wait
            // for it specifically (the paper's "periodically check for ready
            // chunks until C1 has become ready").
            handle_to_wait = state.speculative_pending.remove(&guess_index);
        }
        match handle_to_wait {
            Some(handle) => {
                let result = handle.wait();
                let mut state = self.state.lock();
                if let Ok(Some(chunk)) = result {
                    state
                        .speculative_ready
                        .insert(chunk.found_bit_offset, chunk);
                }
                Ok(state.speculative_ready.remove(&start_bit))
            }
            None => Ok(None),
        }
    }

    /// Submits speculative decompression tasks for the chunks following
    /// `start_bit`, up to the prefetch degree.
    fn issue_prefetches(&self, start_bit: u64) {
        let chunk_bits = (self.options.chunk_size as u64) * 8;
        let total_chunks = (self.reader.size() as usize).div_ceil(self.options.chunk_size);
        let current_guess = (start_bit / chunk_bits) as usize;
        let degree = self.options.effective_prefetch_degree();

        let mut state = self.state.lock();
        for guess in (current_guess + 1)..=(current_guess + degree) {
            if guess >= total_chunks
                || state.speculative_issued.contains(&guess)
                || state.speculative_pending.len() >= degree
            {
                continue;
            }
            state.speculative_issued.insert(guess);
            state.statistics.prefetches_issued += 1;
            self.metrics.prefetch_issued_speculative.inc();
            self.trace.instant(
                instants::SPEC_SUBMIT,
                EventMeta {
                    chunk: Some(guess as u64 * chunk_bits),
                    ..EventMeta::default()
                },
            );
            let reader = self.reader.clone();
            let chunk_size = self.options.chunk_size;
            let trace = self.trace.clone();
            let decode_seconds = self.metrics.stage_decode_two_stage.clone();
            let handle = self.pool.submit(move || {
                let _stage_timer = decode_seconds.start_timer();
                decode_speculative_chunk_traced(&reader, chunk_size, guess, &trace)
            });
            state.speculative_pending.insert(guess, handle);
        }
    }

    // --- index-aligned prefetching ---------------------------------------

    /// Prefetches the chunks the index-aligned plan predicts will be read
    /// next, decoding them on the pool with their stored windows.
    ///
    /// Active only once a complete seek-point table exists — imported from
    /// any supported index format or built by the sequential pass.  Unlike
    /// the speculative prefetcher this decodes *exact* chunks: every task
    /// starts at a real seek point and stops at the next one, so no decode
    /// is wasted on a misguessed boundary.
    fn issue_index_prefetches(&self, position: u64) {
        let degree = self.options.effective_prefetch_degree();
        let mut state = self.state.lock();
        if !state.pass.finished || state.index.block_map.len() < 2 {
            return;
        }
        let plan = match &state.index_plan {
            Some(plan) => plan.clone(),
            None => {
                let boundaries: Vec<u64> = state
                    .index
                    .block_map
                    .points()
                    .iter()
                    .map(|p| p.uncompressed_offset)
                    .collect();
                let end = state.index.block_map.uncompressed_size();
                let plan = Arc::new(IndexAlignedPlan::new(boundaries, end));
                state.index_plan = Some(plan.clone());
                plan
            }
        };
        // Consecutive reads within one chunk cannot change the prediction;
        // skip the strategy update and backlog scan until the read position
        // crosses into the next chunk (this also keeps many small reads
        // from masquerading as a long sequential run to the strategy).
        let chunk = plan.chunk_of(position);
        if chunk.is_none() || chunk == state.last_prefetch_chunk {
            return;
        }
        state.last_prefetch_chunk = chunk;
        if plan.record_access(position).is_none() {
            return;
        }
        let targets = plan.prefetch(degree);

        // Cap the decoded-but-unconsumed backlog; evict finished prefetches
        // the plan no longer predicts (random access moved elsewhere).
        let outstanding: Vec<u64> = state
            .index_prefetched
            .iter()
            .filter(|key| state.chunk_data.contains_key(key))
            .copied()
            .collect();
        if outstanding.len() >= degree.saturating_mul(2) {
            let predicted: std::collections::HashSet<u64> = targets
                .iter()
                .map(|&chunk| state.index.block_map.points()[chunk].compressed_bit_offset)
                .collect();
            for key in outstanding {
                if predicted.contains(&key) {
                    continue;
                }
                let finished = match state.chunk_data.get(&key) {
                    Some(ChunkData::Ready(_)) => true,
                    Some(ChunkData::Pending(handle)) => handle.is_finished(),
                    None => true,
                };
                if finished {
                    state.chunk_data.remove(&key);
                    state.index_prefetched.remove(&key);
                    self.trace.instant(
                        instants::PREFETCH_EVICT,
                        EventMeta {
                            chunk: Some(key),
                            ..EventMeta::default()
                        },
                    );
                }
            }
            if state
                .index_prefetched
                .iter()
                .filter(|key| state.chunk_data.contains_key(key))
                .count()
                >= degree.saturating_mul(2)
            {
                return;
            }
        }

        // Look up window *records* outside the state lock, before
        // submitting: a task must never capture the window map (it
        // references the thread pool, and a worker dropping the pool's
        // last handle would try to join itself), but an individual
        // `CompressedWindow` record holds no pool reference, so the 32 KiB
        // inflation itself can run on the worker instead of delaying the
        // read this prefetch is meant to hide.
        let window_map = state.index.window_map.clone();
        let checksum_map = state.index.checksum_map.clone();
        let verify = self.options.verification == VerificationMode::Full;
        let plans: Vec<(SeekPoint, u64)> = targets
            .into_iter()
            .filter_map(|chunk| {
                let point = state.index.block_map.points()[chunk].clone();
                let key = point.compressed_bit_offset;
                if state.chunk_data.contains_key(&key) || state.resolved_cache.contains(&key) {
                    return None;
                }
                let stop_bit = state
                    .index
                    .block_map
                    .points()
                    .get(chunk + 1)
                    .map(|next| next.compressed_bit_offset)
                    .unwrap_or(u64::MAX);
                Some((point, stop_bit))
            })
            .collect();
        drop(state);

        for (point, stop_bit) in plans {
            let key = point.compressed_bit_offset;
            let record = window_map.get_compressed(key);
            // Stored fragments (if any) let the task verify its own output;
            // an `Arc<PointChecksums>` holds no pool reference, so capturing
            // it in the closure is safe.
            let checksums = if verify { checksum_map.get(key) } else { None };
            let reader = self.reader.clone();
            let chunk_size = self.options.chunk_size;
            let expected_length = point.uncompressed_size;
            let trace = self.trace.clone();
            self.trace.instant(
                instants::PREFETCH_ISSUE,
                EventMeta {
                    chunk: Some(key),
                    bytes: Some(expected_length),
                    ..EventMeta::default()
                },
            );
            let prefetch_seconds = self.metrics.stage_prefetch_decode.clone();
            let handle = self.pool.submit(move || {
                let _stage_timer = prefetch_seconds.start_timer();
                let mut span = trace.span(Stage::PrefetchDecode).chunk(key);
                let result = (|| {
                    let window = match &record {
                        Some(record) => {
                            let _inflate = trace.span(Stage::WindowInflate).chunk(key);
                            record.decompress().map_err(CoreError::Window)?
                        }
                        None => Vec::new(),
                    };
                    let hashed = checksums.is_some();
                    let result = decode_chunk_at(
                        &reader,
                        key,
                        stop_bit,
                        &window,
                        key == 0,
                        chunk_size,
                        hashed,
                    )?;
                    if result.data.len() as u64 != expected_length {
                        return Err(CoreError::IndexMismatch {
                            compressed_bit_offset: key,
                        });
                    }
                    if let Some(checksums) = &checksums {
                        check_point_fragments(checksums, &result.fragments)?;
                    }
                    Ok(result.data)
                })();
                match &result {
                    Ok(data) => {
                        span.set_bytes(data.len() as u64);
                        span.set_outcome(Outcome::Committed);
                    }
                    Err(_) => span.set_outcome(Outcome::Error),
                }
                result
            });
            let mut state = self.state.lock();
            state.chunk_data.insert(key, ChunkData::Pending(handle));
            state.index_prefetched.insert(key);
            state.statistics.index_prefetches_issued += 1;
            self.metrics.prefetch_issued_index.inc();
        }
    }

    // --- serving reads ----------------------------------------------------

    /// Records whether a consumed fast-path chunk was checked against stored
    /// CRC fragments.  Prefetched chunks with fragments verify inside their
    /// task; on-demand decodes verify in [`ParallelGzipReader::chunk_bytes`].
    fn count_fast_path_verification(&self, state: &mut ReaderState, key: u64) {
        if self.options.verification != VerificationMode::Full {
            return;
        }
        if state.index.checksum_map.contains(key) {
            state.statistics.index_chunks_verified += 1;
            self.metrics.verify_index_verified.inc();
        } else {
            state.statistics.index_chunks_unverified += 1;
            self.metrics.verify_index_unverified.inc();
        }
    }

    /// Returns the resolved data of the chunk described by `point`.
    fn chunk_bytes(&self, point: &SeekPoint) -> Result<Arc<Vec<u8>>, CoreError> {
        let key = point.compressed_bit_offset;
        // Data produced (or being produced) by the sequential pass or an
        // index-aligned prefetch.  The prefetch-hit bookkeeping lives inside
        // the match arms: a stale prefetch flag whose data was already
        // evicted must fall through to the on-demand decode below without
        // counting the chunk twice.
        {
            let mut state = self.state.lock();
            if let Some(cached) = state.resolved_cache.get(&key) {
                return Ok(cached);
            }
            let prefetched = state.index_prefetched.remove(&key);
            match state.chunk_data.remove(&key) {
                Some(ChunkData::Ready(data)) => {
                    if prefetched {
                        state.statistics.index_prefetch_hits += 1;
                        state.statistics.index_chunks += 1;
                        self.count_fast_path_verification(&mut state, key);
                        self.metrics.prefetch_hits.inc();
                        self.metrics.chunks_index.inc();
                        self.metrics.bytes_out.add(data.len() as u64);
                        self.trace.instant(
                            instants::PREFETCH_HIT,
                            EventMeta {
                                chunk: Some(key),
                                ..EventMeta::default()
                            },
                        );
                    }
                    state.resolved_cache.insert(key, data.clone());
                    return Ok(data);
                }
                Some(ChunkData::Pending(handle)) => {
                    if prefetched {
                        state.statistics.index_prefetch_hits += 1;
                        state.statistics.index_chunks += 1;
                        self.count_fast_path_verification(&mut state, key);
                        self.metrics.prefetch_hits.inc();
                        self.metrics.chunks_index.inc();
                        self.trace.instant(
                            instants::PREFETCH_HIT,
                            EventMeta {
                                chunk: Some(key),
                                ..EventMeta::default()
                            },
                        );
                    }
                    drop(state);
                    // A prefetched chunk with stored fragments has compared
                    // its output inside the task; a fragment mismatch
                    // surfaces here as the task's error.
                    let data = Arc::new(handle.wait()?);
                    if prefetched {
                        self.metrics.bytes_out.add(data.len() as u64);
                    }
                    // The worker that produced this chunk has submitted its
                    // CRC fragments by now; fail the read if the fold caught
                    // a trailer mismatch.
                    self.check_verification()?;
                    let mut state = self.state.lock();
                    state.resolved_cache.insert(key, data.clone());
                    return Ok(data);
                }
                None => {}
            }
        }

        // Random access / index fast path: decode on demand with the stored
        // window, lazily re-inflated from its compressed record.
        let (window, checksums) = {
            let state = self.state.lock();
            let checksums = if self.options.verification == VerificationMode::Full {
                state.index.checksum_map.get(key)
            } else {
                None
            };
            (state.index.window_map.try_get(key), checksums)
        };
        let window = window.map_err(CoreError::Window)?.unwrap_or_default();
        let stop_bit = {
            let state = self.state.lock();
            let points = state.index.block_map.points();
            // Points are sorted by compressed offset (enforced on import).
            let position = points.partition_point(|p| p.compressed_bit_offset <= key);
            points
                .get(position)
                .map(|p| p.compressed_bit_offset)
                .unwrap_or(u64::MAX)
        };
        // Chunks re-decoded through the index are not folded into the stream
        // verification; instead, when the index stores per-point CRC
        // fragments (format v3), hash the output and compare against them.
        // Without stored fragments (v1/v2 files, foreign imports) the decode
        // completes unverified and is counted as such.
        self.trace.instant(
            instants::PREFETCH_MISS,
            EventMeta {
                chunk: Some(key),
                ..EventMeta::default()
            },
        );
        let _stage_timer = self.metrics.stage_random_access.start_timer();
        let mut span = self.trace.span(Stage::RandomAccess).chunk(key);
        if let Some(checksums) = &checksums {
            span.set_member(checksums.first_member);
        }
        let result = match decode_chunk_at(
            &self.reader,
            key,
            stop_bit,
            &window,
            key == 0,
            self.options.chunk_size,
            checksums.is_some(),
        ) {
            Ok(result) => result,
            Err(error) => {
                span.set_outcome(Outcome::Error);
                return Err(error);
            }
        };
        span.set_bytes(result.data.len() as u64);
        span.set_compressed_range(key / 8, result.end_bit_offset.div_ceil(8));
        if result.data.len() as u64 != point.uncompressed_size {
            span.set_outcome(Outcome::Error);
            return Err(CoreError::IndexMismatch {
                compressed_bit_offset: key,
            });
        }
        if let Some(checksums) = &checksums {
            if let Err(error) = check_point_fragments(checksums, &result.fragments) {
                span.set_outcome(Outcome::Error);
                return Err(error);
            }
        }
        span.set_outcome(Outcome::Committed);
        span.finish();
        let data = Arc::new(result.data);
        let mut state = self.state.lock();
        state.statistics.index_chunks += 1;
        self.count_fast_path_verification(&mut state, key);
        self.metrics.chunks_index.inc();
        self.metrics.bytes_out.add(data.len() as u64);
        state.resolved_cache.insert(key, data.clone());
        Ok(data)
    }

    /// Serves as many bytes as possible from the chunk covering `position`.
    fn read_at_position(&mut self, buffer: &mut [u8]) -> Result<usize, CoreError> {
        loop {
            let covering_point = {
                let state = self.state.lock();
                state.index.block_map.find(self.position).cloned()
            };
            if let Some(point) = covering_point {
                let end = point.uncompressed_offset + point.uncompressed_size;
                if self.position < end {
                    // With a complete seek-point table, keep the pool busy
                    // decoding the exact chunks predicted to be read next.
                    self.issue_index_prefetches(self.position);
                    let data = self.chunk_bytes(&point)?;
                    let chunk_offset = (self.position - point.uncompressed_offset) as usize;
                    // A cached chunk shorter than its seek point claims (a
                    // lying or stale index) must error like the on-demand
                    // length check does, not underflow below.
                    if chunk_offset >= data.len() {
                        return Err(CoreError::IndexMismatch {
                            compressed_bit_offset: point.compressed_bit_offset,
                        });
                    }
                    let available = data.len() - chunk_offset;
                    let count = available.min(buffer.len());
                    buffer[..count].copy_from_slice(&data[chunk_offset..chunk_offset + count]);
                    self.position += count as u64;
                    return Ok(count);
                }
            }
            // The index does not (yet) cover the position.
            let finished = self.state.lock().pass.finished;
            if finished {
                // End of stream: a sequential pass has waited on every chunk
                // by now, so a corrupt trailer anywhere must have been folded
                // and is reported here at the latest.
                self.check_verification()?;
                return Ok(0);
            }
            self.advance_one_chunk()?;
        }
    }
}

impl Read for ParallelGzipReader {
    fn read(&mut self, buffer: &mut [u8]) -> std::io::Result<usize> {
        if buffer.is_empty() {
            return Ok(0);
        }
        self.read_at_position(buffer).map_err(std::io::Error::from)
    }
}

impl Seek for ParallelGzipReader {
    fn seek(&mut self, target: SeekFrom) -> std::io::Result<u64> {
        let new_position: i128 = match target {
            SeekFrom::Start(offset) => offset as i128,
            SeekFrom::Current(delta) => self.position as i128 + delta as i128,
            SeekFrom::End(delta) => {
                // Seeking from the end requires knowing the total size, which
                // may require finishing the sequential pass.
                loop {
                    let finished = self.state.lock().pass.finished;
                    if finished {
                        break;
                    }
                    self.advance_one_chunk().map_err(std::io::Error::from)?;
                }
                let size = self.state.lock().index.block_map.uncompressed_size();
                size as i128 + delta as i128
            }
        };
        if new_position < 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "seek before the start of the stream",
            ));
        }
        // A seek only updates the position; all work happens on the next read
        // (§3.1).
        self.position = new_position as u64;
        Ok(self.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_datagen::{base64_random, fastq_records, silesia_like};
    use rgz_gzip::{decompress, CompressorFrontend, FrontendKind, GzipWriter};

    fn options(parallelization: usize, chunk_size: usize) -> ParallelGzipReaderOptions {
        ParallelGzipReaderOptions {
            parallelization,
            chunk_size,
            ..Default::default()
        }
    }

    fn parallel_roundtrip(compressed: &[u8], chunk_size: usize) -> Vec<u8> {
        let mut reader =
            ParallelGzipReader::from_bytes(compressed.to_vec(), options(4, chunk_size)).unwrap();
        reader.decompress_all().unwrap()
    }

    #[test]
    fn matches_serial_decoder_on_base64_data() {
        let data = base64_random(3 * 1024 * 1024, 1);
        let compressed = GzipWriter::default().compress(&data);
        let restored = parallel_roundtrip(&compressed, 128 * 1024);
        assert_eq!(restored, decompress(&compressed).unwrap());
        assert_eq!(restored, data);
    }

    #[test]
    fn matches_serial_decoder_on_marker_heavy_data() {
        let data = silesia_like(3 * 1024 * 1024, 2);
        let compressed = GzipWriter::default().compress(&data);
        let restored = parallel_roundtrip(&compressed, 128 * 1024);
        assert_eq!(restored, data);
    }

    #[test]
    fn speculative_results_are_actually_used() {
        let data = fastq_records(20_000, 3);
        let compressed = GzipWriter::default().compress(&data);
        let mut reader = ParallelGzipReader::from_bytes(compressed, options(4, 64 * 1024)).unwrap();
        let restored = reader.decompress_all().unwrap();
        assert_eq!(restored, data);
        let statistics = reader.statistics();
        assert!(
            statistics.speculative_chunks_used > 0,
            "parallel pipeline unused: {statistics:?}"
        );
        assert!(statistics.prefetches_issued > 0);
    }

    #[test]
    fn multi_member_and_pigz_style_files_decode() {
        let part_a = base64_random(600_000, 10);
        let part_b = silesia_like(700_000, 11);
        let writer = GzipWriter::default();
        let multi = writer.compress_members(&[&part_a, &part_b]);
        let mut expected = part_a.clone();
        expected.extend_from_slice(&part_b);
        assert_eq!(parallel_roundtrip(&multi, 64 * 1024), expected);

        let pigz = writer.compress_pigz_like(&expected, 128 * 1024);
        assert_eq!(parallel_roundtrip(&pigz, 64 * 1024), expected);

        let bgzf = CompressorFrontend::new(FrontendKind::Bgzf, 6).compress(&expected);
        assert_eq!(parallel_roundtrip(&bgzf, 64 * 1024), expected);
    }

    #[test]
    fn single_block_files_fall_back_to_sequential_decoding() {
        let data = silesia_like(1_200_000, 4);
        let compressed = CompressorFrontend::new(FrontendKind::Igzip, 0).compress(&data);
        let restored = parallel_roundtrip(&compressed, 64 * 1024);
        assert_eq!(restored, data);
    }

    #[test]
    fn stored_only_files_decode_in_parallel() {
        let data = base64_random(2_000_000, 5);
        let compressed = CompressorFrontend::new(FrontendKind::Bgzf, 0).compress(&data);
        assert_eq!(parallel_roundtrip(&compressed, 64 * 1024), data);
    }

    #[test]
    fn seeking_and_partial_reads() {
        let data = silesia_like(2_500_000, 6);
        let compressed = GzipWriter::default().compress(&data);
        let mut reader =
            ParallelGzipReader::from_bytes(compressed, options(4, 128 * 1024)).unwrap();

        let mut buffer = vec![0u8; 10_000];
        reader.seek(SeekFrom::Start(1_234_567)).unwrap();
        reader.read_exact(&mut buffer).unwrap();
        assert_eq!(&buffer[..], &data[1_234_567..1_244_567]);

        reader.seek(SeekFrom::Start(17)).unwrap();
        reader.read_exact(&mut buffer[..100]).unwrap();
        assert_eq!(&buffer[..100], &data[17..117]);

        let end_position = reader.seek(SeekFrom::End(-50)).unwrap();
        assert_eq!(end_position, data.len() as u64 - 50);
        let mut tail = Vec::new();
        reader.read_to_end(&mut tail).unwrap();
        assert_eq!(&tail[..], &data[data.len() - 50..]);

        // Seeking past the end yields EOF on read.
        reader
            .seek(SeekFrom::Start(data.len() as u64 + 10))
            .unwrap();
        assert_eq!(reader.read(&mut buffer).unwrap(), 0);
    }

    #[test]
    fn index_export_import_enables_fast_path() {
        let data = fastq_records(15_000, 7);
        let compressed = GzipWriter::default().compress(&data);
        let mut first_pass =
            ParallelGzipReader::from_bytes(compressed.clone(), options(4, 64 * 1024)).unwrap();
        let index = first_pass.build_full_index().unwrap();
        assert!(index.block_map.len() > 1, "expected multiple seek points");
        assert_eq!(index.uncompressed_size, data.len() as u64);

        let serialized = index.export();
        let imported = GzipIndex::import(&serialized).unwrap();
        let mut second_pass = ParallelGzipReader::with_index(
            SharedFileReader::from_bytes(compressed),
            options(4, 64 * 1024),
            imported,
        )
        .unwrap();
        assert_eq!(second_pass.uncompressed_size(), Some(data.len() as u64));
        let restored = second_pass.decompress_all().unwrap();
        assert_eq!(restored, data);
        assert!(second_pass.statistics().index_chunks > 0);

        // Random access through the imported index.
        let mut buffer = vec![0u8; 4096];
        second_pass.seek(SeekFrom::Start(1_000_000)).unwrap();
        second_pass.read_exact(&mut buffer).unwrap();
        assert_eq!(&buffer[..], &data[1_000_000..1_004_096]);
    }

    #[test]
    fn windows_are_stored_compressed_and_sparse() {
        let data = silesia_like(2 * 1024 * 1024, 40);
        let compressed = GzipWriter::default().compress(&data);
        let mut reader =
            ParallelGzipReader::from_bytes(compressed.clone(), options(4, 128 * 1024)).unwrap();
        let index = reader.build_full_index().unwrap();
        assert!(index.block_map.len() > 4);

        // The v2 export of the sparse/compressed windows must round-trip into
        // a reader whose output is byte-identical, through seeks included.
        // (Exporting also waits for any still-running window compressions.)
        let serialized = index.export_as(rgz_index::IndexFormat::V2);

        let statistics = reader.window_statistics();
        assert_eq!(statistics.pending_compressions, 0);
        assert!(
            statistics.stored_bytes * 2 < statistics.original_bytes,
            "windows not compressed: {statistics:?}"
        );
        let imported = GzipIndex::import(&serialized).unwrap();
        let mut second = ParallelGzipReader::with_index(
            SharedFileReader::from_bytes(compressed),
            options(4, 128 * 1024),
            imported,
        )
        .unwrap();
        assert_eq!(second.decompress_all().unwrap(), data);
        let mut buffer = vec![0u8; 8192];
        second.seek(SeekFrom::Start(1_500_000)).unwrap();
        second.read_exact(&mut buffer).unwrap();
        assert_eq!(&buffer[..], &data[1_500_000..1_508_192]);

        // With a single-chunk resolved cache, alternating between two far
        // apart offsets forces repeated decodes of the same chunks — the
        // second round must find its decompressed windows in the hot cache.
        let imported = GzipIndex::import(&serialized).unwrap();
        let mut third = ParallelGzipReader::with_index(
            SharedFileReader::from_bytes(GzipWriter::default().compress(&data)),
            ParallelGzipReaderOptions {
                parallelization: 2,
                chunk_size: 128 * 1024,
                resolved_cache_chunks: 1,
                ..Default::default()
            },
            imported,
        )
        .unwrap();
        for _ in 0..2 {
            for offset in [400_000u64, 1_500_000] {
                third.seek(SeekFrom::Start(offset)).unwrap();
                third.read_exact(&mut buffer).unwrap();
                assert_eq!(
                    &buffer[..],
                    &data[offset as usize..offset as usize + buffer.len()]
                );
            }
        }
        assert!(third.window_statistics().hot_cache.hits > 0);
    }

    #[test]
    fn imported_index_reads_are_prefetched_chunk_aligned() {
        let data = fastq_records(30_000, 55);
        let compressed = GzipWriter::default().compress(&data);
        let mut first_pass =
            ParallelGzipReader::from_bytes(compressed.clone(), options(4, 64 * 1024)).unwrap();
        let index = first_pass.build_full_index().unwrap();
        assert!(index.block_map.len() > 4);

        let imported = GzipIndex::import(&index.export()).unwrap();
        let mut reader = ParallelGzipReader::with_index(
            SharedFileReader::from_bytes(compressed),
            options(4, 64 * 1024),
            imported,
        )
        .unwrap();
        assert_eq!(reader.decompress_all().unwrap(), data);
        let statistics = reader.statistics();
        assert!(
            statistics.index_prefetches_issued > 0,
            "sequential read through an index must prefetch: {statistics:?}"
        );
        assert!(
            statistics.index_prefetch_hits > 0,
            "prefetched chunks were never consumed: {statistics:?}"
        );
        // Index-aligned prefetching replaces speculation entirely.
        assert_eq!(statistics.prefetches_issued, 0);
        assert_eq!(statistics.speculative_chunks_used, 0);
    }

    #[test]
    fn post_pass_random_access_uses_index_prefetching() {
        let data = silesia_like(2 * 1024 * 1024, 56);
        let compressed = GzipWriter::default().compress(&data);
        // A single-slot resolved cache: after the full pass nothing but the
        // last chunk stays resident, so the sweep below must re-decode.
        let mut reader = ParallelGzipReader::from_bytes(
            compressed,
            ParallelGzipReaderOptions {
                parallelization: 4,
                chunk_size: 128 * 1024,
                resolved_cache_chunks: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Finish the sequential pass and drain its resident chunk data, so
        // later reads must re-decode through the index.
        reader.build_full_index().unwrap();
        assert_eq!(reader.decompress_all().unwrap(), data);

        // A forward sequential sweep over the head of the file — evicted
        // from the bounded resolved cache by the full read above — makes
        // the plan see consecutive chunk accesses and prefetch ahead.
        let mut buffer = vec![0u8; 64 * 1024];
        reader.seek(SeekFrom::Start(0)).unwrap();
        for step in 0..10 {
            reader.read_exact(&mut buffer).unwrap();
            let start = step * buffer.len();
            assert_eq!(&buffer[..], &data[start..start + buffer.len()]);
        }
        let statistics = reader.statistics();
        assert!(
            statistics.index_prefetches_issued > 0,
            "post-pass reads must use the index-aligned plan: {statistics:?}"
        );
    }

    #[test]
    fn sequential_pass_captures_fragments_for_every_seek_point() {
        let data = silesia_like(1_500_000, 60);
        let compressed = GzipWriter::default().compress(&data);
        let mut reader =
            ParallelGzipReader::from_bytes(compressed, options(4, 128 * 1024)).unwrap();
        // `index()` waits for in-flight workers, so every point's fragments
        // are present even though speculative chunks insert asynchronously.
        let index = reader.build_full_index().unwrap();
        assert!(index.block_map.len() > 2);
        assert_eq!(index.checksum_map.len(), index.block_map.len());
        for point in index.block_map.points() {
            let checksums = index.checksum_map.get(point.compressed_bit_offset).unwrap();
            let total: u64 = checksums.fragments.iter().map(|f| f.length).sum();
            assert_eq!(total, point.uncompressed_size);
        }
    }

    #[test]
    fn index_fast_path_reads_verify_against_stored_fragments() {
        let data = silesia_like(1_500_000, 61);
        let compressed = GzipWriter::default().compress(&data);
        let mut first =
            ParallelGzipReader::from_bytes(compressed.clone(), options(4, 128 * 1024)).unwrap();
        let index = first.build_full_index().unwrap();

        let small_cache = |index| {
            ParallelGzipReader::with_index(
                SharedFileReader::from_bytes(compressed.clone()),
                ParallelGzipReaderOptions {
                    parallelization: 2,
                    chunk_size: 128 * 1024,
                    resolved_cache_chunks: 1,
                    ..Default::default()
                },
                index,
            )
            .unwrap()
        };

        // The default (v3) export round-trips the fragments, so every
        // random-access decode is checked.
        let imported = GzipIndex::import(&index.export()).unwrap();
        assert_eq!(imported.checksum_map.len(), index.checksum_map.len());
        let mut verified = small_cache(imported);
        let mut buffer = vec![0u8; 4096];
        for offset in [900_000u64, 30_000, 1_200_000] {
            verified.seek(SeekFrom::Start(offset)).unwrap();
            verified.read_exact(&mut buffer).unwrap();
            assert_eq!(&buffer[..], &data[offset as usize..offset as usize + 4096]);
        }
        let statistics = verified.verification_statistics();
        assert!(statistics.index_chunks_verified > 0, "{statistics:?}");
        assert_eq!(statistics.index_chunks_unverified, 0, "{statistics:?}");

        // The same reads through a fragment-less v2 export complete but are
        // reported as unverified.
        let v2 = GzipIndex::import(&index.export_as(rgz_index::IndexFormat::V2)).unwrap();
        assert!(v2.checksum_map.is_empty());
        let mut unverified = small_cache(v2);
        unverified.seek(SeekFrom::Start(900_000)).unwrap();
        unverified.read_exact(&mut buffer).unwrap();
        assert_eq!(&buffer[..], &data[900_000..904_096]);
        let statistics = unverified.verification_statistics();
        assert_eq!(statistics.index_chunks_verified, 0, "{statistics:?}");
        assert!(statistics.index_chunks_unverified > 0, "{statistics:?}");
    }

    #[test]
    fn corrupted_input_never_yields_the_original_data_silently() {
        // With full verification (the default) any corruption that still
        // decodes must be caught by the CRC fold; corruption that breaks
        // decoding must error.  Either way: never a silent, seemingly
        // correct result, and never a panic or hang.
        let data = base64_random(500_000, 9);
        let pristine = GzipWriter::default().compress(&data);
        for flip_at in [
            pristine.len() / 3,
            pristine.len() / 2,
            2 * pristine.len() / 3,
        ] {
            let mut compressed = pristine.clone();
            compressed[flip_at] ^= 0xFF;
            let mut reader =
                ParallelGzipReader::from_bytes(compressed, options(2, 32 * 1024)).unwrap();
            match reader.decompress_all() {
                Err(_) => {}
                Ok(restored) => assert_ne!(restored, data, "corruption at byte {flip_at} vanished"),
            }
        }
    }

    #[test]
    fn corrupted_trailer_crc_is_reported_with_the_member_index() {
        let part_a = base64_random(400_000, 21);
        let part_b = silesia_like(500_000, 22);
        let writer = GzipWriter::default();
        let mut compressed = writer.compress_members(&[&part_a, &part_b]);
        // The second member's trailer CRC is in the file's final 8 bytes;
        // flip one bit of it so the stream still decodes but the fold must
        // flag member 1.
        let length = compressed.len();
        compressed[length - 6] ^= 0x10;
        let mut reader =
            ParallelGzipReader::from_bytes(compressed.clone(), options(4, 64 * 1024)).unwrap();
        match reader.decompress_all() {
            Err(CoreError::ChecksumMismatch { member, .. }) => assert_eq!(member, 1),
            other => panic!("expected a checksum mismatch for member 1, got {other:?}"),
        }

        // The same file decompresses fine with verification off.
        let mut unverified = ParallelGzipReader::from_bytes(
            compressed,
            options(4, 64 * 1024).with_verification(VerificationMode::Off),
        )
        .unwrap();
        let mut expected = part_a;
        expected.extend_from_slice(&part_b);
        assert_eq!(unverified.decompress_all().unwrap(), expected);
        assert_eq!(unverified.verification_statistics().members_verified, 0);
    }

    #[test]
    fn corrupted_isize_is_reported_even_when_the_crc_matches() {
        let data = base64_random(300_000, 23);
        let mut compressed = GzipWriter::default().compress(&data);
        // ISIZE occupies the final 4 bytes; the CRC before it stays intact.
        let length = compressed.len();
        compressed[length - 1] ^= 0x80;
        let mut reader = ParallelGzipReader::from_bytes(compressed, options(4, 64 * 1024)).unwrap();
        match reader.decompress_all() {
            Err(CoreError::MemberSizeMismatch { member, actual, .. }) => {
                assert_eq!(member, 0);
                assert_eq!(actual, data.len() as u64);
            }
            other => panic!("expected an ISIZE mismatch, got {other:?}"),
        }
    }

    #[test]
    fn verification_statistics_cover_the_whole_stream() {
        let parts = [
            base64_random(300_000, 24),
            silesia_like(400_000, 25),
            fastq_records(2_000, 26),
        ];
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let compressed = GzipWriter::default().compress_members(&refs);
        let mut expected = Vec::new();
        for part in &parts {
            expected.extend_from_slice(part);
        }
        let mut reader = ParallelGzipReader::from_bytes(compressed, options(4, 64 * 1024)).unwrap();
        assert_eq!(reader.decompress_all().unwrap(), expected);
        let statistics = reader.verification_statistics();
        assert_eq!(statistics.mode, VerificationMode::Full);
        assert_eq!(statistics.members_verified, 3);
        assert_eq!(statistics.bytes_verified, expected.len() as u64);
        assert_eq!(statistics.chunks_pending, 0);
        assert_eq!(statistics.stream_crc32, rgz_checksum::crc32(&expected));
        assert!(statistics.fragments_folded >= 3);
    }

    #[test]
    fn truncated_input_reports_an_error() {
        let data = base64_random(500_000, 12);
        let compressed = GzipWriter::default().compress(&data);
        let truncated = compressed[..compressed.len() / 2].to_vec();
        let mut reader = ParallelGzipReader::from_bytes(truncated, options(2, 32 * 1024)).unwrap();
        assert!(reader.decompress_all().is_err());
    }

    #[test]
    fn empty_payload_round_trips() {
        let compressed = GzipWriter::default().compress(b"");
        let mut reader =
            ParallelGzipReader::from_bytes(compressed, ParallelGzipReaderOptions::default())
                .unwrap();
        assert_eq!(reader.decompress_all().unwrap(), Vec::<u8>::new());
        assert_eq!(reader.uncompressed_size(), Some(0));
    }

    #[test]
    fn traced_parallel_decompress_records_pipeline_spans() {
        use rgz_trace::{EventKind, MetricsReport};

        let data = fastq_records(20_000, 70);
        let compressed = GzipWriter::default().compress(&data);
        let trace = Arc::new(TraceSink::new_enabled());
        let mut reader = ParallelGzipReader::from_bytes(
            compressed,
            options(4, 64 * 1024).with_trace(trace.clone()),
        )
        .unwrap();
        assert_eq!(reader.decompress_all().unwrap(), data);
        let statistics = reader.statistics();
        assert!(statistics.speculative_chunks_used > 0, "{statistics:?}");

        // Every pipeline stage the sequential pass exercises must show up,
        // and each track's spans must be recorded in completion order.
        let snapshot = trace.snapshot();
        let mut seen = std::collections::HashSet::new();
        for track in &snapshot {
            let mut last_end = 0u64;
            for event in &track.events {
                if let EventKind::Span {
                    stage,
                    start_us,
                    duration_us,
                    ..
                } = event.kind
                {
                    seen.insert(stage.name());
                    let end = start_us + duration_us;
                    assert!(
                        end >= last_end,
                        "span end times must be monotonic per track ({})",
                        track.name
                    );
                    last_end = end;
                }
            }
        }
        for stage in [
            Stage::BlockFind,
            Stage::DecodeTwoStage,
            Stage::DecodeOneStage,
            Stage::MarkerReplace,
            Stage::CrcFold,
            Stage::TaskWait,
        ] {
            assert!(
                seen.contains(stage.name()),
                "missing {} spans",
                stage.name()
            );
        }

        // The aggregated report must reconcile with the reader's own
        // statistics: both count the same commit/waste events.
        let report = MetricsReport::from_sink(&trace);
        assert!(report.wall_us > 0);
        assert_eq!(
            report.speculation.committed_chunks,
            statistics.speculative_chunks_used
        );
        assert_eq!(
            report.speculation.wasted_chunks,
            statistics.speculative_chunks_wasted
        );
        assert_eq!(
            report.speculation.wasted_bytes,
            statistics.speculative_bytes_wasted
        );
        assert!(report.speculation.submitted >= report.speculation.committed_chunks);

        // A disabled sink built the exact same way records nothing.
        let data = fastq_records(2_000, 70);
        let compressed = GzipWriter::default().compress(&data);
        let silent = Arc::new(TraceSink::new());
        let mut reader = ParallelGzipReader::from_bytes(
            compressed,
            options(2, 64 * 1024).with_trace(silent.clone()),
        )
        .unwrap();
        assert_eq!(reader.decompress_all().unwrap(), data);
        assert_eq!(silent.event_count(), 0);
    }

    #[test]
    fn dropping_a_reader_mid_read_keeps_recorded_events() {
        use rgz_trace::EventKind;

        let data = silesia_like(2 * 1024 * 1024, 71);
        let compressed = GzipWriter::default().compress(&data);
        let trace = Arc::new(TraceSink::new_enabled());
        let mut reader = ParallelGzipReader::from_bytes(
            compressed,
            options(4, 128 * 1024).with_trace(trace.clone()),
        )
        .unwrap();
        // Read just far enough to put speculative workers in flight, then
        // drop the reader while they may still be running.
        let mut buffer = vec![0u8; 256 * 1024];
        reader.read_exact(&mut buffer).unwrap();
        assert_eq!(&buffer[..], &data[..buffer.len()]);
        let recorded_before_drop = trace.event_count();
        assert!(recorded_before_drop > 0);
        drop(reader);
        // Workers record straight into the sink's per-thread tracks, so the
        // drop (which joins the pool) must not lose a single buffered event,
        // and every surviving span is complete.
        let snapshot = trace.snapshot();
        let total: usize = snapshot.iter().map(|t| t.events.len()).sum();
        assert!(
            total >= recorded_before_drop,
            "events lost on drop: {total} < {recorded_before_drop}"
        );
        for track in &snapshot {
            for event in &track.events {
                if let EventKind::Span {
                    start_us,
                    duration_us,
                    ..
                } = event.kind
                {
                    assert!(start_us.checked_add(duration_us).is_some());
                }
            }
        }
    }

    #[test]
    fn stale_and_mismatched_speculation_is_counted_as_waste() {
        use rgz_trace::MetricsReport;

        let data = base64_random(600_000, 72);
        let compressed = GzipWriter::default().compress(&data);
        let trace = Arc::new(TraceSink::new_enabled());
        let reader = ParallelGzipReader::from_bytes(
            compressed,
            options(2, 64 * 1024).with_trace(trace.clone()),
        )
        .unwrap();
        // Plant two impossible speculative results: offset 0 collides with
        // the first on-demand chunk (counted as a mismatch), offset 1 can
        // never be a chunk start (dropped as stale once the first chunk
        // commits past it).
        {
            let mut state = reader.state.lock();
            for found in [0u64, 1] {
                state.speculative_ready.insert(
                    found,
                    SpeculativeChunk {
                        requested_bit_offset: found,
                        found_bit_offset: found,
                        end_bit_offset: found + 8,
                        symbols: vec![0u16; 100],
                        block_count: 1,
                        reached_end_of_file: false,
                        member_ends: Vec::new(),
                    },
                );
            }
        }
        let mut reader = reader;
        assert_eq!(reader.decompress_all().unwrap(), data);
        let statistics = reader.statistics();
        assert!(statistics.speculative_chunks_wasted >= 2, "{statistics:?}");
        assert!(statistics.speculative_bytes_wasted >= 200, "{statistics:?}");
        assert!(statistics.speculative_mismatches >= 1, "{statistics:?}");
        let report = MetricsReport::from_sink(&trace);
        assert_eq!(
            report.speculation.wasted_chunks,
            statistics.speculative_chunks_wasted
        );
        assert_eq!(
            report.speculation.wasted_bytes,
            statistics.speculative_bytes_wasted
        );
        assert!(report.speculation.waste_ratio() > 0.0);
    }
}
