//! rapidgzip-rs core: parallel decompression of and random access into
//! arbitrary gzip files using a cache-and-prefetch architecture.
//!
//! This crate is the Rust reproduction of the system described in
//! *"Rapidgzip: Parallel Decompression and Seeking in Gzip Files Using Cache
//! Prefetching"* (Knespel & Brunst, HPDC '23).  The central type is
//! [`ParallelGzipReader`], which implements [`std::io::Read`] and
//! [`std::io::Seek`] over the decompressed contents of a gzip file while
//! decompressing chunks speculatively on a thread pool:
//!
//! * the compressed file is divided into fixed-size chunks (4 MiB by
//!   default);
//! * worker threads locate a DEFLATE block inside "their" chunk with the
//!   block finder and decode it without knowing the preceding 32 KiB window,
//!   emitting 16-bit marker symbols for unresolved back-references
//!   (two-stage decoding, §2.2);
//! * the orchestrating thread stitches chunks together in order, resolves
//!   each chunk's trailing window, dispatches full marker replacement to the
//!   pool and records a seek point per chunk;
//! * false positives from the block finder are harmless: their results are
//!   keyed by an offset nobody asks for and simply fall out of the caches
//!   (§3);
//! * once an index exists (built on the fly or imported), decompression and
//!   seeking skip the speculative machinery entirely and decode directly
//!   with the stored windows.
//!
//! ```
//! use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
//! use rgz_gzip::GzipWriter;
//! use std::io::Read;
//!
//! let data = b"an example payload".repeat(1000);
//! let compressed = GzipWriter::default().compress(&data);
//! let mut reader = ParallelGzipReader::from_bytes(
//!     compressed,
//!     ParallelGzipReaderOptions::default(),
//! ).unwrap();
//! let mut restored = Vec::new();
//! reader.read_to_end(&mut restored).unwrap();
//! assert_eq!(restored, data);
//! ```

mod chunk;
mod error;
mod metrics;
mod reader;
mod verify;

pub use chunk::{ChunkResult, SpeculativeChunk};
pub use error::CoreError;
pub use reader::{ParallelGzipReader, ParallelGzipReaderOptions, ReaderStatistics};
pub use verify::{ChunkFragment, VerificationMode, VerificationStatistics};

/// Default compressed chunk size (4 MiB, the paper's default).
pub const DEFAULT_CHUNK_SIZE: usize = 4 * 1024 * 1024;
