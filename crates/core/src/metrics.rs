//! Reader-level metric handles and the mapping between the live registry and
//! [`ReaderStatistics`](crate::reader::ReaderStatistics).
//!
//! Every counter the reader already tracks in `ReaderStatistics` has a
//! registry twin, incremented at the same program point, so a registry
//! snapshot and a `statistics()` call can never disagree.  The reverse
//! mapping lives in [`ReaderStatistics::from_metrics_snapshot`]; a
//! reconciliation test pins the two representations to each other.

use std::sync::Arc;

use rgz_metrics::{
    exponential_buckets, names, Counter, Histogram, MetricsRegistry, MetricsSnapshot,
};

use crate::reader::ReaderStatistics;

/// Latency buckets shared by every `rgz_stage_seconds` series: ~100 µs up to
/// ~26 s, factor-4 spacing.  All series of one family must share bounds.
fn stage_buckets() -> Vec<f64> {
    exponential_buckets(0.000_1, 4.0, 10)
}

/// Pre-resolved handles for every reader-owned series.
///
/// Handles are resolved once at reader construction; the hot paths touch
/// only sharded relaxed atomics (or a single relaxed load when recording is
/// disabled).  `disconnected()` gives inert handles for readers built
/// without a registry so call sites stay unconditional.
#[derive(Debug)]
pub(crate) struct ReaderMetrics {
    pub registry: Arc<MetricsRegistry>,
    pub chunks_speculative: Counter,
    pub chunks_on_demand: Counter,
    pub chunks_index: Counter,
    pub chunks_wasted: Counter,
    pub bytes_out: Counter,
    pub bytes_wasted: Counter,
    pub speculation_mismatches: Counter,
    pub prefetch_issued_speculative: Counter,
    pub prefetch_issued_index: Counter,
    pub prefetch_hits: Counter,
    pub verify_member: Counter,
    pub verify_index_verified: Counter,
    pub verify_index_unverified: Counter,
    pub stage_decode_two_stage: Histogram,
    pub stage_decode_one_stage: Histogram,
    pub stage_marker_replace: Histogram,
    pub stage_crc_fold: Histogram,
    pub stage_prefetch_decode: Histogram,
    pub stage_random_access: Histogram,
}

impl ReaderMetrics {
    /// Inert handles: every record call is a single relaxed load of a
    /// never-enabled gate.
    pub fn disconnected() -> Self {
        Self {
            registry: MetricsRegistry::shared_disabled(),
            chunks_speculative: Counter::disconnected(),
            chunks_on_demand: Counter::disconnected(),
            chunks_index: Counter::disconnected(),
            chunks_wasted: Counter::disconnected(),
            bytes_out: Counter::disconnected(),
            bytes_wasted: Counter::disconnected(),
            speculation_mismatches: Counter::disconnected(),
            prefetch_issued_speculative: Counter::disconnected(),
            prefetch_issued_index: Counter::disconnected(),
            prefetch_hits: Counter::disconnected(),
            verify_member: Counter::disconnected(),
            verify_index_verified: Counter::disconnected(),
            verify_index_unverified: Counter::disconnected(),
            stage_decode_two_stage: Histogram::disconnected(),
            stage_decode_one_stage: Histogram::disconnected(),
            stage_marker_replace: Histogram::disconnected(),
            stage_crc_fold: Histogram::disconnected(),
            stage_prefetch_decode: Histogram::disconnected(),
            stage_random_access: Histogram::disconnected(),
        }
    }

    /// Register (or re-resolve) every reader family on `registry`.
    pub fn register(registry: &Arc<MetricsRegistry>) -> Self {
        let stage = |name: &str| {
            registry.histogram_with_labels(
                names::STAGE_SECONDS,
                "Reader pipeline stage latency in seconds",
                &stage_buckets(),
                &[("stage", name)],
            )
        };
        let decoded = |path: &str| {
            registry.counter_with_labels(
                names::CHUNKS_DECODED,
                "Chunks whose bytes were committed to the output, by decode path",
                &[("path", path)],
            )
        };
        let prefetch = |kind: &str| {
            registry.counter_with_labels(
                names::PREFETCH_ISSUED,
                "Prefetch tasks submitted to the pool, by kind",
                &[("kind", kind)],
            )
        };
        let verify = |outcome: &str| {
            registry.counter_with_labels(
                names::VERIFICATION,
                "Chunk/member verification outcomes",
                &[("outcome", outcome)],
            )
        };
        Self {
            registry: Arc::clone(registry),
            chunks_speculative: decoded("speculative"),
            chunks_on_demand: decoded("on_demand"),
            chunks_index: decoded("index"),
            chunks_wasted: registry.counter(
                names::CHUNKS_WASTED,
                "Speculatively decoded chunks discarded without use",
            ),
            bytes_out: registry.counter(
                names::BYTES_OUT,
                "Decompressed bytes committed to the output",
            ),
            bytes_wasted: registry.counter(
                names::BYTES_WASTED,
                "Decompressed bytes discarded with wasted chunks",
            ),
            speculation_mismatches: registry.counter(
                names::SPECULATION_MISMATCHES,
                "Speculative chunks rejected because the block boundary guess was wrong",
            ),
            prefetch_issued_speculative: prefetch("speculative"),
            prefetch_issued_index: prefetch("index"),
            prefetch_hits: registry.counter(
                names::PREFETCH_HITS,
                "Index-path chunk requests served from a completed prefetch",
            ),
            verify_member: verify("member_verified"),
            verify_index_verified: verify("index_verified"),
            verify_index_unverified: verify("index_unverified"),
            stage_decode_two_stage: stage("decode_two_stage"),
            stage_decode_one_stage: stage("decode_one_stage"),
            stage_marker_replace: stage("marker_replace"),
            stage_crc_fold: stage("crc_fold"),
            stage_prefetch_decode: stage("prefetch_decode"),
            stage_random_access: stage("random_access"),
        }
    }
}

impl ReaderStatistics {
    /// Rebuild the reader-owned counters from a registry snapshot.
    ///
    /// The inverse of the instrumentation: every field is read back from the
    /// series the reader increments, so for a quiescent reader this equals
    /// [`ParallelGzipReader::statistics`](crate::ParallelGzipReader::statistics)
    /// exactly (the reconciliation tests pin this).  Pool gauges are sampled
    /// live and may lag while tasks are still in flight.
    pub fn from_metrics_snapshot(snapshot: &MetricsSnapshot) -> Self {
        let counter =
            |name: &str, labels: &[(&str, &str)]| snapshot.counter(name, labels).unwrap_or(0);
        let gauge = |name: &str| snapshot.gauge(name, &[]).unwrap_or(0).max(0) as u64;
        Self {
            speculative_chunks_used: counter(names::CHUNKS_DECODED, &[("path", "speculative")]),
            on_demand_chunks: counter(names::CHUNKS_DECODED, &[("path", "on_demand")]),
            index_chunks: counter(names::CHUNKS_DECODED, &[("path", "index")]),
            speculative_mismatches: counter(names::SPECULATION_MISMATCHES, &[]),
            prefetches_issued: counter(names::PREFETCH_ISSUED, &[("kind", "speculative")]),
            index_prefetches_issued: counter(names::PREFETCH_ISSUED, &[("kind", "index")]),
            index_prefetch_hits: counter(names::PREFETCH_HITS, &[]),
            index_chunks_verified: counter(names::VERIFICATION, &[("outcome", "index_verified")]),
            index_chunks_unverified: counter(
                names::VERIFICATION,
                &[("outcome", "index_unverified")],
            ),
            speculative_chunks_wasted: counter(names::CHUNKS_WASTED, &[]),
            speculative_bytes_wasted: counter(names::BYTES_WASTED, &[]),
            pool_queue_depth: gauge(names::POOL_QUEUE_DEPTH),
            pool_tasks_inflight: gauge(names::POOL_TASKS_INFLIGHT),
            pool_tasks_submitted: counter(names::POOL_TASKS_TOTAL, &[]),
        }
    }
}
