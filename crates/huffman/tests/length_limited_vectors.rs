//! Deterministic construction vectors for the package-merge length-limited
//! Huffman code builder.

use rgz_huffman::{classify_code_lengths, compute_code_lengths, CodeCompleteness};

/// Kraft sum scaled by 2^15: a complete code sums to exactly 1 << 15.
fn kraft_sum_scaled(lengths: &[u8]) -> u64 {
    lengths
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| 1u64 << (15 - l as u32))
        .sum()
}

#[test]
fn fibonacci_frequencies_give_a_complete_optimal_code() {
    // Fibonacci weights maximally skew an unlimited Huffman code; with limit
    // 15 and 7 symbols the optimum is still unconstrained.
    let frequencies = [1u32, 1, 2, 3, 5, 8, 13];
    let lengths = compute_code_lengths(&frequencies, 15).unwrap();
    assert_eq!(classify_code_lengths(&lengths), CodeCompleteness::Complete);
    assert_eq!(kraft_sum_scaled(&lengths), 1 << 15);
    // Unconstrained Huffman cost for these weights is 78 bits; package-merge
    // must match it when the limit does not bind.
    let cost: u64 = frequencies
        .iter()
        .zip(&lengths)
        .map(|(&f, &l)| f as u64 * l as u64)
        .sum();
    assert_eq!(cost, 78);
}

#[test]
fn binding_limit_still_produces_a_complete_code() {
    // With limit 3, the skewed weights are forced towards a flatter code.
    let frequencies = [1u32, 1, 2, 3, 5, 8, 13];
    let lengths = compute_code_lengths(&frequencies, 3).unwrap();
    assert!(lengths.iter().all(|&l| l > 0 && l <= 3));
    assert_eq!(classify_code_lengths(&lengths), CodeCompleteness::Complete);
    // The only complete 7-symbol code within 3 bits is one 2-bit and six
    // 3-bit codes; giving the 2-bit code to the heaviest symbol costs
    // 13*2 + (8+5+3+2+1+1)*3 = 86 bits.
    let cost: u64 = frequencies
        .iter()
        .zip(&lengths)
        .map(|(&f, &l)| f as u64 * l as u64)
        .sum();
    assert_eq!(cost, 86);
}

#[test]
fn more_frequent_symbols_never_get_longer_codes() {
    let frequencies = [40u32, 1, 1, 30, 1, 20, 1, 10];
    let lengths = compute_code_lengths(&frequencies, 15).unwrap();
    for (i, &fi) in frequencies.iter().enumerate() {
        for (j, &fj) in frequencies.iter().enumerate() {
            if fi > fj {
                assert!(
                    lengths[i] <= lengths[j],
                    "freq {fi} got length {} but freq {fj} got {}",
                    lengths[i],
                    lengths[j]
                );
            }
        }
    }
}

#[test]
fn uniform_power_of_two_alphabet_gets_a_flat_code() {
    let frequencies = [7u32; 16];
    let lengths = compute_code_lengths(&frequencies, 15).unwrap();
    assert!(lengths.iter().all(|&l| l == 4), "lengths: {lengths:?}");
}

#[test]
fn zero_frequency_symbols_get_no_code() {
    let frequencies = [5u32, 0, 3, 0, 2];
    let lengths = compute_code_lengths(&frequencies, 15).unwrap();
    assert_eq!(lengths[1], 0);
    assert_eq!(lengths[3], 0);
    assert!(lengths[0] > 0 && lengths[2] > 0 && lengths[4] > 0);
    assert_eq!(classify_code_lengths(&lengths), CodeCompleteness::Complete);
}

#[test]
fn degenerate_alphabets_follow_deflate_conventions() {
    // No used symbols: all-zero lengths.
    assert_eq!(compute_code_lengths(&[0, 0, 0], 15).unwrap(), vec![0, 0, 0]);
    // A single used symbol still gets one bit, not zero.
    assert_eq!(compute_code_lengths(&[0, 9, 0], 15).unwrap(), vec![0, 1, 0]);
}

#[test]
fn alphabet_too_large_for_the_limit_is_rejected() {
    // 5 used symbols cannot fit in 2-bit codes (max 4 codewords).
    assert!(compute_code_lengths(&[1u32; 5], 2).is_err());
    // But exactly 4 symbols fit, with a flat 2-bit code.
    let lengths = compute_code_lengths(&[1u32; 4], 2).unwrap();
    assert_eq!(lengths, vec![2, 2, 2, 2]);
}
