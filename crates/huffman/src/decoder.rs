//! Table-driven canonical Huffman decoder.

use rgz_bitio::{reverse_bits, BitReader};

use crate::{
    canonical_codes, classify_code_lengths, CodeCompleteness, HuffmanError, MAX_CODE_LENGTH,
};

/// A single-level lookup-table decoder for canonical Huffman codes.
///
/// The table is indexed with `max_length` bits peeked LSB-first from the
/// stream; each entry stores the decoded symbol and its code length so that
/// exactly one peek and one consume are needed per symbol. This mirrors the
/// decoder the paper describes as "always requesting the maximum Huffman code
/// length, which is 15 bits for Deflate" (§4.1).
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// Entry layout: low 16 bits = symbol, bits 16..24 = code length
    /// (0 means the bit pattern is not a valid code).
    table: Vec<u32>,
    max_length: u32,
    symbol_count: u16,
}

impl HuffmanDecoder {
    /// Builds a decoder from per-symbol code lengths (0 = symbol unused).
    ///
    /// The code must be *complete*, or the single-symbol incomplete code that
    /// DEFLATE explicitly allows for the distance alphabet.
    pub fn from_code_lengths(lengths: &[u8]) -> Result<Self, HuffmanError> {
        let max_length = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max_length == 0 {
            return Err(HuffmanError::EmptyAlphabet);
        }
        if max_length > MAX_CODE_LENGTH {
            return Err(HuffmanError::LengthTooLarge {
                length: max_length as u8,
                maximum: MAX_CODE_LENGTH,
            });
        }
        let used = lengths.iter().filter(|&&l| l > 0).count();
        match classify_code_lengths(lengths) {
            CodeCompleteness::Complete => {}
            CodeCompleteness::Incomplete if used == 1 => {}
            CodeCompleteness::Incomplete => return Err(HuffmanError::Incomplete),
            CodeCompleteness::Oversubscribed => return Err(HuffmanError::Oversubscribed),
            CodeCompleteness::Empty => return Err(HuffmanError::EmptyAlphabet),
        }

        let codes = canonical_codes(lengths);
        let table_size = 1usize << max_length;
        let mut table = vec![0u32; table_size];
        for (symbol, &(code, length)) in codes.iter().enumerate() {
            if length == 0 {
                continue;
            }
            let length = length as u32;
            // The code is defined MSB-first but the stream delivers its bits
            // LSB-first, so the low `length` bits of the peeked value are the
            // reversed code; every choice of the remaining high bits maps to
            // the same symbol.
            let reversed = reverse_bits(code, length) as usize;
            let step = 1usize << length;
            let entry = (length << 16) | symbol as u32;
            let mut index = reversed;
            while index < table_size {
                table[index] = entry;
                index += step;
            }
        }
        Ok(Self {
            table,
            max_length,
            symbol_count: lengths.len() as u16,
        })
    }

    /// The longest code length in this code; also the number of bits peeked
    /// per decode.
    #[inline]
    pub fn max_code_length(&self) -> u32 {
        self.max_length
    }

    /// Number of symbols in the alphabet this decoder was built for.
    #[inline]
    pub fn alphabet_size(&self) -> u16 {
        self.symbol_count
    }

    /// Decodes one symbol from `reader`.
    #[inline]
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, HuffmanError> {
        let peeked = reader.peek(self.max_length) as usize;
        let entry = self.table[peeked];
        let length = entry >> 16;
        if length == 0 {
            return Err(HuffmanError::InvalidCode {
                position: reader.position(),
            });
        }
        if (length as u64) > reader.remaining_bits() {
            return Err(HuffmanError::UnexpectedEof);
        }
        reader.consume(length)?;
        Ok((entry & 0xFFFF) as u16)
    }

    /// Decodes one symbol from bits already buffered in `reader`, skipping
    /// the refill and end-of-input checks of [`HuffmanDecoder::decode`].
    ///
    /// Contract: the caller has verified
    /// `reader.cached_bits() >= self.max_code_length()`, which both makes the
    /// peeked index complete (no zero-padding) and guarantees the consumed
    /// code fits the buffer.  Errors are identical to
    /// [`HuffmanDecoder::decode`] under that precondition.
    #[inline]
    pub fn decode_cached(&self, reader: &mut BitReader<'_>) -> Result<u16, HuffmanError> {
        debug_assert!(reader.cached_bits() >= self.max_length);
        let peeked = reader.peek_cached(self.max_length) as usize;
        let entry = self.table[peeked];
        let length = entry >> 16;
        if length == 0 {
            return Err(HuffmanError::InvalidCode {
                position: reader.position(),
            });
        }
        reader.consume_cached(length);
        Ok((entry & 0xFFFF) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HuffmanEncoder;
    use proptest::prelude::*;
    use rgz_bitio::BitWriter;

    fn round_trip(lengths: &[u8], symbols: &[u16]) -> Vec<u16> {
        let encoder = HuffmanEncoder::from_code_lengths(lengths).unwrap();
        let mut writer = BitWriter::new();
        for &symbol in symbols {
            encoder.encode(&mut writer, symbol).unwrap();
        }
        let bytes = writer.finish();
        let decoder = HuffmanDecoder::from_code_lengths(lengths).unwrap();
        let mut reader = BitReader::new(&bytes);
        symbols
            .iter()
            .map(|_| decoder.decode(&mut reader).unwrap())
            .collect()
    }

    #[test]
    fn decode_rfc_example_code() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let symbols = [5u16, 0, 7, 6, 5, 1, 2, 3, 4, 5];
        assert_eq!(round_trip(&lengths, &symbols), symbols);
    }

    #[test]
    fn rejects_invalid_codes() {
        assert!(matches!(
            HuffmanDecoder::from_code_lengths(&[1, 1, 1]),
            Err(HuffmanError::Oversubscribed)
        ));
        assert!(matches!(
            HuffmanDecoder::from_code_lengths(&[2, 2, 2]),
            Err(HuffmanError::Incomplete)
        ));
        assert!(matches!(
            HuffmanDecoder::from_code_lengths(&[0, 0]),
            Err(HuffmanError::EmptyAlphabet)
        ));
    }

    #[test]
    fn single_symbol_code_is_allowed() {
        // DEFLATE: "If only one distance code is used, it is encoded using
        // one bit" — one length-1 code, incomplete but legal.
        let decoder = HuffmanDecoder::from_code_lengths(&[0, 1, 0]).unwrap();
        let mut writer = BitWriter::new();
        writer.write_bits(0, 1);
        writer.write_bits(0, 1);
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        assert_eq!(decoder.decode(&mut reader).unwrap(), 1);
        assert_eq!(decoder.decode(&mut reader).unwrap(), 1);
    }

    #[test]
    fn invalid_bit_pattern_reports_position() {
        // Single-symbol code: the pattern `1` is not a valid code.
        let decoder = HuffmanDecoder::from_code_lengths(&[1, 0]).unwrap();
        let bytes = [0b0000_0001u8];
        let mut reader = BitReader::new(&bytes);
        match decoder.decode(&mut reader) {
            Err(HuffmanError::InvalidCode { position }) => assert_eq!(position, 0),
            other => panic!("expected invalid code, got {other:?}"),
        }
    }

    #[test]
    fn eof_inside_code_is_detected() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let decoder = HuffmanDecoder::from_code_lengths(&lengths).unwrap();
        // Write only 2 bits of a 3-bit code.
        let bytes: Vec<u8> = vec![];
        let mut reader = BitReader::new(&bytes);
        assert!(matches!(
            decoder.decode(&mut reader),
            Err(HuffmanError::InvalidCode { .. }) | Err(HuffmanError::UnexpectedEof)
        ));
    }

    #[test]
    fn fixed_literal_code_decodes_all_symbols() {
        let mut lengths = vec![8u8; 144];
        lengths.extend(vec![9u8; 112]);
        lengths.extend(vec![7u8; 24]);
        lengths.extend(vec![8u8; 8]);
        let symbols: Vec<u16> = (0..288u16).collect();
        assert_eq!(round_trip(&lengths, &symbols), symbols);
    }

    proptest! {
        #[test]
        fn random_complete_codes_round_trip(
            seed_lengths in proptest::collection::vec(1u32..2000, 2..60),
            picks in proptest::collection::vec(any::<u16>(), 1..200),
        ) {
            // Build a complete code from random frequencies via package-merge.
            let lengths = crate::compute_code_lengths(&seed_lengths, MAX_CODE_LENGTH).unwrap();
            prop_assume!(lengths.iter().filter(|&&l| l > 0).count() >= 2);
            let used: Vec<u16> = lengths.iter().enumerate()
                .filter(|(_, &l)| l > 0)
                .map(|(i, _)| i as u16)
                .collect();
            let symbols: Vec<u16> = picks.iter().map(|&p| used[p as usize % used.len()]).collect();
            prop_assert_eq!(round_trip(&lengths, &symbols), symbols);
        }
    }
}
