//! Canonical Huffman coding as used by DEFLATE (RFC 1951).
//!
//! Four pieces live here:
//!
//! * [`HuffmanDecoder`] — a table-driven decoder built from a list of code
//!   lengths, the representation DEFLATE stores in Dynamic Block headers.
//! * [`MultiSymbolDecoder`] — the ISA-L / zlib-ng style fast path: a
//!   fixed-width lookup table whose entries resolve up to two symbols per
//!   hit (two literals, or a literal plus a length symbol with its base and
//!   extra-bit count cached), falling back to [`HuffmanDecoder`] for
//!   over-long codes.
//! * [`HuffmanEncoder`] — the canonical-code encoder used by the DEFLATE
//!   compressor in `rgz-deflate`.
//! * [`compute_code_lengths`] — length-limited code construction
//!   (package-merge), needed to build Dynamic Blocks.
//!
//! The block finder additionally needs to classify candidate code-length
//! vectors as *valid and efficient* (complete), *incomplete* (unused leaves)
//! or *over-subscribed*; [`classify_code_lengths`] implements exactly the
//! check illustrated in Figure 6 of the paper.

mod decoder;
mod encoder;
mod length_limited;
mod multi;

pub use decoder::HuffmanDecoder;
pub use encoder::HuffmanEncoder;
pub use length_limited::compute_code_lengths;
pub use multi::{
    length_symbol_info, FastEntry, FastEntryKind, MultiSymbolDecoder, FAST_TABLE_BITS, LENGTH_BASE,
    LENGTH_EXTRA_BITS, MAX_LENGTH_EXTRA_BITS,
};

/// Maximum code length permitted for the DEFLATE literal/length and distance
/// alphabets.
pub const MAX_CODE_LENGTH: u32 = 15;
/// Maximum code length permitted for the DEFLATE precode (code-length code).
pub const MAX_PRECODE_LENGTH: u32 = 7;

/// Result of checking a code-length vector against the Kraft inequality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeCompleteness {
    /// The code uses every leaf of the binary tree exactly once
    /// ("valid and efficient" in the paper's terminology).
    Complete,
    /// Some leaves are unused; the code is decodable but not efficient.
    /// DEFLATE only permits this for a single-symbol code.
    Incomplete,
    /// More symbols than the tree can hold; the code is not decodable.
    Oversubscribed,
    /// No symbol has a non-zero length.
    Empty,
}

/// Errors raised while building or using Huffman codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffmanError {
    /// The code-length vector violates the Kraft inequality.
    Oversubscribed,
    /// The code-length vector leaves unused leaves and is not the special
    /// single-symbol case DEFLATE allows.
    Incomplete,
    /// No symbols at all were assigned a code.
    EmptyAlphabet,
    /// A code length exceeded the permitted maximum.
    LengthTooLarge { length: u8, maximum: u32 },
    /// The decoder encountered a bit pattern that maps to no symbol.
    InvalidCode { position: u64 },
    /// The encoder was asked to emit a symbol that has no code.
    SymbolWithoutCode { symbol: u16 },
    /// The underlying bit stream ended prematurely.
    UnexpectedEof,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::Oversubscribed => write!(f, "over-subscribed Huffman code"),
            HuffmanError::Incomplete => write!(f, "incomplete (inefficient) Huffman code"),
            HuffmanError::EmptyAlphabet => write!(f, "no symbols with non-zero code length"),
            HuffmanError::LengthTooLarge { length, maximum } => {
                write!(f, "code length {length} exceeds maximum {maximum}")
            }
            HuffmanError::InvalidCode { position } => {
                write!(f, "invalid Huffman code in bit stream at bit {position}")
            }
            HuffmanError::SymbolWithoutCode { symbol } => {
                write!(f, "symbol {symbol} has no assigned code")
            }
            HuffmanError::UnexpectedEof => write!(f, "bit stream ended inside a Huffman code"),
        }
    }
}

impl std::error::Error for HuffmanError {}

impl From<rgz_bitio::BitIoError> for HuffmanError {
    fn from(_: rgz_bitio::BitIoError) -> Self {
        HuffmanError::UnexpectedEof
    }
}

/// Classifies a code-length vector (lengths of zero mean "symbol unused").
///
/// This is the same check the Dynamic Block finder performs on the Precode,
/// Distance and Literal alphabets: a candidate block is rejected unless every
/// used alphabet forms a *complete* code (or the single-symbol special case).
pub fn classify_code_lengths(lengths: &[u8]) -> CodeCompleteness {
    let mut used = 0u32;
    // Kraft sum scaled by 2^MAX_CODE_LENGTH so it stays integral.
    let mut kraft = 0u64;
    for &length in lengths {
        if length == 0 {
            continue;
        }
        used += 1;
        kraft += 1u64 << (MAX_CODE_LENGTH.saturating_sub(length as u32));
    }
    if used == 0 {
        return CodeCompleteness::Empty;
    }
    let full = 1u64 << MAX_CODE_LENGTH;
    if kraft > full {
        CodeCompleteness::Oversubscribed
    } else if kraft < full {
        CodeCompleteness::Incomplete
    } else {
        CodeCompleteness::Complete
    }
}

/// Computes the canonical code values for a code-length vector.
///
/// Returns `codes[symbol] = (code, length)` with `length == 0` for unused
/// symbols. The caller is responsible for having validated the lengths.
pub fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let max_length = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut length_counts = vec![0u32; max_length + 1];
    for &length in lengths {
        if length > 0 {
            length_counts[length as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; max_length + 2];
    let mut code = 0u32;
    for bits in 1..=max_length {
        code = (code + length_counts[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&length| {
            if length == 0 {
                (0, 0)
            } else {
                let assigned = next_code[length as usize];
                next_code[length as usize] += 1;
                (assigned, length)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matches_figure_6() {
        // Figure 6 of the paper: lengths (1,1,1) over-subscribed,
        // (2,2,2) incomplete, (2,2,1) complete.
        assert_eq!(
            classify_code_lengths(&[1, 1, 1]),
            CodeCompleteness::Oversubscribed
        );
        assert_eq!(
            classify_code_lengths(&[2, 2, 2]),
            CodeCompleteness::Incomplete
        );
        assert_eq!(
            classify_code_lengths(&[2, 2, 1]),
            CodeCompleteness::Complete
        );
    }

    #[test]
    fn classify_edge_cases() {
        assert_eq!(classify_code_lengths(&[]), CodeCompleteness::Empty);
        assert_eq!(classify_code_lengths(&[0, 0, 0]), CodeCompleteness::Empty);
        assert_eq!(classify_code_lengths(&[1, 1]), CodeCompleteness::Complete);
        assert_eq!(classify_code_lengths(&[1]), CodeCompleteness::Incomplete);
        // Fixed literal code from RFC 1951 is complete.
        let mut fixed = vec![8u8; 144];
        fixed.extend(vec![9u8; 112]);
        fixed.extend(vec![7u8; 24]);
        fixed.extend(vec![8u8; 8]);
        assert_eq!(classify_code_lengths(&fixed), CodeCompleteness::Complete);
    }

    #[test]
    fn canonical_codes_rfc_example() {
        // RFC 1951 section 3.2.2 example: alphabet ABCDEFGH with lengths
        // (3, 3, 3, 3, 3, 2, 4, 4) yields these codes.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        let expected = [
            (0b010, 3),
            (0b011, 3),
            (0b100, 3),
            (0b101, 3),
            (0b110, 3),
            (0b00, 2),
            (0b1110, 4),
            (0b1111, 4),
        ];
        for (symbol, &(code, length)) in expected.iter().enumerate() {
            assert_eq!(codes[symbol], (code, length as u8), "symbol {symbol}");
        }
    }

    #[test]
    fn canonical_codes_skip_unused_symbols() {
        let lengths = [0u8, 2, 0, 2, 2, 2];
        let codes = canonical_codes(&lengths);
        assert_eq!(codes[0], (0, 0));
        assert_eq!(codes[2], (0, 0));
        let used: Vec<u32> = codes
            .iter()
            .filter(|(_, l)| *l > 0)
            .map(|(c, _)| *c)
            .collect();
        assert_eq!(used, vec![0b00, 0b01, 0b10, 0b11]);
    }
}
