//! Length-limited Huffman code construction via the package-merge algorithm.
//!
//! The DEFLATE compressor needs code lengths bounded by 15 (literal/length
//! and distance alphabets) or 7 (precode).  Package-merge produces an optimal
//! set of lengths under such a bound, unlike plain Huffman construction which
//! can exceed it for skewed frequency distributions.

use crate::HuffmanError;

/// Computes length-limited Huffman code lengths for the given symbol
/// frequencies.
///
/// * Symbols with frequency zero receive length zero (no code).
/// * If no symbol has a non-zero frequency, all lengths are zero.
/// * If exactly one symbol is used it receives length 1 (DEFLATE encodes
///   single-symbol alphabets with one bit, not zero bits).
/// * Otherwise the returned lengths form a complete code with
///   `length <= max_length` for every symbol, minimizing the weighted length.
///
/// Returns an error only if the alphabet cannot be represented within
/// `max_length` bits (i.e. more than `2^max_length` used symbols).
pub fn compute_code_lengths(frequencies: &[u32], max_length: u32) -> Result<Vec<u8>, HuffmanError> {
    let used: Vec<usize> = frequencies
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, _)| i)
        .collect();
    let mut lengths = vec![0u8; frequencies.len()];
    match used.len() {
        0 => return Ok(lengths),
        1 => {
            lengths[used[0]] = 1;
            return Ok(lengths);
        }
        n if (n as u64) > (1u64 << max_length) => {
            return Err(HuffmanError::LengthTooLarge {
                length: max_length as u8 + 1,
                maximum: max_length,
            })
        }
        _ => {}
    }

    // Package-merge. An item is either an original leaf or a package of two
    // items from the previous level; we only need to know, per item, how many
    // times each *leaf* occurs inside it, which we track as a count vector
    // indexed by position in `used`.
    #[derive(Clone)]
    struct Item {
        weight: u64,
        /// Number of occurrences of each used symbol inside this item.
        leaf_counts: Vec<u16>,
    }

    let leaves: Vec<Item> = {
        let mut leaves: Vec<Item> = used
            .iter()
            .enumerate()
            .map(|(slot, &symbol)| {
                let mut counts = vec![0u16; used.len()];
                counts[slot] = 1;
                Item {
                    weight: frequencies[symbol] as u64,
                    leaf_counts: counts,
                }
            })
            .collect();
        leaves.sort_by_key(|item| item.weight);
        leaves
    };

    let mut current = leaves.clone();
    for _ in 1..max_length {
        // Package adjacent pairs of the current list.
        let mut packages = Vec::with_capacity(current.len() / 2);
        let mut iter = current.chunks_exact(2);
        for pair in &mut iter {
            let mut counts = pair[0].leaf_counts.clone();
            for (count, other) in counts.iter_mut().zip(&pair[1].leaf_counts) {
                *count += other;
            }
            packages.push(Item {
                weight: pair[0].weight + pair[1].weight,
                leaf_counts: counts,
            });
        }
        // Merge the original leaves with the packages, keeping the list sorted.
        let mut merged = Vec::with_capacity(leaves.len() + packages.len());
        let (mut i, mut j) = (0, 0);
        while i < leaves.len() || j < packages.len() {
            let take_leaf = match (leaves.get(i), packages.get(j)) {
                (Some(leaf), Some(package)) => leaf.weight <= package.weight,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_leaf {
                merged.push(leaves[i].clone());
                i += 1;
            } else {
                merged.push(packages[j].clone());
                j += 1;
            }
        }
        current = merged;
    }

    // The first 2n-2 items of the final list define the code: each occurrence
    // of a leaf adds one to that symbol's code length.
    let selected = 2 * used.len() - 2;
    let mut per_slot_lengths = vec![0u16; used.len()];
    for item in current.iter().take(selected) {
        for (slot, &count) in item.leaf_counts.iter().enumerate() {
            per_slot_lengths[slot] += count;
        }
    }
    for (slot, &symbol) in used.iter().enumerate() {
        debug_assert!(per_slot_lengths[slot] >= 1);
        debug_assert!(per_slot_lengths[slot] as u32 <= max_length);
        lengths[symbol] = per_slot_lengths[slot] as u8;
    }
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify_code_lengths, CodeCompleteness};
    use proptest::prelude::*;

    fn weighted_length(frequencies: &[u32], lengths: &[u8]) -> u64 {
        frequencies
            .iter()
            .zip(lengths)
            .map(|(&f, &l)| f as u64 * l as u64)
            .sum()
    }

    #[test]
    fn empty_and_single_symbol_cases() {
        assert_eq!(compute_code_lengths(&[0, 0, 0], 15).unwrap(), vec![0, 0, 0]);
        assert_eq!(compute_code_lengths(&[0, 7, 0], 15).unwrap(), vec![0, 1, 0]);
        assert_eq!(compute_code_lengths(&[], 15).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        assert_eq!(compute_code_lengths(&[1000, 1], 15).unwrap(), vec![1, 1]);
    }

    #[test]
    fn uniform_frequencies_give_balanced_code() {
        let lengths = compute_code_lengths(&[5; 8], 15).unwrap();
        assert_eq!(lengths, vec![3; 8]);
    }

    #[test]
    fn skewed_frequencies_respect_the_limit() {
        // Fibonacci-like frequencies force long codes in unbounded Huffman.
        let frequencies: Vec<u32> = (0..20).map(|i| 1u32 << i.min(20)).collect();
        for limit in [5u32, 7, 15] {
            let lengths = compute_code_lengths(&frequencies, limit).unwrap();
            assert!(lengths.iter().all(|&l| l as u32 <= limit && l > 0));
            assert_eq!(classify_code_lengths(&lengths), CodeCompleteness::Complete);
        }
    }

    #[test]
    fn matches_unbounded_huffman_when_limit_is_loose() {
        // Reference: classic Huffman via repeated pairing of the two lightest
        // weights (computed here with a simple O(n^2) loop).
        let frequencies = [45u32, 13, 12, 16, 9, 5];
        let lengths = compute_code_lengths(&frequencies, 15).unwrap();
        // The canonical optimum for this distribution costs 224 weighted bits.
        assert_eq!(weighted_length(&frequencies, &lengths), 224);
        assert_eq!(classify_code_lengths(&lengths), CodeCompleteness::Complete);
    }

    #[test]
    fn too_many_symbols_for_the_limit_is_an_error() {
        let frequencies = vec![1u32; 5];
        assert!(compute_code_lengths(&frequencies, 2).is_err());
        assert!(compute_code_lengths(&frequencies, 3).is_ok());
    }

    proptest! {
        #[test]
        fn always_produces_complete_bounded_codes(
            frequencies in proptest::collection::vec(0u32..10_000, 0..80),
            limit in 8u32..=15,
        ) {
            let lengths = compute_code_lengths(&frequencies, limit).unwrap();
            prop_assert_eq!(lengths.len(), frequencies.len());
            for (frequency, length) in frequencies.iter().zip(&lengths) {
                prop_assert_eq!(*frequency == 0, *length == 0);
                prop_assert!((*length as u32) <= limit);
            }
            let used = frequencies.iter().filter(|&&f| f > 0).count();
            match used {
                0 => {}
                1 => prop_assert_eq!(classify_code_lengths(&lengths), CodeCompleteness::Incomplete),
                _ => prop_assert_eq!(classify_code_lengths(&lengths), CodeCompleteness::Complete),
            }
        }

        #[test]
        fn cost_never_beats_entropy_bound(
            frequencies in proptest::collection::vec(1u32..1000, 2..40),
        ) {
            let lengths = compute_code_lengths(&frequencies, 15).unwrap();
            let total: f64 = frequencies.iter().map(|&f| f as f64).sum();
            let entropy: f64 = frequencies.iter()
                .map(|&f| {
                    let p = f as f64 / total;
                    -p * p.log2()
                })
                .sum();
            let cost = weighted_length(&frequencies, &lengths) as f64;
            // Shannon: optimal expected length is within [H, H + 1).
            prop_assert!(cost >= entropy * total - 1e-6);
            prop_assert!(cost <= (entropy + 1.0) * total + 1e-6);
        }
    }
}
