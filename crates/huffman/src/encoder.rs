//! Canonical Huffman encoder used by the DEFLATE compressor.

use rgz_bitio::BitWriter;

use crate::{
    canonical_codes, classify_code_lengths, CodeCompleteness, HuffmanError, MAX_CODE_LENGTH,
};

/// Encodes symbols with a canonical Huffman code defined by code lengths.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    /// `codes[symbol] = (code, length)`; length 0 means "no code assigned".
    codes: Vec<(u32, u8)>,
}

impl HuffmanEncoder {
    /// Builds an encoder from per-symbol code lengths (0 = symbol unused).
    ///
    /// Unlike the decoder, incomplete codes are accepted as long as they are
    /// not over-subscribed: the compressor only ever *emits* symbols that have
    /// codes, and DEFLATE's single-distance-code special case is incomplete by
    /// definition.
    pub fn from_code_lengths(lengths: &[u8]) -> Result<Self, HuffmanError> {
        let max_length = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max_length == 0 {
            return Err(HuffmanError::EmptyAlphabet);
        }
        if max_length > MAX_CODE_LENGTH {
            return Err(HuffmanError::LengthTooLarge {
                length: max_length as u8,
                maximum: MAX_CODE_LENGTH,
            });
        }
        if classify_code_lengths(lengths) == CodeCompleteness::Oversubscribed {
            return Err(HuffmanError::Oversubscribed);
        }
        Ok(Self {
            codes: canonical_codes(lengths),
        })
    }

    /// Writes the code for `symbol` to `writer`.
    #[inline]
    pub fn encode(&self, writer: &mut BitWriter, symbol: u16) -> Result<(), HuffmanError> {
        let (code, length) = self
            .codes
            .get(symbol as usize)
            .copied()
            .ok_or(HuffmanError::SymbolWithoutCode { symbol })?;
        if length == 0 {
            return Err(HuffmanError::SymbolWithoutCode { symbol });
        }
        writer.write_huffman_code(code, length as u32);
        Ok(())
    }

    /// Code length assigned to `symbol` (0 if unused).
    #[inline]
    pub fn code_length(&self, symbol: u16) -> u8 {
        self.codes
            .get(symbol as usize)
            .map(|&(_, l)| l)
            .unwrap_or(0)
    }

    /// Number of symbols in the alphabet.
    #[inline]
    pub fn alphabet_size(&self) -> usize {
        self.codes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_oversubscribed_codes() {
        assert!(matches!(
            HuffmanEncoder::from_code_lengths(&[1, 1, 1]),
            Err(HuffmanError::Oversubscribed)
        ));
    }

    #[test]
    fn accepts_incomplete_codes() {
        let encoder = HuffmanEncoder::from_code_lengths(&[1, 0]).unwrap();
        assert_eq!(encoder.code_length(0), 1);
        assert_eq!(encoder.code_length(1), 0);
    }

    #[test]
    fn refuses_symbols_without_codes() {
        let encoder = HuffmanEncoder::from_code_lengths(&[1, 1, 0]).unwrap();
        let mut writer = BitWriter::new();
        assert!(encoder.encode(&mut writer, 0).is_ok());
        assert!(matches!(
            encoder.encode(&mut writer, 2),
            Err(HuffmanError::SymbolWithoutCode { symbol: 2 })
        ));
        assert!(matches!(
            encoder.encode(&mut writer, 99),
            Err(HuffmanError::SymbolWithoutCode { symbol: 99 })
        ));
    }

    #[test]
    fn code_lengths_too_long_rejected() {
        let lengths = [16u8, 1];
        assert!(matches!(
            HuffmanEncoder::from_code_lengths(&lengths),
            Err(HuffmanError::LengthTooLarge { .. })
        ));
    }
}
