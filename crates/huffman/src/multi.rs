//! Multi-symbol lookup-table decoder for the DEFLATE literal/length alphabet.
//!
//! The single-level [`crate::HuffmanDecoder`] resolves exactly one symbol per
//! table hit, which the paper identifies as the dominant cost of its one-stage
//! decoder versus ISA-L (§4.1).  [`MultiSymbolDecoder`] closes part of that
//! gap the same way ISA-L and zlib-ng do: each entry of a fixed
//! [`FAST_TABLE_BITS`]-bit table resolves as much as fits into the peeked
//! window —
//!
//! * **three literals** when all three codes together are at most
//!   [`FAST_TABLE_BITS`] bits (dense literal codes assign 4–6 bit codes to
//!   the hottest bytes, so text-heavy streams hit this often),
//! * **two literals** when both codes together are at most
//!   [`FAST_TABLE_BITS`] bits,
//! * **a literal followed by a length symbol**, with the symbol's base match
//!   length and extra-bit count cached in the entry so the hot loop never
//!   touches the RFC 1951 length tables,
//! * **a single literal / end-of-block / length symbol** otherwise,
//! * a **fallback** tag for bit patterns that start a code longer than
//!   [`FAST_TABLE_BITS`] bits (or match no code at all); the caller resolves
//!   those through the exact single-symbol decoder so behaviour — including
//!   error positions — is bit-for-bit identical.
//!
//! Symbols 286 and 287 (assignable only by the fixed code, never emitted by
//! valid streams) also map to the fallback tag so that the reference
//! decoder's error reporting is preserved unchanged.

use rgz_bitio::reverse_bits;

use crate::{canonical_codes, classify_code_lengths, CodeCompleteness, HuffmanError};

/// Number of bits peeked per fast-table lookup.
///
/// Thirteen bits keep the table at 8 K entries (32 KiB, L1-resident) while
/// still packing two typical literals — base64-heavy dynamic codes assign
/// 6–7 bit literal codes, text corpora 7–9 bits.  Codes longer than this
/// (the rarest symbols by construction) take the fallback path.
pub const FAST_TABLE_BITS: u32 = 13;

/// Maximum number of extra bits a length symbol can request (codes 281..=284).
pub const MAX_LENGTH_EXTRA_BITS: u32 = 5;

/// End-of-block symbol in the literal/length alphabet.
const END_OF_BLOCK: u16 = 256;

/// Base match length for length codes 257..=285 (RFC 1951 §3.2.5).
///
/// This is the authoritative copy: `rgz_deflate::constants` re-exports it so
/// the fast path's cached entries and the reference decoder's
/// `decode_length` resolve lengths from the same table.
pub const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];

/// Extra bits for length codes 257..=285 (RFC 1951 §3.2.5); authoritative
/// copy, re-exported by `rgz_deflate::constants`.
pub const LENGTH_EXTRA_BITS: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Returns `(base match length, extra bit count)` for a literal/length symbol,
/// or `None` when the symbol is not a length symbol (257..=285).
///
/// Exposed so differential tests can map packed entries back to symbols; the
/// bases are pairwise distinct, making the mapping invertible.
#[inline]
pub fn length_symbol_info(symbol: u16) -> Option<(u16, u8)> {
    if !(257..=285).contains(&symbol) {
        return None;
    }
    let index = (symbol - 257) as usize;
    Some((LENGTH_BASE[index], LENGTH_EXTRA_BITS[index]))
}

/// What a fast-table entry resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastEntryKind {
    /// The peeked bits start a code longer than [`FAST_TABLE_BITS`] bits,
    /// match no code, or decode to symbol 286/287: the caller must decode one
    /// symbol through the single-symbol reference decoder.
    Fallback,
    /// One literal; consume [`FastEntry::consumed_bits`], emit
    /// [`FastEntry::literal`].
    Literal,
    /// Two literals; consume [`FastEntry::consumed_bits`], emit
    /// [`FastEntry::literal`] then [`FastEntry::second_literal`].
    LiteralPair,
    /// Three literals; consume [`FastEntry::consumed_bits`], emit
    /// [`FastEntry::literal`], [`FastEntry::second_literal`], then
    /// [`FastEntry::third_literal`].
    LiteralTriple,
    /// The end-of-block symbol; consume [`FastEntry::consumed_bits`].
    EndOfBlock,
    /// A length symbol; consume [`FastEntry::consumed_bits`], then read
    /// [`FastEntry::length_extra_bits`] extra bits and add them to
    /// [`FastEntry::length_base`].
    Length,
    /// A literal followed by a length symbol: [`FastEntry::literal`] first,
    /// then proceed as for [`FastEntryKind::Length`].
    LiteralLength,
}

// Packed entry layout (u32):
//   bits  0..=7   literal 1                  (Literal, LiteralPair/Triple, LiteralLength)
//   bits  8..=15  literal 2                  (LiteralPair, LiteralTriple)
//   bits 16..=23  literal 3                  (LiteralTriple)
//   bits  8..=16  length base, 3..=258       (Length, LiteralLength)
//   bits 17..=19  length extra-bit count     (Length, LiteralLength)
//   bits 24..=27  consumed code bits         (all kinds except Fallback)
//   bits 28..=30  kind tag
//
// Four consumed bits suffice: even three packed codes together occupy at
// most FAST_TABLE_BITS (13) bits.
const KIND_SHIFT: u32 = 28;
const CONSUMED_SHIFT: u32 = 24;
const EXTRA_SHIFT: u32 = 17;
const BASE_SHIFT: u32 = 8;

const TAG_FALLBACK: u32 = 0;
const TAG_LITERAL: u32 = 1;
const TAG_LITERAL_PAIR: u32 = 2;
const TAG_END_OF_BLOCK: u32 = 3;
const TAG_LENGTH: u32 = 4;
const TAG_LITERAL_LENGTH: u32 = 5;
const TAG_LITERAL_TRIPLE: u32 = 6;

/// One packed fast-table entry; accessor validity depends on
/// [`FastEntry::kind`] (see the layout comment above).
#[derive(Debug, Clone, Copy)]
pub struct FastEntry(u32);

impl FastEntry {
    /// What this entry resolves to.
    #[inline]
    pub fn kind(self) -> FastEntryKind {
        match self.0 >> KIND_SHIFT {
            TAG_LITERAL => FastEntryKind::Literal,
            TAG_LITERAL_PAIR => FastEntryKind::LiteralPair,
            TAG_END_OF_BLOCK => FastEntryKind::EndOfBlock,
            TAG_LENGTH => FastEntryKind::Length,
            TAG_LITERAL_LENGTH => FastEntryKind::LiteralLength,
            TAG_LITERAL_TRIPLE => FastEntryKind::LiteralTriple,
            _ => FastEntryKind::Fallback,
        }
    }

    /// Total code bits the packed symbols occupy (excluding length extra
    /// bits). Zero for fallback entries.
    #[inline]
    pub fn consumed_bits(self) -> u32 {
        (self.0 >> CONSUMED_SHIFT) & 0xF
    }

    /// First packed literal.
    #[inline]
    pub fn literal(self) -> u8 {
        self.0 as u8
    }

    /// Second packed literal (only for [`FastEntryKind::LiteralPair`] and
    /// [`FastEntryKind::LiteralTriple`]).
    #[inline]
    pub fn second_literal(self) -> u8 {
        (self.0 >> 8) as u8
    }

    /// Third packed literal (only for [`FastEntryKind::LiteralTriple`]).
    #[inline]
    pub fn third_literal(self) -> u8 {
        (self.0 >> 16) as u8
    }

    /// Base match length of the packed length symbol.
    #[inline]
    pub fn length_base(self) -> u16 {
        ((self.0 >> BASE_SHIFT) & 0x1FF) as u16
    }

    /// Number of extra bits the packed length symbol reads after its code.
    #[inline]
    pub fn length_extra_bits(self) -> u32 {
        (self.0 >> EXTRA_SHIFT) & 0x7
    }
}

/// A multi-symbol lookup-table decoder for the DEFLATE literal/length
/// alphabet, built from the same canonical code-length input as
/// [`crate::HuffmanDecoder`].
///
/// The caller drives it through raw [`FastEntry`] values — one
/// `peek(FAST_TABLE_BITS)` indexes [`MultiSymbolDecoder::entry`], and the
/// entry says how many bits to consume and what to emit.  The worst-case
/// buffered-bit requirement of one step is [`FAST_TABLE_BITS`] code bits plus
/// [`MAX_LENGTH_EXTRA_BITS`] length extra bits; with at least that many bits
/// buffered a step never reads past end of input.
#[derive(Debug, Clone)]
pub struct MultiSymbolDecoder {
    table: Vec<u32>,
}

impl MultiSymbolDecoder {
    /// Builds a decoder from per-symbol code lengths (0 = symbol unused),
    /// applying the same validity rules as
    /// [`crate::HuffmanDecoder::from_code_lengths`].
    pub fn from_code_lengths(lengths: &[u8]) -> Result<Self, HuffmanError> {
        let max_length = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max_length == 0 {
            return Err(HuffmanError::EmptyAlphabet);
        }
        if max_length > crate::MAX_CODE_LENGTH {
            return Err(HuffmanError::LengthTooLarge {
                length: max_length as u8,
                maximum: crate::MAX_CODE_LENGTH,
            });
        }
        let used = lengths.iter().filter(|&&l| l > 0).count();
        match classify_code_lengths(lengths) {
            CodeCompleteness::Complete => {}
            CodeCompleteness::Incomplete if used == 1 => {}
            CodeCompleteness::Incomplete => return Err(HuffmanError::Incomplete),
            CodeCompleteness::Oversubscribed => return Err(HuffmanError::Oversubscribed),
            CodeCompleteness::Empty => return Err(HuffmanError::EmptyAlphabet),
        }

        let table_size = 1usize << FAST_TABLE_BITS;
        // Stage 1: a plain single-symbol table over FAST_TABLE_BITS bits,
        // holding `(length << 16) | symbol` (0 = no code of length <=
        // FAST_TABLE_BITS matches; such indices either start a longer code or
        // are invalid — both go to the fallback).
        let mut table = vec![0u32; table_size];
        for (symbol, &(code, length)) in canonical_codes(lengths).iter().enumerate() {
            if length == 0 || length as u32 > FAST_TABLE_BITS {
                continue;
            }
            let reversed = reverse_bits(code, length as u32) as usize;
            let step = 1usize << length;
            let entry = ((length as u32) << 16) | symbol as u32;
            let mut index = reversed;
            while index < table_size {
                table[index] = entry;
                index += step;
            }
        }

        // Stage 2: pack, in place.  For an index whose first symbol is a
        // literal, the remaining `FAST_TABLE_BITS - len1` peeked bits are
        // `index >> len1`; the stage-1 entry there resolves the follow-up
        // code, and the resolution only depended on *known* bits iff its
        // length fits in the remaining window.  Descending order keeps the
        // single allocation sound: `index >> len1` is strictly below `index`
        // for `len1 >= 1` (and equals it only at index 0, read before its
        // write), so every second-symbol lookup still sees a stage-1 value.
        for index in (0..table_size).rev() {
            let first = table[index];
            table[index] = if first == 0 {
                TAG_FALLBACK << KIND_SHIFT
            } else {
                let len1 = first >> 16;
                let sym1 = first & 0xFFFF;
                match sym1 as u16 {
                    0..=255 => {
                        let remaining_bits = FAST_TABLE_BITS - len1;
                        let second = table[index >> len1];
                        let len2 = second >> 16;
                        let sym2 = second & 0xFFFF;
                        if second != 0 && len2 <= remaining_bits {
                            if sym2 < 256 {
                                // Second symbol is a literal too — try a
                                // third.  `index >> (len1 + len2)` is below
                                // `index` (len1 + len2 >= 2), so the lookup
                                // still sees a stage-1 value.
                                let third = table[index >> (len1 + len2)];
                                let len3 = third >> 16;
                                let sym3 = third & 0xFFFF;
                                if third != 0 && len3 <= remaining_bits - len2 && sym3 < 256 {
                                    (TAG_LITERAL_TRIPLE << KIND_SHIFT)
                                        | ((len1 + len2 + len3) << CONSUMED_SHIFT)
                                        | (sym3 << 16)
                                        | (sym2 << 8)
                                        | sym1
                                } else {
                                    (TAG_LITERAL_PAIR << KIND_SHIFT)
                                        | ((len1 + len2) << CONSUMED_SHIFT)
                                        | (sym2 << 8)
                                        | sym1
                                }
                            } else if let Some((base, extra)) = length_symbol_info(sym2 as u16) {
                                (TAG_LITERAL_LENGTH << KIND_SHIFT)
                                    | ((len1 + len2) << CONSUMED_SHIFT)
                                    | ((extra as u32) << EXTRA_SHIFT)
                                    | ((base as u32) << BASE_SHIFT)
                                    | sym1
                            } else {
                                // Second symbol is end-of-block or 286/287:
                                // emit just the literal and let the next
                                // lookup (or the fallback) handle it.
                                (TAG_LITERAL << KIND_SHIFT) | (len1 << CONSUMED_SHIFT) | sym1
                            }
                        } else {
                            (TAG_LITERAL << KIND_SHIFT) | (len1 << CONSUMED_SHIFT) | sym1
                        }
                    }
                    END_OF_BLOCK => (TAG_END_OF_BLOCK << KIND_SHIFT) | (len1 << CONSUMED_SHIFT),
                    _ => match length_symbol_info(sym1 as u16) {
                        Some((base, extra)) => {
                            (TAG_LENGTH << KIND_SHIFT)
                                | (len1 << CONSUMED_SHIFT)
                                | ((extra as u32) << EXTRA_SHIFT)
                                | ((base as u32) << BASE_SHIFT)
                        }
                        // Symbols 286/287: defer to the reference decoder so
                        // its InvalidLengthSymbol error path is reproduced
                        // exactly.
                        None => TAG_FALLBACK << KIND_SHIFT,
                    },
                }
            };
        }
        Ok(Self { table })
    }

    /// Resolves `FAST_TABLE_BITS` peeked bits to a packed entry.
    #[inline]
    pub fn entry(&self, peeked: u64) -> FastEntry {
        FastEntry(self.table[peeked as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_code_lengths, HuffmanDecoder, HuffmanEncoder, MAX_CODE_LENGTH};
    use proptest::prelude::*;
    use rgz_bitio::{BitReader, BitWriter};

    /// Decodes the whole stream through the fast table (falling back to
    /// `reference` for long codes), returning the symbol sequence.  Length
    /// symbols are reconstructed from their cached base, which is unique per
    /// symbol.
    fn decode_all_fast(
        fast: &MultiSymbolDecoder,
        reference: &HuffmanDecoder,
        data: &[u8],
        symbol_count: usize,
    ) -> Vec<u16> {
        let base_to_symbol = |base: u16| -> u16 {
            (257..=285)
                .find(|&s| length_symbol_info(s).unwrap().0 == base)
                .expect("cached base must belong to a length symbol")
        };
        let mut reader = BitReader::new(data);
        let mut symbols = Vec::new();
        while symbols.len() < symbol_count {
            reader.fill_buffer();
            if reader.cached_bits() < FAST_TABLE_BITS + MAX_LENGTH_EXTRA_BITS {
                // Tail: the careful reference path.
                symbols.push(reference.decode(&mut reader).unwrap());
                continue;
            }
            let entry = fast.entry(reader.peek_cached(FAST_TABLE_BITS));
            match entry.kind() {
                FastEntryKind::Fallback => {
                    symbols.push(reference.decode(&mut reader).unwrap());
                }
                FastEntryKind::Literal => {
                    reader.consume_cached(entry.consumed_bits());
                    symbols.push(entry.literal() as u16);
                }
                FastEntryKind::LiteralPair => {
                    reader.consume_cached(entry.consumed_bits());
                    symbols.push(entry.literal() as u16);
                    symbols.push(entry.second_literal() as u16);
                }
                FastEntryKind::LiteralTriple => {
                    reader.consume_cached(entry.consumed_bits());
                    symbols.push(entry.literal() as u16);
                    symbols.push(entry.second_literal() as u16);
                    symbols.push(entry.third_literal() as u16);
                }
                FastEntryKind::EndOfBlock => {
                    reader.consume_cached(entry.consumed_bits());
                    symbols.push(256);
                }
                FastEntryKind::Length => {
                    reader.consume_cached(entry.consumed_bits());
                    symbols.push(base_to_symbol(entry.length_base()));
                }
                FastEntryKind::LiteralLength => {
                    reader.consume_cached(entry.consumed_bits());
                    symbols.push(entry.literal() as u16);
                    symbols.push(base_to_symbol(entry.length_base()));
                }
            }
        }
        // A pair entry straddling the requested count decodes one symbol into
        // the padding; the real hot loop stops at end-of-block instead.
        symbols.truncate(symbol_count);
        symbols
    }

    fn encode(lengths: &[u8], symbols: &[u16]) -> Vec<u8> {
        let encoder = HuffmanEncoder::from_code_lengths(lengths).unwrap();
        let mut writer = BitWriter::new();
        for &symbol in symbols {
            encoder.encode(&mut writer, symbol).unwrap();
        }
        // Padding so the fast path never starves near the true end (the tail
        // guard is exercised by the shorter proptest streams).
        for _ in 0..8 {
            writer.write_bits(0, 8);
        }
        writer.finish()
    }

    #[test]
    fn length_symbol_info_matches_rfc() {
        assert_eq!(length_symbol_info(257), Some((3, 0)));
        assert_eq!(length_symbol_info(265), Some((11, 1)));
        assert_eq!(length_symbol_info(284), Some((227, 5)));
        assert_eq!(length_symbol_info(285), Some((258, 0)));
        assert_eq!(length_symbol_info(256), None);
        assert_eq!(length_symbol_info(286), None);
        // Bases are pairwise distinct (the tests rely on invertibility).
        let bases: Vec<u16> = (257..=285)
            .map(|s| length_symbol_info(s).unwrap().0)
            .collect();
        let mut deduped = bases.clone();
        deduped.dedup();
        assert_eq!(bases, deduped);
    }

    #[test]
    fn packs_triples_for_short_codes() {
        // Four 2-bit literal codes: three codes fit in every 13-bit window,
        // so every entry must pack a triple (6 consumed bits).
        let lengths = [2u8, 2, 2, 2];
        let fast = MultiSymbolDecoder::from_code_lengths(&lengths).unwrap();
        for peeked in 0..(1u64 << FAST_TABLE_BITS) {
            let entry = fast.entry(peeked);
            assert_eq!(entry.kind(), FastEntryKind::LiteralTriple, "index {peeked}");
            assert_eq!(entry.consumed_bits(), 6);
        }
    }

    #[test]
    fn packs_pairs_when_a_third_code_does_not_fit() {
        // Sixty-four 6-bit literal codes: two codes fit in the 13-bit window
        // (12 bits), a third (18 bits) never does — every entry must stay a
        // pair with 12 consumed bits.
        let lengths = vec![6u8; 64];
        assert_eq!(classify_code_lengths(&lengths), CodeCompleteness::Complete);
        let fast = MultiSymbolDecoder::from_code_lengths(&lengths).unwrap();
        for peeked in 0..(1u64 << FAST_TABLE_BITS) {
            let entry = fast.entry(peeked);
            assert_eq!(entry.kind(), FastEntryKind::LiteralPair, "index {peeked}");
            assert_eq!(entry.consumed_bits(), 12);
        }
    }

    #[test]
    fn caches_length_base_and_extra_bits() {
        // Symbols: literal 0 (1 bit), EOB 256 (2 bits), length 265 (2 bits).
        let mut lengths = vec![0u8; 266];
        lengths[0] = 1;
        lengths[256] = 2;
        lengths[265] = 2;
        let fast = MultiSymbolDecoder::from_code_lengths(&lengths).unwrap();
        let codes = canonical_codes(&lengths);
        let (code, len) = codes[265];
        let reversed = reverse_bits(code, len as u32) as u64;
        let entry = fast.entry(reversed);
        assert_eq!(entry.kind(), FastEntryKind::Length);
        assert_eq!(entry.length_base(), 11);
        assert_eq!(entry.length_extra_bits(), 1);
        assert_eq!(entry.consumed_bits(), 2);

        // Literal followed by the length code packs as LiteralLength.
        let (lit_code, lit_len) = codes[0];
        let lit_reversed = reverse_bits(lit_code, lit_len as u32) as u64;
        let packed_index = lit_reversed | (reversed << lit_len);
        let entry = fast.entry(packed_index);
        assert_eq!(entry.kind(), FastEntryKind::LiteralLength);
        assert_eq!(entry.literal(), 0);
        assert_eq!(entry.length_base(), 11);
        assert_eq!(entry.consumed_bits(), 3);
    }

    #[test]
    fn long_codes_fall_back() {
        // A skewed code with lengths beyond FAST_TABLE_BITS.
        let mut lengths = vec![0u8; 16];
        lengths[0] = 1;
        for (i, length) in (2..=15u8).enumerate() {
            lengths[i + 1] = length;
        }
        lengths[15] = 15;
        assert_eq!(
            classify_code_lengths(&lengths),
            CodeCompleteness::Complete,
            "test needs a complete code"
        );
        let fast = MultiSymbolDecoder::from_code_lengths(&lengths).unwrap();
        let codes = canonical_codes(&lengths);
        // The 15-bit code's low FAST_TABLE_BITS peeked bits must be fallback.
        let (code, len) = codes[15];
        let reversed = reverse_bits(code, len as u32) as u64;
        let entry = fast.entry(reversed & ((1 << FAST_TABLE_BITS) - 1));
        assert_eq!(entry.kind(), FastEntryKind::Fallback);
    }

    #[test]
    fn rejects_the_same_codes_as_the_reference_decoder() {
        for lengths in [&[1u8, 1, 1][..], &[2, 2, 2][..], &[0, 0][..]] {
            assert_eq!(
                MultiSymbolDecoder::from_code_lengths(lengths).err(),
                HuffmanDecoder::from_code_lengths(lengths).err(),
            );
        }
    }

    #[test]
    fn fixed_literal_code_streams_match_reference() {
        let mut lengths = vec![8u8; 144];
        lengths.extend(vec![9u8; 112]);
        lengths.extend(vec![7u8; 24]);
        lengths.extend(vec![8u8; 8]);
        let symbols: Vec<u16> = (0..288u16).filter(|&s| s != 286 && s != 287).collect();
        let data = encode(&lengths, &symbols);
        let fast = MultiSymbolDecoder::from_code_lengths(&lengths).unwrap();
        let reference = HuffmanDecoder::from_code_lengths(&lengths).unwrap();
        assert_eq!(
            decode_all_fast(&fast, &reference, &data, symbols.len()),
            symbols
        );
    }

    proptest! {
        /// The differential guarantee the deflate hot loop relies on: on any
        /// valid code and any symbol stream, the fast table (plus reference
        /// fallback) yields exactly the reference symbol sequence.
        #[test]
        fn fast_and_reference_decode_identical_streams(
            seed_weights in proptest::collection::vec(1u32..5000, 2..288),
            picks in proptest::collection::vec(any::<u16>(), 1..300),
        ) {
            let lengths = compute_code_lengths(&seed_weights, MAX_CODE_LENGTH).unwrap();
            prop_assume!(lengths.iter().filter(|&&l| l > 0).count() >= 2);
            let used: Vec<u16> = lengths.iter().enumerate()
                .filter(|(_, &l)| l > 0)
                .map(|(i, _)| i as u16)
                // 286/287 cannot be encoded by valid streams and 256 ends
                // blocks; the deflate-level differential tests cover those.
                .filter(|&s| s != 286 && s != 287)
                .collect();
            prop_assume!(!used.is_empty());
            let symbols: Vec<u16> = picks.iter().map(|&p| used[p as usize % used.len()]).collect();
            let data = encode(&lengths, &symbols);
            let fast = MultiSymbolDecoder::from_code_lengths(&lengths).unwrap();
            let reference = HuffmanDecoder::from_code_lengths(&lengths).unwrap();

            let mut reference_reader = BitReader::new(&data);
            let expected: Vec<u16> = (0..symbols.len())
                .map(|_| reference.decode(&mut reference_reader).unwrap())
                .collect();
            prop_assert_eq!(&expected, &symbols);
            prop_assert_eq!(decode_all_fast(&fast, &reference, &data, symbols.len()), symbols);
        }
    }
}
