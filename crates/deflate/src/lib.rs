//! DEFLATE (RFC 1951) — compression, one-stage decompression, and the
//! two-stage (marker based) decompression scheme that rapidgzip's parallel
//! architecture is built on.
//!
//! Layout:
//!
//! * [`constants`] — RFC 1951 tables (length/distance codes, fixed codes).
//! * [`block`] — block header parsing shared by all decoders and the
//!   block finder.
//! * [`inflate()`] / [`inflate_two_stage()`] — the two decoding paths.
//! * [`markers`] — marker replacement and window resolution (second stage).
//! * [`compress`] — a complete DEFLATE compressor used to build test data
//!   and benchmark corpora.
//! * [`matchfinder`] — the reusable hash-chain LZ77 match finder shared by
//!   the serial compressor and the chunk-parallel `rgz_compress` crate.

pub mod block;
pub mod compress;
pub mod constants;
pub mod inflate;
pub mod markers;
pub mod matchfinder;

pub use block::{BlockType, DynamicHeader};
pub use compress::{write_stored_block, CompressionLevel, CompressorOptions, DeflateCompressor};
pub use inflate::{
    inflate, inflate_hashed, inflate_limited, inflate_single_symbol, inflate_two_stage,
    BlockBoundary, InflateOutcome, StopReason, MARKER_BASE,
};
pub use markers::{
    active_isa as markers_active_isa, contains_markers, replace_markers, replace_markers_hashed,
    replace_markers_into, replace_markers_into_scalar, resolve_window, WindowUsage,
};
pub use matchfinder::{HtMatchFinder, Token};

use rgz_huffman::HuffmanError;

/// Errors produced while parsing or decoding a DEFLATE stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeflateError {
    /// BTYPE was the reserved value 11.
    ReservedBlockType,
    /// HLIT encoded more than 286 literal/length codes.
    InvalidLiteralCodeCount(u16),
    /// HDIST encoded more than 30 distance codes.
    InvalidDistanceCodeCount(u16),
    /// The precode (code-length code) was invalid.
    InvalidPrecode(HuffmanError),
    /// The literal/length code was invalid.
    InvalidLiteralCode(HuffmanError),
    /// The distance code was invalid.
    InvalidDistanceCode(HuffmanError),
    /// A repeat code (16) appeared before any code length.
    RepeatWithoutPreviousLength,
    /// The precode-encoded data produced more lengths than HLIT + HDIST.
    CodeLengthOverflow,
    /// A stored block's LEN and NLEN fields disagree.
    StoredLengthMismatch { length: u16, complement: u16 },
    /// A literal/length symbol outside 0..=285 was decoded.
    InvalidLengthSymbol(u16),
    /// A distance symbol outside 0..=29 was decoded.
    InvalidDistanceSymbol(u16),
    /// A back-reference appeared in a block that declared no distance code.
    BackReferenceWithoutDistanceCode,
    /// A back-reference points further back than the available history.
    DistanceTooFar { distance: usize, available: usize },
    /// A marker referenced window bytes that the provided window does not
    /// contain.
    MarkerOutsideWindow { offset: usize, window_length: usize },
    /// A 16-bit symbol that is neither a literal nor a marker was found
    /// during marker replacement.
    InvalidMarkerSymbol(u16),
    /// The input ended in the middle of a block.
    UnexpectedEof,
    /// Decoding produced more output than the caller-imposed bound (only
    /// raised by [`inflate_limited`], which guards untrusted streams).
    OutputLimitExceeded {
        /// The output bound that was exceeded.
        limit: usize,
    },
    /// A fragment split point handed to [`replace_markers_hashed`] lies past
    /// the end of the resolved output (the caller's member-boundary
    /// bookkeeping disagrees with the chunk's actual length).
    FragmentEndOutOfRange {
        /// The offending split offset.
        end: usize,
        /// Length of the resolved chunk output.
        output_length: usize,
    },
}

impl std::fmt::Display for DeflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeflateError::ReservedBlockType => write!(f, "reserved DEFLATE block type 11"),
            DeflateError::InvalidLiteralCodeCount(n) => {
                write!(f, "invalid number of literal/length codes: {n}")
            }
            DeflateError::InvalidDistanceCodeCount(n) => {
                write!(f, "invalid number of distance codes: {n}")
            }
            DeflateError::InvalidPrecode(e) => write!(f, "invalid precode: {e}"),
            DeflateError::InvalidLiteralCode(e) => write!(f, "invalid literal/length code: {e}"),
            DeflateError::InvalidDistanceCode(e) => write!(f, "invalid distance code: {e}"),
            DeflateError::RepeatWithoutPreviousLength => {
                write!(f, "code-length repeat with no previous length")
            }
            DeflateError::CodeLengthOverflow => {
                write!(f, "code-length data overflows the declared alphabet sizes")
            }
            DeflateError::StoredLengthMismatch { length, complement } => write!(
                f,
                "stored block length {length} does not match complement {complement:#06x}"
            ),
            DeflateError::InvalidLengthSymbol(s) => write!(f, "invalid length symbol {s}"),
            DeflateError::InvalidDistanceSymbol(s) => write!(f, "invalid distance symbol {s}"),
            DeflateError::BackReferenceWithoutDistanceCode => {
                write!(f, "back-reference in a block without distance codes")
            }
            DeflateError::DistanceTooFar {
                distance,
                available,
            } => write!(
                f,
                "back-reference distance {distance} exceeds available history {available}"
            ),
            DeflateError::MarkerOutsideWindow {
                offset,
                window_length,
            } => write!(
                f,
                "marker offset {offset} lies outside the provided window of {window_length} bytes"
            ),
            DeflateError::InvalidMarkerSymbol(s) => {
                write!(f, "invalid 16-bit symbol {s} during marker replacement")
            }
            DeflateError::UnexpectedEof => write!(f, "unexpected end of DEFLATE stream"),
            DeflateError::OutputLimitExceeded { limit } => {
                write!(f, "decoded output exceeds the {limit} byte bound")
            }
            DeflateError::FragmentEndOutOfRange { end, output_length } => write!(
                f,
                "fragment split at {end} lies past the {output_length} byte resolved output"
            ),
        }
    }
}

impl std::error::Error for DeflateError {}

impl From<rgz_bitio::BitIoError> for DeflateError {
    fn from(_: rgz_bitio::BitIoError) -> Self {
        DeflateError::UnexpectedEof
    }
}

impl From<HuffmanError> for DeflateError {
    fn from(error: HuffmanError) -> Self {
        DeflateError::InvalidLiteralCode(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let errors: Vec<DeflateError> = vec![
            DeflateError::ReservedBlockType,
            DeflateError::InvalidLiteralCodeCount(288),
            DeflateError::StoredLengthMismatch {
                length: 1,
                complement: 2,
            },
            DeflateError::DistanceTooFar {
                distance: 100,
                available: 10,
            },
            DeflateError::MarkerOutsideWindow {
                offset: 0,
                window_length: 5,
            },
            DeflateError::UnexpectedEof,
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn bitio_errors_convert_to_eof() {
        let error: DeflateError = rgz_bitio::BitIoError::TooManyBits(99).into();
        assert_eq!(error, DeflateError::UnexpectedEof);
    }
}
