//! Marker replacement — the second stage of two-stage decompression.

use crate::constants::WINDOW_SIZE;
use crate::inflate::MARKER_BASE;
use crate::DeflateError;

/// Returns `true` if any symbol in `symbols` is a marker that still needs a
/// window to be resolved.
#[inline]
pub fn contains_markers(symbols: &[u16]) -> bool {
    symbols.iter().any(|&s| s >= MARKER_BASE)
}

/// Tracks which bytes of the 32 KiB window preceding a chunk are actually
/// referenced by the chunk's back-references (sparsity tracking).
///
/// Offsets are in *marker space*: 0 is the oldest possible window byte
/// (32 KiB before the chunk start), `WINDOW_SIZE - 1` the byte immediately
/// before the chunk — the same coordinate system marker symbols use.  Most
/// chunks reference only a small, scattered subset of their window, which the
/// seek-point index exploits by dropping or zeroing unreferenced bytes before
/// compressing the stored window.
#[derive(Clone, PartialEq, Eq)]
pub struct WindowUsage {
    bits: Vec<u64>,
}

impl std::fmt::Debug for WindowUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowUsage")
            .field("used_bytes", &self.used_bytes())
            .field("min_offset", &self.min_offset())
            .finish()
    }
}

impl Default for WindowUsage {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowUsage {
    /// Creates an empty usage map (no window byte referenced).
    pub fn new() -> Self {
        Self {
            bits: vec![0u64; WINDOW_SIZE / 64],
        }
    }

    /// Marks `length` window bytes starting at marker-space `offset` as used.
    /// Ranges reaching past `WINDOW_SIZE` are clamped.
    pub fn mark(&mut self, offset: usize, length: usize) {
        let end = (offset + length).min(WINDOW_SIZE);
        for bit in offset.min(WINDOW_SIZE)..end {
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Whether no window byte is referenced at all.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&word| word == 0)
    }

    /// Number of referenced window bytes.
    pub fn used_bytes(&self) -> usize {
        self.bits
            .iter()
            .map(|word| word.count_ones() as usize)
            .sum()
    }

    /// The smallest referenced marker-space offset (i.e. the furthest the
    /// chunk reaches back into its window), if any.
    pub fn min_offset(&self) -> Option<usize> {
        self.bits
            .iter()
            .position(|&word| word != 0)
            .map(|index| index * 64 + self.bits[index].trailing_zeros() as usize)
    }

    /// Maximal runs of referenced bytes as sorted `(offset, length)` pairs.
    pub fn intervals(&self) -> Vec<(u32, u32)> {
        let mut intervals = Vec::new();
        let mut run_start: Option<usize> = None;
        for (word_index, &word) in self.bits.iter().enumerate() {
            // Whole-word fast paths keep this a 512-iteration scan for the
            // common all-clear map (and for dense runs).
            let bit_base = word_index * 64;
            if word == 0 {
                if let Some(start) = run_start.take() {
                    intervals.push((start as u32, (bit_base - start) as u32));
                }
                continue;
            }
            if word == u64::MAX {
                run_start.get_or_insert(bit_base);
                continue;
            }
            for offset_in_word in 0..64 {
                let set = word & (1u64 << offset_in_word) != 0;
                let bit = bit_base + offset_in_word;
                match (set, run_start) {
                    (true, None) => run_start = Some(bit),
                    (false, Some(start)) => {
                        intervals.push((start as u32, (bit - start) as u32));
                        run_start = None;
                    }
                    _ => {}
                }
            }
        }
        if let Some(start) = run_start {
            intervals.push((start as u32, (WINDOW_SIZE - start) as u32));
        }
        intervals
    }

    /// Builds the usage map of a two-stage chunk from its marker symbols.
    pub fn from_symbols(symbols: &[u16]) -> Self {
        let mut usage = Self::new();
        for &symbol in symbols {
            if symbol >= MARKER_BASE {
                usage.mark((symbol - MARKER_BASE) as usize, 1);
            }
        }
        usage
    }
}

/// Replaces marker symbols with bytes from `window` and returns the resolved
/// bytes.
///
/// `window` is the decompressed data immediately preceding the chunk these
/// symbols were decoded from; it may be shorter than 32 KiB (e.g. near the
/// beginning of a stream), in which case markers that reach further back than
/// the window are an error (they indicate the chunk was decoded from a false
/// positive).
pub fn replace_markers(symbols: &[u16], window: &[u8]) -> Result<Vec<u8>, DeflateError> {
    let mut out = Vec::with_capacity(symbols.len());
    replace_markers_into(symbols, window, &mut out)?;
    Ok(out)
}

/// [`replace_markers`] variant appending into an existing buffer; this is the
/// routine whose bandwidth Table 2 reports as "Marker replacement".
pub fn replace_markers_into(
    symbols: &[u16],
    window: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), DeflateError> {
    out.reserve(symbols.len());
    let window_base = WINDOW_SIZE - window.len();
    for &symbol in symbols {
        if symbol < 256 {
            out.push(symbol as u8);
        } else if symbol >= MARKER_BASE {
            let offset = (symbol - MARKER_BASE) as usize;
            if offset < window_base {
                return Err(DeflateError::MarkerOutsideWindow {
                    offset,
                    window_length: window.len(),
                });
            }
            out.push(window[offset - window_base]);
        } else {
            return Err(DeflateError::InvalidMarkerSymbol(symbol));
        }
    }
    Ok(())
}

/// [`replace_markers`] variant for the verification pipeline: resolves the
/// symbols and returns, alongside the bytes, the CRC-32 of every *fragment*
/// of the output delimited by `fragment_ends` (sorted end offsets in symbol
/// space, one per gzip member boundary inside the chunk).  The returned
/// vector always has `fragment_ends.len() + 1` entries — the last one hashes
/// the (possibly empty) tail that continues into the next chunk.
///
/// Hashing happens here, right after replacement while the resolved bytes
/// are cache-hot, on whichever worker thread runs the replacement — so
/// checksum computation parallelizes with decoding exactly like the
/// replacement itself does.
pub fn replace_markers_hashed(
    symbols: &[u16],
    window: &[u8],
    fragment_ends: &[usize],
) -> Result<(Vec<u8>, Vec<u32>), DeflateError> {
    let out = replace_markers(symbols, window)?;
    debug_assert!(fragment_ends.iter().all(|&end| end <= out.len()));
    let crcs = rgz_checksum::crc32_fragments(&out, fragment_ends);
    Ok((out, crcs))
}

/// Resolves only the markers contained in the final `WINDOW_SIZE` symbols of
/// `symbols`, returning the 32 KiB (or shorter) byte window that a *following*
/// chunk needs.
///
/// This is the cheap, inherently sequential part of window propagation the
/// paper discusses in §2.2: only the last 32 KiB of each chunk has to be
/// resolved before the next chunk can be finalized, while full-chunk
/// replacement runs in parallel.
pub fn resolve_window(symbols: &[u16], window: &[u8]) -> Result<Vec<u8>, DeflateError> {
    if symbols.len() >= WINDOW_SIZE {
        let tail = &symbols[symbols.len() - WINDOW_SIZE..];
        replace_markers(tail, window)
    } else {
        // The chunk is shorter than a window: the following chunk's window is
        // the tail of (previous window + this chunk's data).
        let resolved = replace_markers(symbols, window)?;
        let mut combined = Vec::with_capacity(WINDOW_SIZE);
        let needed_from_window = WINDOW_SIZE.saturating_sub(resolved.len());
        let take = needed_from_window.min(window.len());
        combined.extend_from_slice(&window[window.len() - take..]);
        combined.extend_from_slice(&resolved);
        if combined.len() > WINDOW_SIZE {
            let excess = combined.len() - WINDOW_SIZE;
            combined.drain(..excess);
        }
        Ok(combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn literals_pass_through() {
        let symbols: Vec<u16> = b"hello world".iter().map(|&b| b as u16).collect();
        assert!(!contains_markers(&symbols));
        assert_eq!(replace_markers(&symbols, &[]).unwrap(), b"hello world");
    }

    #[test]
    fn markers_resolve_against_full_window() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 256) as u8).collect();
        let symbols = vec![
            MARKER_BASE, // oldest window byte
            MARKER_BASE + 1,
            MARKER_BASE + (WINDOW_SIZE as u16 - 1), // newest window byte
            b'x' as u16,
        ];
        let resolved = replace_markers(&symbols, &window).unwrap();
        assert_eq!(
            resolved,
            vec![window[0], window[1], window[WINDOW_SIZE - 1], b'x']
        );
    }

    #[test]
    fn markers_resolve_against_short_window() {
        // A 100-byte window occupies the *last* 100 slots of the 32 KiB
        // marker space.
        let window: Vec<u8> = (0..100u8).collect();
        let newest = MARKER_BASE + (WINDOW_SIZE - 1) as u16;
        let oldest_valid = MARKER_BASE + (WINDOW_SIZE - 100) as u16;
        assert_eq!(replace_markers(&[newest], &window).unwrap(), vec![99]);
        assert_eq!(replace_markers(&[oldest_valid], &window).unwrap(), vec![0]);
        assert!(matches!(
            replace_markers(&[oldest_valid - 1], &window),
            Err(DeflateError::MarkerOutsideWindow { .. })
        ));
    }

    #[test]
    fn hashed_replacement_fragments_cover_the_output() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 256) as u8).collect();
        let symbols: Vec<u16> = (0..1000u16)
            .map(|i| {
                if i % 7 == 0 {
                    MARKER_BASE + (WINDOW_SIZE as u16 - 1 - (i % 100))
                } else {
                    i % 256
                }
            })
            .collect();
        let plain = replace_markers(&symbols, &window).unwrap();

        let ends = [0usize, 137, 137, 999];
        let (resolved, crcs) = replace_markers_hashed(&symbols, &window, &ends).unwrap();
        assert_eq!(resolved, plain);
        assert_eq!(crcs.len(), ends.len() + 1);
        let mut start = 0usize;
        for (&end, &crc) in ends.iter().zip(&crcs) {
            assert_eq!(crc, rgz_checksum::crc32(&plain[start..end]));
            start = end;
        }
        assert_eq!(*crcs.last().unwrap(), rgz_checksum::crc32(&plain[999..]));
        // No splits: one fragment hashing the whole chunk.
        let (_, whole) = replace_markers_hashed(&symbols, &window, &[]).unwrap();
        assert_eq!(whole, vec![rgz_checksum::crc32(&plain)]);
    }

    #[test]
    fn symbols_between_256_and_marker_base_are_invalid() {
        assert!(matches!(
            replace_markers(&[300], &[]),
            Err(DeflateError::InvalidMarkerSymbol(300))
        ));
    }

    #[test]
    fn resolve_window_of_long_chunk_uses_only_the_tail() {
        let window = vec![0xAAu8; WINDOW_SIZE];
        // Chunk longer than a window made of literals 0,1,2,...
        let symbols: Vec<u16> = (0..(WINDOW_SIZE + 1000))
            .map(|i| (i % 256) as u16)
            .collect();
        let next_window = resolve_window(&symbols, &window).unwrap();
        assert_eq!(next_window.len(), WINDOW_SIZE);
        let expected: Vec<u8> = (1000..WINDOW_SIZE + 1000)
            .map(|i| (i % 256) as u8)
            .collect();
        assert_eq!(next_window, expected);
    }

    #[test]
    fn resolve_window_of_short_chunk_prepends_previous_window() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 251) as u8).collect();
        let symbols: Vec<u16> = (0..10u16).collect();
        let next_window = resolve_window(&symbols, &window).unwrap();
        assert_eq!(next_window.len(), WINDOW_SIZE);
        assert_eq!(
            &next_window[WINDOW_SIZE - 10..],
            &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
        );
        assert_eq!(&next_window[..WINDOW_SIZE - 10], &window[10..]);
    }

    #[test]
    fn window_usage_tracks_intervals_and_min_offset() {
        let mut usage = WindowUsage::new();
        assert!(usage.is_empty());
        assert_eq!(usage.min_offset(), None);
        assert!(usage.intervals().is_empty());

        usage.mark(100, 4);
        usage.mark(102, 6); // overlaps the first run
        usage.mark(WINDOW_SIZE - 2, 10); // clamped at the window end
        assert!(!usage.is_empty());
        assert_eq!(usage.min_offset(), Some(100));
        assert_eq!(usage.used_bytes(), 8 + 2);
        assert_eq!(
            usage.intervals(),
            vec![(100, 8), ((WINDOW_SIZE - 2) as u32, 2)]
        );
    }

    #[test]
    fn window_usage_from_symbols_collects_marker_offsets() {
        let symbols = vec![
            b'a' as u16,
            MARKER_BASE + 7,
            MARKER_BASE + 8,
            b'b' as u16,
            MARKER_BASE + 7, // duplicate marker counts once
            MARKER_BASE + 4000,
        ];
        let usage = WindowUsage::from_symbols(&symbols);
        assert_eq!(usage.used_bytes(), 3);
        assert_eq!(usage.intervals(), vec![(7, 2), (4000, 1)]);
        assert!(WindowUsage::from_symbols(&[1, 2, 255]).is_empty());
    }

    proptest! {
        #[test]
        fn replacement_is_equivalent_to_naive_loop(
            window in proptest::collection::vec(any::<u8>(), 0..WINDOW_SIZE),
            symbols in proptest::collection::vec(0u16..256, 0..500),
            marker_positions in proptest::collection::vec((0usize..500, 0u16..1000), 0..50),
        ) {
            let mut symbols = symbols;
            // Sprinkle in markers that stay within the provided window.
            if !window.is_empty() && !symbols.is_empty() {
                for (position, offset) in marker_positions {
                    let position = position % symbols.len();
                    let offset = (WINDOW_SIZE - 1 - (offset as usize % window.len())) as u16;
                    symbols[position] = MARKER_BASE + offset;
                }
            }
            let resolved = replace_markers(&symbols, &window).unwrap();
            for (i, &symbol) in symbols.iter().enumerate() {
                if symbol < 256 {
                    prop_assert_eq!(resolved[i], symbol as u8);
                } else {
                    let offset = (symbol - MARKER_BASE) as usize;
                    prop_assert_eq!(resolved[i], window[offset - (WINDOW_SIZE - window.len())]);
                }
            }
        }
    }
}
