//! Marker replacement — the second stage of two-stage decompression.

use crate::constants::WINDOW_SIZE;
use crate::inflate::MARKER_BASE;
use crate::DeflateError;

/// Returns `true` if any symbol in `symbols` is a marker that still needs a
/// window to be resolved.
#[inline]
pub fn contains_markers(symbols: &[u16]) -> bool {
    symbols.iter().any(|&s| s >= MARKER_BASE)
}

/// Tracks which bytes of the 32 KiB window preceding a chunk are actually
/// referenced by the chunk's back-references (sparsity tracking).
///
/// Offsets are in *marker space*: 0 is the oldest possible window byte
/// (32 KiB before the chunk start), `WINDOW_SIZE - 1` the byte immediately
/// before the chunk — the same coordinate system marker symbols use.  Most
/// chunks reference only a small, scattered subset of their window, which the
/// seek-point index exploits by dropping or zeroing unreferenced bytes before
/// compressing the stored window.
#[derive(Clone, PartialEq, Eq)]
pub struct WindowUsage {
    bits: Vec<u64>,
}

impl std::fmt::Debug for WindowUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowUsage")
            .field("used_bytes", &self.used_bytes())
            .field("min_offset", &self.min_offset())
            .finish()
    }
}

impl Default for WindowUsage {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowUsage {
    /// Creates an empty usage map (no window byte referenced).
    pub fn new() -> Self {
        Self {
            bits: vec![0u64; WINDOW_SIZE / 64],
        }
    }

    /// Marks `length` window bytes starting at marker-space `offset` as used.
    /// Ranges reaching past `WINDOW_SIZE` are clamped.
    pub fn mark(&mut self, offset: usize, length: usize) {
        let end = (offset + length).min(WINDOW_SIZE);
        for bit in offset.min(WINDOW_SIZE)..end {
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Whether no window byte is referenced at all.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&word| word == 0)
    }

    /// Number of referenced window bytes.
    pub fn used_bytes(&self) -> usize {
        self.bits
            .iter()
            .map(|word| word.count_ones() as usize)
            .sum()
    }

    /// The smallest referenced marker-space offset (i.e. the furthest the
    /// chunk reaches back into its window), if any.
    pub fn min_offset(&self) -> Option<usize> {
        self.bits
            .iter()
            .position(|&word| word != 0)
            .map(|index| index * 64 + self.bits[index].trailing_zeros() as usize)
    }

    /// Maximal runs of referenced bytes as sorted `(offset, length)` pairs.
    ///
    /// Offsets and lengths are bounded by [`WINDOW_SIZE`] (32 KiB) — `mark`
    /// clamps every range to the window — so the `as u32` narrowing below is
    /// lossless; the debug assertion pins that invariant at the window
    /// boundary.
    pub fn intervals(&self) -> Vec<(u32, u32)> {
        debug_assert_eq!(self.bits.len() * 64, WINDOW_SIZE);
        let mut intervals = Vec::new();
        let mut run_start: Option<usize> = None;
        for (word_index, &word) in self.bits.iter().enumerate() {
            // Whole-word fast paths keep this a 512-iteration scan for the
            // common all-clear map (and for dense runs).
            let bit_base = word_index * 64;
            if word == 0 {
                if let Some(start) = run_start.take() {
                    intervals.push((start as u32, (bit_base - start) as u32));
                }
                continue;
            }
            if word == u64::MAX {
                run_start.get_or_insert(bit_base);
                continue;
            }
            for offset_in_word in 0..64 {
                let set = word & (1u64 << offset_in_word) != 0;
                let bit = bit_base + offset_in_word;
                match (set, run_start) {
                    (true, None) => run_start = Some(bit),
                    (false, Some(start)) => {
                        intervals.push((start as u32, (bit - start) as u32));
                        run_start = None;
                    }
                    _ => {}
                }
            }
        }
        if let Some(start) = run_start {
            intervals.push((start as u32, (WINDOW_SIZE - start) as u32));
        }
        intervals
    }

    /// Builds the usage map of a two-stage chunk from its marker symbols.
    pub fn from_symbols(symbols: &[u16]) -> Self {
        let mut usage = Self::new();
        for &symbol in symbols {
            if symbol >= MARKER_BASE {
                usage.mark((symbol - MARKER_BASE) as usize, 1);
            }
        }
        usage
    }
}

/// Replaces marker symbols with bytes from `window` and returns the resolved
/// bytes.
///
/// `window` is the decompressed data immediately preceding the chunk these
/// symbols were decoded from; it may be shorter than 32 KiB (e.g. near the
/// beginning of a stream), in which case markers that reach further back than
/// the window are an error (they indicate the chunk was decoded from a false
/// positive).
pub fn replace_markers(symbols: &[u16], window: &[u8]) -> Result<Vec<u8>, DeflateError> {
    let mut out = Vec::with_capacity(symbols.len());
    replace_markers_into(symbols, window, &mut out)?;
    Ok(out)
}

/// [`replace_markers`] variant appending into an existing buffer; this is the
/// routine whose bandwidth Table 2 reports as "Marker replacement".
///
/// On x86-64 the replacement runs through a SIMD kernel (AVX2 when detected
/// at runtime, SSE2 otherwise — see [`active_isa`]): 16–32 symbols are
/// classified per iteration into literal and marker lanes, the literal lanes
/// are narrowed and stored in one go, and only the (typically sparse) marker
/// lanes take a scalar window fetch.  Behaviour — including the partial
/// output left behind when an invalid symbol or out-of-window marker aborts
/// the replacement — is bit-for-bit identical to
/// [`replace_markers_into_scalar`], which every other platform uses directly.
pub fn replace_markers_into(
    symbols: &[u16],
    window: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), DeflateError> {
    #[cfg(target_arch = "x86_64")]
    {
        match simd::kernel() {
            simd::Kernel::Avx2 => return simd::replace_avx2(symbols, window, out),
            simd::Kernel::Sse2 => return simd::replace_sse2(symbols, window, out),
            simd::Kernel::Scalar => {}
        }
    }
    replace_markers_into_scalar(symbols, window, out)
}

/// Portable scalar reference for [`replace_markers_into`]; the differential
/// proptests assert the SIMD kernels match it bit-for-bit, partial
/// error-path output included.
pub fn replace_markers_into_scalar(
    symbols: &[u16],
    window: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), DeflateError> {
    out.reserve(symbols.len());
    let window_base = WINDOW_SIZE - window.len();
    // Validate a block ahead of time, then emit it through a tight
    // branch-light select loop; only a block that actually contains a bad
    // symbol re-runs the exact per-symbol loop below, so error positions and
    // partial output stay identical to the one-symbol-at-a-time reference.
    for block in symbols.chunks(512) {
        let valid = block.iter().all(|&symbol| {
            symbol < 256
                || (symbol >= MARKER_BASE && (symbol - MARKER_BASE) as usize >= window_base)
        });
        if valid {
            out.extend(block.iter().map(|&symbol| {
                if symbol >= MARKER_BASE {
                    window[(symbol - MARKER_BASE) as usize - window_base]
                } else {
                    symbol as u8
                }
            }));
            continue;
        }
        for &symbol in block {
            if symbol < 256 {
                out.push(symbol as u8);
            } else if symbol >= MARKER_BASE {
                let offset = (symbol - MARKER_BASE) as usize;
                if offset < window_base {
                    return Err(DeflateError::MarkerOutsideWindow {
                        offset,
                        window_length: window.len(),
                    });
                }
                out.push(window[offset - window_base]);
            } else {
                return Err(DeflateError::InvalidMarkerSymbol(symbol));
            }
        }
    }
    Ok(())
}

/// Name of the marker-replacement kernel [`replace_markers_into`] resolves to
/// on this machine: `"avx2"`, `"sse2"`, or `"scalar"`.
pub fn active_isa() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        match simd::kernel() {
            simd::Kernel::Avx2 => "avx2",
            simd::Kernel::Sse2 => "sse2",
            simd::Kernel::Scalar => "scalar",
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "scalar"
    }
}

/// SIMD marker replacement (x86-64).
///
/// Every block of `LANES` 16-bit symbols is classified with three vector
/// masks:
///
/// * **literal** — high byte zero (symbol < 256);
/// * **marker** — sign bit set ([`MARKER_BASE`] is `0x8000`, so markers are
///   exactly the negative lanes when reinterpreted as `i16`);
/// * **invalid** — neither (256..=32767), which must surface the scalar
///   path's exact `InvalidMarkerSymbol` error and partial output.
///
/// Literal lanes are narrowed to bytes (`packus` saturation only mangles
/// non-literal lanes, which are overwritten or rejected) and stored with one
/// unaligned write; marker lanes are then patched individually, iterating
/// the movemask bit-set — on real chunks markers are sparse, so the scalar
/// patch loop touches only a few lanes per block.  Blocks containing an
/// invalid symbol or an out-of-window marker are re-run through the scalar
/// reference so the error, and the partial output preceding it, match
/// bit-for-bit.
// `unsafe` is confined to CPU intrinsics and spare-capacity stores whose
// bounds are established by the up-front `reserve` (workspace-wide policy:
// unsafe only inside vetted SIMD kernel modules).
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{replace_markers_into_scalar, DeflateError, MARKER_BASE, WINDOW_SIZE};
    use std::arch::x86_64::*;

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub(super) enum Kernel {
        Avx2,
        Sse2,
        Scalar,
    }

    pub(super) fn kernel() -> Kernel {
        use std::sync::OnceLock;
        static KERNEL: OnceLock<Kernel> = OnceLock::new();
        *KERNEL.get_or_init(|| {
            if rgz_bitio::scalar_forced() {
                Kernel::Scalar
            } else if is_x86_feature_detected!("avx2") {
                Kernel::Avx2
            } else {
                // SSE2 is part of the x86-64 baseline; no detection needed.
                Kernel::Sse2
            }
        })
    }

    /// Patches the marker lanes of one committed block and reports whether a
    /// marker reached outside the window.  `block` is the block's symbols,
    /// `dst` its freshly stored literal bytes, `marker_bits` lane `i`'s
    /// marker flag in bit `i`.
    ///
    /// # Safety
    ///
    /// `dst` must be valid for writes of `block.len()` bytes.
    #[inline(always)]
    unsafe fn patch_markers(
        block: &[u16],
        window: &[u8],
        window_base: usize,
        dst: *mut u8,
        mut marker_bits: u32,
    ) -> bool {
        while marker_bits != 0 {
            let lane = marker_bits.trailing_zeros() as usize;
            let offset = (block[lane] - MARKER_BASE) as usize;
            let Some(relative) = offset.checked_sub(window_base) else {
                return false;
            };
            unsafe { dst.add(lane).write(window[relative]) };
            marker_bits &= marker_bits - 1;
        }
        true
    }

    pub(super) fn replace_sse2(
        symbols: &[u16],
        window: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), DeflateError> {
        out.reserve(symbols.len());
        let window_base = WINDOW_SIZE - window.len();
        let mut written = out.len();
        let mut blocks = symbols.chunks_exact(16);
        // SAFETY: `reserve` guaranteed capacity for all of `symbols`; each
        // iteration stores 16 bytes inside that budget and `set_len` only
        // covers fully initialized prefixes.
        unsafe {
            let base = out.as_mut_ptr();
            for block in &mut blocks {
                let v0 = _mm_loadu_si128(block.as_ptr().cast());
                let v1 = _mm_loadu_si128(block.as_ptr().add(8).cast());
                // Lane classification (see module docs).
                let zero = _mm_setzero_si128();
                let literal0 = _mm_cmpeq_epi16(_mm_srli_epi16(v0, 8), zero);
                let literal1 = _mm_cmpeq_epi16(_mm_srli_epi16(v1, 8), zero);
                let marker0 = _mm_srai_epi16(v0, 15);
                let marker1 = _mm_srai_epi16(v1, 15);
                let marker_bits = _mm_movemask_epi8(_mm_packs_epi16(marker0, marker1)) as u32;
                let classified_bits = _mm_movemask_epi8(_mm_packs_epi16(
                    _mm_or_si128(literal0, marker0),
                    _mm_or_si128(literal1, marker1),
                )) as u32;
                if classified_bits != 0xFFFF {
                    out.set_len(written);
                    return replace_markers_into_scalar(resume(symbols, block), window, out);
                }
                let dst = base.add(written);
                _mm_storeu_si128(dst.cast(), _mm_packus_epi16(v0, v1));
                if !patch_markers(block, window, window_base, dst, marker_bits) {
                    out.set_len(written);
                    return replace_markers_into_scalar(resume(symbols, block), window, out);
                }
                written += 16;
            }
            out.set_len(written);
        }
        replace_markers_into_scalar(blocks.remainder(), window, out)
    }

    // `unsafe fn` (not the 1.86+ safe `#[target_feature]` form) keeps the
    // crate buildable on the MSRV toolchain.
    #[target_feature(enable = "avx2")]
    unsafe fn replace_avx2_inner(
        symbols: &[u16],
        window: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), DeflateError> {
        out.reserve(symbols.len());
        let window_base = WINDOW_SIZE - window.len();
        let mut written = out.len();
        let mut blocks = symbols.chunks_exact(32);
        // SAFETY: as in `replace_sse2`, stores stay within the reserved
        // capacity and `set_len` only covers initialized prefixes.
        unsafe {
            let base = out.as_mut_ptr();
            for block in &mut blocks {
                let v0 = _mm256_loadu_si256(block.as_ptr().cast());
                let v1 = _mm256_loadu_si256(block.as_ptr().add(16).cast());
                let zero = _mm256_setzero_si256();
                let literal0 = _mm256_cmpeq_epi16(_mm256_srli_epi16(v0, 8), zero);
                let literal1 = _mm256_cmpeq_epi16(_mm256_srli_epi16(v1, 8), zero);
                let marker0 = _mm256_srai_epi16(v0, 15);
                let marker1 = _mm256_srai_epi16(v1, 15);
                // 256-bit packs interleave 128-bit halves; permute the qwords
                // back into symbol order so mask bit i = lane i.
                let order = _mm256_permute4x64_epi64::<0b11_01_10_00>;
                let marker_bits =
                    _mm256_movemask_epi8(order(_mm256_packs_epi16(marker0, marker1))) as u32;
                let classified_bits = _mm256_movemask_epi8(order(_mm256_packs_epi16(
                    _mm256_or_si256(literal0, marker0),
                    _mm256_or_si256(literal1, marker1),
                ))) as u32;
                if classified_bits != u32::MAX {
                    out.set_len(written);
                    return replace_markers_into_scalar(resume(symbols, block), window, out);
                }
                let dst = base.add(written);
                _mm256_storeu_si256(dst.cast(), order(_mm256_packus_epi16(v0, v1)));
                if !patch_markers(block, window, window_base, dst, marker_bits) {
                    out.set_len(written);
                    return replace_markers_into_scalar(resume(symbols, block), window, out);
                }
                written += 32;
            }
            out.set_len(written);
        }
        replace_markers_into_scalar(blocks.remainder(), window, out)
    }

    pub(super) fn replace_avx2(
        symbols: &[u16],
        window: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), DeflateError> {
        // SAFETY: `kernel()` returned Avx2, so the CPU supports it.
        unsafe { replace_avx2_inner(symbols, window, out) }
    }

    /// The tail of `symbols` starting at `block` (used to re-run an aborting
    /// block through the scalar reference).
    fn resume<'a>(symbols: &'a [u16], block: &[u16]) -> &'a [u16] {
        // chunks_exact guarantees `block` borrows from `symbols`.
        let start =
            (block.as_ptr() as usize - symbols.as_ptr() as usize) / std::mem::size_of::<u16>();
        &symbols[start..]
    }
}

/// [`replace_markers`] variant for the verification pipeline: resolves the
/// symbols and returns, alongside the bytes, the CRC-32 of every *fragment*
/// of the output delimited by `fragment_ends` (sorted end offsets in symbol
/// space, one per gzip member boundary inside the chunk).  The returned
/// vector always has `fragment_ends.len() + 1` entries — the last one hashes
/// the (possibly empty) tail that continues into the next chunk.
///
/// Hashing happens here, right after replacement while the resolved bytes
/// are cache-hot, on whichever worker thread runs the replacement — so
/// checksum computation parallelizes with decoding exactly like the
/// replacement itself does.
pub fn replace_markers_hashed(
    symbols: &[u16],
    window: &[u8],
    fragment_ends: &[usize],
) -> Result<(Vec<u8>, Vec<u32>), DeflateError> {
    let out = replace_markers(symbols, window)?;
    // A split past the chunk end means the caller's member-boundary
    // bookkeeping is wrong; slicing would panic (or silently mis-hash in a
    // release build), so reject it as a typed error in every build.
    if let Some(&end) = fragment_ends.iter().find(|&&end| end > out.len()) {
        return Err(DeflateError::FragmentEndOutOfRange {
            end,
            output_length: out.len(),
        });
    }
    let crcs = rgz_checksum::crc32_fragments(&out, fragment_ends);
    Ok((out, crcs))
}

/// Resolves only the markers contained in the final `WINDOW_SIZE` symbols of
/// `symbols`, returning the 32 KiB (or shorter) byte window that a *following*
/// chunk needs.
///
/// This is the cheap, inherently sequential part of window propagation the
/// paper discusses in §2.2: only the last 32 KiB of each chunk has to be
/// resolved before the next chunk can be finalized, while full-chunk
/// replacement runs in parallel.
pub fn resolve_window(symbols: &[u16], window: &[u8]) -> Result<Vec<u8>, DeflateError> {
    if symbols.len() >= WINDOW_SIZE {
        let tail = &symbols[symbols.len() - WINDOW_SIZE..];
        replace_markers(tail, window)
    } else {
        // The chunk is shorter than a window: the following chunk's window is
        // the tail of (previous window + this chunk's data).  Each symbol
        // resolves to exactly one byte, so the split is known up front:
        // `take` window bytes followed by the whole resolved chunk, which is
        // resolved straight into the result buffer (one allocation, no
        // intermediate copies).
        let take = (WINDOW_SIZE - symbols.len()).min(window.len());
        let mut combined = Vec::with_capacity(take + symbols.len());
        combined.extend_from_slice(&window[window.len() - take..]);
        replace_markers_into(symbols, window, &mut combined)?;
        debug_assert!(combined.len() <= WINDOW_SIZE);
        Ok(combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn literals_pass_through() {
        let symbols: Vec<u16> = b"hello world".iter().map(|&b| b as u16).collect();
        assert!(!contains_markers(&symbols));
        assert_eq!(replace_markers(&symbols, &[]).unwrap(), b"hello world");
    }

    #[test]
    fn markers_resolve_against_full_window() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 256) as u8).collect();
        let symbols = vec![
            MARKER_BASE, // oldest window byte
            MARKER_BASE + 1,
            MARKER_BASE + (WINDOW_SIZE as u16 - 1), // newest window byte
            b'x' as u16,
        ];
        let resolved = replace_markers(&symbols, &window).unwrap();
        assert_eq!(
            resolved,
            vec![window[0], window[1], window[WINDOW_SIZE - 1], b'x']
        );
    }

    #[test]
    fn markers_resolve_against_short_window() {
        // A 100-byte window occupies the *last* 100 slots of the 32 KiB
        // marker space.
        let window: Vec<u8> = (0..100u8).collect();
        let newest = MARKER_BASE + (WINDOW_SIZE - 1) as u16;
        let oldest_valid = MARKER_BASE + (WINDOW_SIZE - 100) as u16;
        assert_eq!(replace_markers(&[newest], &window).unwrap(), vec![99]);
        assert_eq!(replace_markers(&[oldest_valid], &window).unwrap(), vec![0]);
        assert!(matches!(
            replace_markers(&[oldest_valid - 1], &window),
            Err(DeflateError::MarkerOutsideWindow { .. })
        ));
    }

    #[test]
    fn hashed_replacement_fragments_cover_the_output() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 256) as u8).collect();
        let symbols: Vec<u16> = (0..1000u16)
            .map(|i| {
                if i % 7 == 0 {
                    MARKER_BASE + (WINDOW_SIZE as u16 - 1 - (i % 100))
                } else {
                    i % 256
                }
            })
            .collect();
        let plain = replace_markers(&symbols, &window).unwrap();

        let ends = [0usize, 137, 137, 999];
        let (resolved, crcs) = replace_markers_hashed(&symbols, &window, &ends).unwrap();
        assert_eq!(resolved, plain);
        assert_eq!(crcs.len(), ends.len() + 1);
        let mut start = 0usize;
        for (&end, &crc) in ends.iter().zip(&crcs) {
            assert_eq!(crc, rgz_checksum::crc32(&plain[start..end]));
            start = end;
        }
        assert_eq!(*crcs.last().unwrap(), rgz_checksum::crc32(&plain[999..]));
        // No splits: one fragment hashing the whole chunk.
        let (_, whole) = replace_markers_hashed(&symbols, &window, &[]).unwrap();
        assert_eq!(whole, vec![rgz_checksum::crc32(&plain)]);
    }

    #[test]
    fn hashed_replacement_rejects_out_of_range_fragment_ends() {
        // This must hold in release builds too (it used to be a
        // debug_assert!, letting release builds slice out of bounds or
        // mis-hash), so the check is a typed error, not an assertion.
        let symbols: Vec<u16> = (0..10u16).collect();
        let result = replace_markers_hashed(&symbols, &[], &[5, 11]);
        assert_eq!(
            result.unwrap_err(),
            DeflateError::FragmentEndOutOfRange {
                end: 11,
                output_length: 10,
            }
        );
        // An end exactly at the output length is still valid.
        let (out, crcs) = replace_markers_hashed(&symbols, &[], &[10]).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(crcs.len(), 2);
    }

    #[test]
    fn window_usage_intervals_at_window_boundary() {
        // Runs touching the very last window byte exercise the final
        // `(WINDOW_SIZE - start)` narrowing.
        let mut usage = WindowUsage::new();
        usage.mark(WINDOW_SIZE - 1, 100); // clamped to one byte
        assert_eq!(usage.intervals(), vec![((WINDOW_SIZE - 1) as u32, 1)]);

        let mut full = WindowUsage::new();
        full.mark(0, WINDOW_SIZE);
        assert_eq!(full.intervals(), vec![(0, WINDOW_SIZE as u32)]);
        assert_eq!(full.used_bytes(), WINDOW_SIZE);

        let mut split = WindowUsage::new();
        split.mark(0, 1);
        split.mark(WINDOW_SIZE - 70, WINDOW_SIZE); // clamped at the end
        assert_eq!(
            split.intervals(),
            vec![(0, 1), ((WINDOW_SIZE - 70) as u32, 70)]
        );
    }

    #[test]
    fn symbols_between_256_and_marker_base_are_invalid() {
        assert!(matches!(
            replace_markers(&[300], &[]),
            Err(DeflateError::InvalidMarkerSymbol(300))
        ));
    }

    #[test]
    fn resolve_window_of_long_chunk_uses_only_the_tail() {
        let window = vec![0xAAu8; WINDOW_SIZE];
        // Chunk longer than a window made of literals 0,1,2,...
        let symbols: Vec<u16> = (0..(WINDOW_SIZE + 1000))
            .map(|i| (i % 256) as u16)
            .collect();
        let next_window = resolve_window(&symbols, &window).unwrap();
        assert_eq!(next_window.len(), WINDOW_SIZE);
        let expected: Vec<u8> = (1000..WINDOW_SIZE + 1000)
            .map(|i| (i % 256) as u8)
            .collect();
        assert_eq!(next_window, expected);
    }

    #[test]
    fn resolve_window_of_short_chunk_prepends_previous_window() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 251) as u8).collect();
        let symbols: Vec<u16> = (0..10u16).collect();
        let next_window = resolve_window(&symbols, &window).unwrap();
        assert_eq!(next_window.len(), WINDOW_SIZE);
        assert_eq!(
            &next_window[WINDOW_SIZE - 10..],
            &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
        );
        assert_eq!(&next_window[..WINDOW_SIZE - 10], &window[10..]);
    }

    #[test]
    fn window_usage_tracks_intervals_and_min_offset() {
        let mut usage = WindowUsage::new();
        assert!(usage.is_empty());
        assert_eq!(usage.min_offset(), None);
        assert!(usage.intervals().is_empty());

        usage.mark(100, 4);
        usage.mark(102, 6); // overlaps the first run
        usage.mark(WINDOW_SIZE - 2, 10); // clamped at the window end
        assert!(!usage.is_empty());
        assert_eq!(usage.min_offset(), Some(100));
        assert_eq!(usage.used_bytes(), 8 + 2);
        assert_eq!(
            usage.intervals(),
            vec![(100, 8), ((WINDOW_SIZE - 2) as u32, 2)]
        );
    }

    #[test]
    fn window_usage_from_symbols_collects_marker_offsets() {
        let symbols = vec![
            b'a' as u16,
            MARKER_BASE + 7,
            MARKER_BASE + 8,
            b'b' as u16,
            MARKER_BASE + 7, // duplicate marker counts once
            MARKER_BASE + 4000,
        ];
        let usage = WindowUsage::from_symbols(&symbols);
        assert_eq!(usage.used_bytes(), 3);
        assert_eq!(usage.intervals(), vec![(7, 2), (4000, 1)]);
        assert!(WindowUsage::from_symbols(&[1, 2, 255]).is_empty());
    }

    #[test]
    fn active_isa_names_a_known_kernel() {
        assert!(["avx2", "sse2", "scalar"].contains(&active_isa()));
    }

    /// Asserts the dispatched replacement and the scalar reference agree on
    /// `symbols`/`window`: same `Result`, same output bytes — including the
    /// partial output preceding an error — and untouched prefix preserved.
    fn assert_simd_matches_scalar(symbols: &[u16], window: &[u8]) {
        let prefix = b"prefix-".to_vec();
        let mut simd_out = prefix.clone();
        let mut scalar_out = prefix;
        let simd_result = replace_markers_into(symbols, window, &mut simd_out);
        let scalar_result = replace_markers_into_scalar(symbols, window, &mut scalar_out);
        assert_eq!(simd_result, scalar_result, "result mismatch");
        assert_eq!(simd_out, scalar_out, "output mismatch (partial included)");
    }

    #[test]
    fn simd_matches_scalar_on_lane_boundary_lengths() {
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 253) as u8).collect();
        for length in [
            0usize, 1, 7, 15, 16, 17, 31, 32, 33, 47, 48, 63, 64, 65, 100, 512,
        ] {
            // All literals.
            let literals: Vec<u16> = (0..length).map(|i| (i % 256) as u16).collect();
            assert_simd_matches_scalar(&literals, &window);
            // Alternating literal / marker.
            let mixed: Vec<u16> = (0..length)
                .map(|i| {
                    if i % 2 == 0 {
                        (i % 256) as u16
                    } else {
                        MARKER_BASE + (i % WINDOW_SIZE) as u16
                    }
                })
                .collect();
            assert_simd_matches_scalar(&mixed, &window);
            // All markers (marker-dense worst case).
            let markers: Vec<u16> = (0..length)
                .map(|i| MARKER_BASE + ((i * 37) % WINDOW_SIZE) as u16)
                .collect();
            assert_simd_matches_scalar(&markers, &window);
        }
    }

    #[test]
    fn simd_matches_scalar_on_error_paths() {
        let window: Vec<u8> = (0..100u8).collect();
        // Invalid symbol at every lane position of the first two blocks.
        for position in 0..64usize {
            let mut symbols: Vec<u16> = (0..96).map(|i| (i % 256) as u16).collect();
            symbols[position] = 300;
            assert_simd_matches_scalar(&symbols, &window);
            // Out-of-window marker (window covers only the last 100 slots).
            symbols[position] = MARKER_BASE;
            assert_simd_matches_scalar(&symbols, &window);
        }
        // Valid marker *after* an out-of-window one in the same block: the
        // partial output must stop exactly where the scalar loop stops.
        let mut symbols: Vec<u16> = (0..32).map(|i| (i % 256) as u16).collect();
        symbols[5] = MARKER_BASE + (WINDOW_SIZE - 1) as u16;
        symbols[3] = MARKER_BASE; // aborts before lane 5 in symbol order
        assert_simd_matches_scalar(&symbols, &window);
    }

    proptest! {
        // Differential: the runtime-dispatched kernel (AVX2/SSE2 on x86-64)
        // must match the portable scalar reference bit-for-bit on arbitrary
        // symbol streams — valid, invalid, and out-of-window alike.  On
        // machines without SIMD this degenerates to scalar == scalar and
        // still runs, keeping the harness portable.
        #[test]
        fn simd_and_scalar_replacement_agree(
            window in proptest::collection::vec(any::<u8>(), 0..WINDOW_SIZE),
            symbols in proptest::collection::vec(any::<u16>(), 0..600),
        ) {
            assert_simd_matches_scalar(&symbols, &window);
        }

        // Same, but biased toward *valid* streams so the success path gets
        // deep coverage too (any::<u16> streams nearly always abort within
        // a few symbols).
        #[test]
        fn simd_and_scalar_replacement_agree_on_valid_streams(
            window in proptest::collection::vec(any::<u8>(), 1..WINDOW_SIZE),
            symbols in proptest::collection::vec(0u16..256, 0..600),
            marker_positions in proptest::collection::vec((0usize..600, 0u16..32768), 0..80),
        ) {
            let mut symbols = symbols;
            if !symbols.is_empty() {
                for (position, offset) in marker_positions {
                    let position = position % symbols.len();
                    let offset = (WINDOW_SIZE - 1 - (offset as usize % window.len())) as u16;
                    symbols[position] = MARKER_BASE + offset;
                }
            }
            assert_simd_matches_scalar(&symbols, &window);
        }

        // `resolve_window` must equal the tail of (window ++ full-chunk
        // replacement) for chunks shorter than, longer than, and exactly at
        // WINDOW_SIZE — the short-chunk path computes its window/chunk split
        // up front and must not drop or duplicate a byte at the boundary.
        #[test]
        fn resolve_window_equals_tail_of_full_replacement(
            window_length in prop_oneof![0usize..80, (WINDOW_SIZE - 3)..=WINDOW_SIZE],
            chunk_length in prop_oneof![
                0usize..80,
                (WINDOW_SIZE - 40)..(WINDOW_SIZE + 40),
            ],
            marker_positions in proptest::collection::vec((0usize..40000, 0usize..40000), 0..60),
        ) {
            let window: Vec<u8> = (0..window_length).map(|i| (i % 239) as u8).collect();
            let mut symbols: Vec<u16> =
                (0..chunk_length).map(|i| (i % 256) as u16).collect();
            if !window.is_empty() && !symbols.is_empty() {
                for (position, offset) in marker_positions {
                    let offset = WINDOW_SIZE - 1 - offset % window.len();
                    symbols[position % chunk_length] = MARKER_BASE + offset as u16;
                }
            }
            let resolved = replace_markers(&symbols, &window).unwrap();
            let mut all = window.clone();
            all.extend_from_slice(&resolved);
            let expected = &all[all.len().saturating_sub(WINDOW_SIZE)..];
            prop_assert_eq!(resolve_window(&symbols, &window).unwrap(), expected);
        }

        #[test]
        fn replacement_is_equivalent_to_naive_loop(
            window in proptest::collection::vec(any::<u8>(), 0..WINDOW_SIZE),
            symbols in proptest::collection::vec(0u16..256, 0..500),
            marker_positions in proptest::collection::vec((0usize..500, 0u16..1000), 0..50),
        ) {
            let mut symbols = symbols;
            // Sprinkle in markers that stay within the provided window.
            if !window.is_empty() && !symbols.is_empty() {
                for (position, offset) in marker_positions {
                    let position = position % symbols.len();
                    let offset = (WINDOW_SIZE - 1 - (offset as usize % window.len())) as u16;
                    symbols[position] = MARKER_BASE + offset;
                }
            }
            let resolved = replace_markers(&symbols, &window).unwrap();
            for (i, &symbol) in symbols.iter().enumerate() {
                if symbol < 256 {
                    prop_assert_eq!(resolved[i], symbol as u8);
                } else {
                    let offset = (symbol - MARKER_BASE) as usize;
                    prop_assert_eq!(resolved[i], window[offset - (WINDOW_SIZE - window.len())]);
                }
            }
        }
    }
}
