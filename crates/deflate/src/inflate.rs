//! One-stage (window-based) and two-stage (marker-based) DEFLATE decoding.
//!
//! The one-stage path is the classic decoder: it needs the 32 KiB of
//! decompressed data preceding the stream position (empty at the start of a
//! gzip member) and produces plain bytes.
//!
//! The two-stage path implements §2.2 of the paper: a thread that starts
//! decoding in the middle of a stream does not know the preceding window, so
//! back-references into it emit 16-bit *marker* symbols which a later, much
//! cheaper pass replaces once the window is known.

use rgz_bitio::BitReader;
use rgz_huffman::{FastEntryKind, HuffmanDecoder, FAST_TABLE_BITS, MAX_LENGTH_EXTRA_BITS};

use crate::block::{
    decode_distance, decode_length, dynamic_block_codes, dynamic_block_codes_fast,
    fixed_block_codes, fixed_block_codes_fast, read_block_header, read_stored_header, BlockCodes,
    BlockType, FastBlockCodes,
};
use crate::constants::{END_OF_BLOCK, WINDOW_SIZE};
use crate::markers::WindowUsage;
use crate::DeflateError;

/// Marker base: output symbols `>= MARKER_BASE` denote offset
/// `symbol - MARKER_BASE` into the unknown 32 KiB window preceding the chunk
/// (offset 0 = oldest byte, `WINDOW_SIZE - 1` = byte immediately before the
/// chunk).
pub const MARKER_BASE: u16 = 32_768;

/// Where and what a decoded block was; collected so the caller can build
/// seek points and enforce the chunk stop condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockBoundary {
    /// Bit offset of the first bit of the block header.
    pub bit_offset: u64,
    /// Offset of the block's first output byte, relative to the start of this
    /// inflate call.
    pub uncompressed_offset: u64,
    /// Block type.
    pub block_type: BlockType,
    /// Whether this block had the final-block bit set.
    pub is_final: bool,
}

/// Why an inflate call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A block with the final-block flag was fully decoded.
    EndOfStream,
    /// A Dynamic or Non-Compressed block starting at or after the stop offset
    /// was encountered (and not consumed).
    StopOffsetReached,
    /// The input data ended exactly at a block boundary before the stream's
    /// final block (only possible when decoding a truncated prefix).
    EndOfInput,
}

/// Metadata describing one inflate call.
#[derive(Debug, Clone)]
pub struct InflateOutcome {
    /// Block boundaries encountered, in order.
    pub blocks: Vec<BlockBoundary>,
    /// Why decoding stopped.
    pub stop_reason: StopReason,
    /// Bit position after the last consumed bit.
    pub end_position: u64,
    /// Which bytes of the preceding 32 KiB window the decoded data actually
    /// referenced, as sorted `(offset, length)` runs in marker space (see
    /// [`crate::markers::WindowUsage`]).  Empty when the data is
    /// self-contained.
    pub window_usage: Vec<(u32, u32)>,
    /// CRC-32 of the bytes *this call* appended to the output, when decoding
    /// through [`inflate_hashed`]; `None` for the unhashed entry points and
    /// for two-stage decoding (marker symbols cannot be hashed before
    /// replacement).
    pub crc32: Option<u32>,
    /// Blocks the multi-symbol fast path declined and routed through the
    /// single-symbol reference decoder (table build would not amortise near
    /// the end of input).  Always zero when the fast path was not requested;
    /// lets callers tag a decode span with a *fallback* outcome.
    pub fast_fallback_blocks: u32,
}

impl InflateOutcome {
    /// Whether the DEFLATE stream was decoded to its final block.
    pub fn stream_ended(&self) -> bool {
        self.stop_reason == StopReason::EndOfStream
    }
}

/// Decides whether the block starting at the current position should be left
/// unconsumed because of the stop condition (§3.3: stop at the first Dynamic
/// or Non-Compressed block at or after the stop offset; Fixed Blocks are
/// decoded through because the block finder never reports them).
fn should_stop_before_block(reader: &mut BitReader<'_>, stop_offset: u64) -> bool {
    if reader.position() < stop_offset || reader.remaining_bits() < 3 {
        return false;
    }
    let header = reader.peek(3);
    let block_type = (header >> 1) & 0b11;
    block_type == 0b00 || block_type == 0b10
}

// --- one-stage decoding ------------------------------------------------------

/// One-stage DEFLATE decoder state: output bytes plus the window that
/// preceded them.
struct ByteSink<'w> {
    window: &'w [u8],
    out: Vec<u8>,
    usage: WindowUsage,
    /// Maximum total output length; decoding errors out once exceeded (used
    /// to bound the expansion of untrusted streams).
    limit: usize,
    /// Route match copies through the portable doubling loop instead of the
    /// overshooting vector copy (set by `RGZ_FORCE_SCALAR`, and by the
    /// differential tests to compare both).
    scalar_copies: bool,
}

/// Spare capacity the overshooting match copy keeps past the output end: one
/// 16-byte register per store, plus one period-replication pass that can land
/// a register's worth beyond it.
const COPY_SLACK: usize = 32;

impl<'w> ByteSink<'w> {
    fn new(window: &'w [u8], out: Vec<u8>, limit: usize) -> Self {
        Self {
            window,
            out,
            usage: WindowUsage::new(),
            limit,
            scalar_copies: rgz_bitio::scalar_forced(),
        }
    }

    #[inline]
    fn push_literal(&mut self, byte: u8) {
        self.out.push(byte);
    }

    #[inline]
    fn copy_match(&mut self, distance: usize, length: usize) -> Result<(), DeflateError> {
        let position = self.out.len();
        if distance > position + self.window.len() || distance == 0 || distance > WINDOW_SIZE {
            return Err(DeflateError::DistanceTooFar {
                distance,
                available: position + self.window.len(),
            });
        }
        if distance > position {
            // The first `distance - position` bytes come out of the preceding
            // window; record them so the index can sparsify the stored copy.
            let reach = distance - position;
            self.usage.mark(WINDOW_SIZE - reach, length.min(reach));
            let from_window = reach.min(length);
            let start = self.window.len() - reach;
            self.out
                .extend_from_slice(&self.window[start..start + from_window]);
            // Once the source position crosses into this call's own output
            // the copy continues as a plain self-referential match (the
            // distance is unchanged and now <= out.len()).
            let remaining = length - from_window;
            if remaining > 0 {
                self.copy_within_output(distance, remaining);
            }
        } else {
            self.copy_within_output(distance, length);
        }
        Ok(())
    }

    /// Copies `length` bytes from `distance` bytes behind the end of the
    /// output. Requires `1 <= distance <= out.len()`.
    #[inline]
    fn copy_within_output(&mut self, distance: usize, length: usize) {
        if self.scalar_copies {
            self.copy_within_output_scalar(distance, length);
        } else {
            self.copy_within_output_overshoot(distance, length);
        }
    }

    /// Portable reference for [`Self::copy_within_output`]: repeated
    /// `extend_from_within` chunks, each a bounds-checked memcpy.
    fn copy_within_output_scalar(&mut self, distance: usize, length: usize) {
        let start = self.out.len() - distance;
        // The output from `start` onwards repeats with period `distance`, so
        // each `extend_from_within` chunk (a memcpy) may cover everything
        // written so far past `start` — doubling per iteration instead of the
        // byte-at-a-time loop an overlapping copy would otherwise need.
        let mut copied = 0;
        while copied < length {
            let chunk = (length - copied).min(self.out.len() - start);
            self.out.extend_from_within(start..start + chunk);
            copied += chunk;
        }
    }

    /// Vector match copy: whole 16-byte registers, deliberately overshooting
    /// the match end into reserved slack (the overshoot bytes are either
    /// overwritten by the next symbol or sit beyond `len` and are never
    /// observed).  Typical DEFLATE matches are 3–30 bytes, so most copies
    /// complete in one or two register stores with no per-byte or per-chunk
    /// bookkeeping; overlapping matches first replicate their period until
    /// source and cursor are a register apart.
    // `unsafe` is confined to raw-pointer register copies whose bounds are
    // established by the `reserve` above them (workspace-wide policy: unsafe
    // only inside vetted hot-loop kernels; `copy_within_output_scalar` is the
    // portable reference).
    #[allow(unsafe_code)]
    #[inline]
    fn copy_within_output_overshoot(&mut self, distance: usize, length: usize) {
        let len = self.out.len();
        self.out.reserve(length + COPY_SLACK);
        // SAFETY: the buffer has `length + COPY_SLACK` spare bytes.  Writes
        // run from `len` to at most `len + length + 15` (each store is 16
        // bytes starting below `end`); reads stay below the write cursor,
        // which starts at initialized data and advances contiguously.
        // `set_len` covers exactly the `length` initialized match bytes.
        unsafe {
            let base = self.out.as_mut_ptr();
            let mut src = base.add(len - distance);
            let mut dst = base.add(len);
            let end = dst.add(length);
            if distance == 1 {
                std::ptr::write_bytes(dst, *src, length);
            } else {
                // Replicate the period until source and cursor are at least
                // one register apart; each pass doubles the gap, so this
                // runs at most four times (distance >= 2).
                let mut gap = distance;
                while gap < 16 && dst < end {
                    std::ptr::copy_nonoverlapping(src, dst, gap);
                    dst = dst.add(gap);
                    gap *= 2;
                }
                while dst < end {
                    std::ptr::copy_nonoverlapping(src, dst, 16);
                    src = src.add(16);
                    dst = dst.add(16);
                }
            }
            self.out.set_len(len + length);
        }
    }
}

/// Decodes DEFLATE blocks starting at the reader's current position,
/// appending plain bytes to `out`.
///
/// * `window` — up to 32 KiB of decompressed data preceding this position
///   (empty at the start of a stream).
/// * `stop_offset` — bit offset at which to stop before the next Dynamic or
///   Non-Compressed block (use `u64::MAX` to decode the whole stream).
pub fn inflate(
    reader: &mut BitReader<'_>,
    window: &[u8],
    out: &mut Vec<u8>,
    stop_offset: u64,
) -> Result<InflateOutcome, DeflateError> {
    inflate_impl(reader, window, out, stop_offset, usize::MAX, false, true)
}

/// [`inflate`] decoding through the single-symbol reference decoder instead
/// of the multi-symbol fast path.
///
/// Behaviour is bit-for-bit identical to [`inflate`]; this entry point exists
/// so differential tests can assert exactly that, and so the benchmark
/// harness (`table2_components`) can measure the fast path's speedup against
/// the decoder the paper describes.
pub fn inflate_single_symbol(
    reader: &mut BitReader<'_>,
    window: &[u8],
    out: &mut Vec<u8>,
    stop_offset: u64,
) -> Result<InflateOutcome, DeflateError> {
    inflate_impl(reader, window, out, stop_offset, usize::MAX, false, false)
}

/// [`inflate`] that additionally computes the CRC-32 of the bytes it appends
/// to `out`, reported in [`InflateOutcome::crc32`].  Because one inflate call
/// never crosses a gzip member boundary, the hash of one call is exactly the
/// member-CRC fragment the verification pipeline folds with
/// `crc32_combine` — and it is computed here, on the thread that decoded the
/// data, so hashing parallelizes with decompression across chunks.
pub fn inflate_hashed(
    reader: &mut BitReader<'_>,
    window: &[u8],
    out: &mut Vec<u8>,
    stop_offset: u64,
) -> Result<InflateOutcome, DeflateError> {
    inflate_impl(reader, window, out, stop_offset, usize::MAX, true, true)
}

/// [`inflate`] with an upper bound on the total length of `out`: decoding an
/// *untrusted* stream fails with [`DeflateError::OutputLimitExceeded`] as
/// soon as it expands past `output_limit` (give or take one match), instead
/// of ballooning a hostile 32 KiB payload into tens of megabytes.
pub fn inflate_limited(
    reader: &mut BitReader<'_>,
    window: &[u8],
    out: &mut Vec<u8>,
    stop_offset: u64,
    output_limit: usize,
) -> Result<InflateOutcome, DeflateError> {
    inflate_impl(reader, window, out, stop_offset, output_limit, false, true)
}

/// Minimum remaining input (bits) for a Dynamic Block to take the
/// multi-symbol fast path; below this the packed-table build dominates the
/// block's decode time. 16 Kibit = 2 KiB of compressed payload, roughly a
/// thousand symbols.
const DYNAMIC_FAST_MIN_REMAINING_BITS: u64 = 16 * 1024;

fn inflate_impl(
    reader: &mut BitReader<'_>,
    window: &[u8],
    out: &mut Vec<u8>,
    stop_offset: u64,
    output_limit: usize,
    hash_output: bool,
    fast: bool,
) -> Result<InflateOutcome, DeflateError> {
    let start_len = out.len();
    let mut sink = ByteSink::new(window, std::mem::take(out), output_limit);
    let base = start_len as u64;

    let mut blocks = Vec::new();
    let mut fast_fallback_blocks = 0u32;
    let stop_reason = loop {
        if should_stop_before_block(reader, stop_offset) {
            break StopReason::StopOffsetReached;
        }
        if reader.remaining_bits() == 0 && !blocks.is_empty() {
            break StopReason::EndOfInput;
        }
        let block_start = reader.position();
        let header = read_block_header(reader)?;
        blocks.push(BlockBoundary {
            bit_offset: block_start,
            uncompressed_offset: sink.out.len() as u64 - base,
            block_type: header.block_type,
            is_final: header.is_final,
        });
        match header.block_type {
            BlockType::Stored => {
                let length = read_stored_header(reader)?;
                let start = sink.out.len();
                if start.saturating_add(length) > sink.limit {
                    return Err(DeflateError::OutputLimitExceeded { limit: sink.limit });
                }
                sink.out.resize(start + length, 0);
                reader.read_bytes(&mut sink.out[start..])?;
            }
            BlockType::Fixed => {
                if fast {
                    decode_compressed_block_bytes_fast(
                        reader,
                        fixed_block_codes_fast(),
                        &mut sink,
                    )?;
                } else {
                    let codes = fixed_block_codes();
                    decode_compressed_block_bytes(
                        reader,
                        &codes.literal,
                        codes.distance.as_ref(),
                        &mut sink,
                    )?;
                }
            }
            BlockType::Dynamic => {
                // Building the 8K-entry packed table costs about as much as
                // decoding a thousand symbols; when the remaining input
                // cannot contain a block large enough to amortise that,
                // decode through the reference tables (identical output).
                if fast && reader.remaining_bits() >= DYNAMIC_FAST_MIN_REMAINING_BITS {
                    let codes = dynamic_block_codes_fast(reader)?;
                    decode_compressed_block_bytes_fast(reader, &codes, &mut sink)?;
                } else {
                    if fast {
                        fast_fallback_blocks += 1;
                    }
                    let codes = dynamic_block_codes(reader)?;
                    decode_compressed_block_bytes(
                        reader,
                        &codes.literal,
                        codes.distance.as_ref(),
                        &mut sink,
                    )?;
                }
            }
        }
        if header.is_final {
            break StopReason::EndOfStream;
        }
    };

    *out = sink.out;
    // Hashing after the decode loop keeps the per-byte hot path untouched;
    // the slicing-by-eight CRC makes this one cheap linear pass.
    let crc32 = hash_output.then(|| rgz_checksum::crc32(&out[start_len..]));
    Ok(InflateOutcome {
        blocks,
        stop_reason,
        end_position: reader.position(),
        window_usage: sink.usage.intervals(),
        crc32,
        fast_fallback_blocks,
    })
}

/// Decodes one literal/length symbol through the bounds-checked reference
/// decoder and applies it to the sink. Returns `true` when the symbol ended
/// the block.
#[inline]
fn decode_one_symbol(
    reader: &mut BitReader<'_>,
    literal: &HuffmanDecoder,
    distance_decoder: Option<&HuffmanDecoder>,
    sink: &mut ByteSink<'_>,
) -> Result<bool, DeflateError> {
    let symbol = literal
        .decode(reader)
        .map_err(DeflateError::InvalidLiteralCode)?;
    if symbol < 256 {
        sink.push_literal(symbol as u8);
    } else if symbol == END_OF_BLOCK {
        return Ok(true);
    } else {
        let length = decode_length(symbol, reader)?;
        let distance = decode_distance(distance_decoder, reader)?;
        sink.copy_match(distance, length)?;
    }
    Ok(false)
}

fn decode_compressed_block_bytes(
    reader: &mut BitReader<'_>,
    literal: &HuffmanDecoder,
    distance_decoder: Option<&HuffmanDecoder>,
    sink: &mut ByteSink<'_>,
) -> Result<(), DeflateError> {
    loop {
        // Checked once per symbol, so a hostile stream can overshoot the
        // limit by at most one match (258 bytes) before erroring out.
        if sink.out.len() > sink.limit {
            return Err(DeflateError::OutputLimitExceeded { limit: sink.limit });
        }
        if decode_one_symbol(reader, literal, distance_decoder, sink)? {
            return Ok(());
        }
    }
}

/// Worst-case number of buffered bits one fast-path step consumes without
/// further bounds checks: a full table lookup plus a length symbol's extra
/// bits. (Distance codes are decoded through the checked reference decoder,
/// which refills on its own.)
const FAST_STEP_BITS: u32 = FAST_TABLE_BITS + MAX_LENGTH_EXTRA_BITS;

/// The multi-symbol hot loop (the paper's stated single-core gap versus
/// ISA-L, §4.1): one [`BitReader::fill_buffer`] refill amortises over several
/// table hits, and each hit resolves up to two symbols.
///
/// Behaviour is bit-for-bit identical to [`decode_compressed_block_bytes`]:
/// patterns the fast table cannot resolve (codes longer than
/// [`FAST_TABLE_BITS`] bits, invalid codes) and near-end-of-input tails are
/// delegated to the reference decoder, which also reproduces its exact
/// errors.
fn decode_compressed_block_bytes_fast(
    reader: &mut BitReader<'_>,
    codes: &FastBlockCodes,
    sink: &mut ByteSink<'_>,
) -> Result<(), DeflateError> {
    loop {
        reader.fill_buffer();
        if reader.cached_bits() < FAST_STEP_BITS {
            // Fewer than FAST_STEP_BITS bits left in the *entire input* (a
            // refill otherwise always buffers more): finish the block — at
            // most a couple of symbols — through the checked reference loop.
            return decode_compressed_block_bytes(
                reader,
                &codes.literal,
                codes.distance.as_ref(),
                sink,
            );
        }
        while reader.cached_bits() >= FAST_STEP_BITS {
            if sink.out.len() > sink.limit {
                return Err(DeflateError::OutputLimitExceeded { limit: sink.limit });
            }
            let entry = codes
                .literal_fast
                .entry(reader.peek_cached(FAST_TABLE_BITS));
            match entry.kind() {
                FastEntryKind::LiteralTriple => {
                    reader.consume_cached(entry.consumed_bits());
                    sink.out.extend_from_slice(&[
                        entry.literal(),
                        entry.second_literal(),
                        entry.third_literal(),
                    ]);
                }
                FastEntryKind::LiteralPair => {
                    reader.consume_cached(entry.consumed_bits());
                    sink.out
                        .extend_from_slice(&[entry.literal(), entry.second_literal()]);
                }
                FastEntryKind::Literal => {
                    reader.consume_cached(entry.consumed_bits());
                    sink.push_literal(entry.literal());
                }
                FastEntryKind::Length => {
                    reader.consume_cached(entry.consumed_bits());
                    finish_fast_match(reader, codes, sink, entry)?;
                }
                FastEntryKind::LiteralLength => {
                    reader.consume_cached(entry.consumed_bits());
                    sink.push_literal(entry.literal());
                    finish_fast_match(reader, codes, sink, entry)?;
                }
                FastEntryKind::EndOfBlock => {
                    reader.consume_cached(entry.consumed_bits());
                    return Ok(());
                }
                FastEntryKind::Fallback => {
                    if decode_one_symbol(reader, &codes.literal, codes.distance.as_ref(), sink)? {
                        return Ok(());
                    }
                }
            }
        }
    }
}

/// Worst-case buffered bits a distance resolution consumes: a maximum-length
/// distance code plus its extra bits (13 for codes 28/29).
const FAST_DISTANCE_BITS: u32 =
    rgz_huffman::MAX_CODE_LENGTH + crate::constants::DISTANCE_EXTRA_BITS[29] as u32;

/// Completes a match whose length symbol came out of the fast table: reads
/// the cached number of extra bits from the buffer, then resolves the
/// distance — from the buffer too when one refill covers the worst case,
/// through the checked reference path otherwise (near end of input).
#[inline]
fn finish_fast_match(
    reader: &mut BitReader<'_>,
    codes: &FastBlockCodes,
    sink: &mut ByteSink<'_>,
    entry: rgz_huffman::FastEntry,
) -> Result<(), DeflateError> {
    let extra_bits = entry.length_extra_bits();
    let extra = reader.peek_cached(extra_bits) as usize;
    reader.consume_cached(extra_bits);
    let length = entry.length_base() as usize + extra;

    reader.fill_buffer();
    let distance = if reader.cached_bits() >= FAST_DISTANCE_BITS {
        let decoder = codes
            .distance
            .as_ref()
            .ok_or(DeflateError::BackReferenceWithoutDistanceCode)?;
        let symbol = decoder
            .decode_cached(reader)
            .map_err(DeflateError::InvalidDistanceCode)?;
        let index = symbol as usize;
        if index >= crate::constants::DISTANCE_BASE.len() {
            return Err(DeflateError::InvalidDistanceSymbol(symbol));
        }
        let distance_extra_bits = crate::constants::DISTANCE_EXTRA_BITS[index] as u32;
        let distance_extra = reader.peek_cached(distance_extra_bits) as usize;
        reader.consume_cached(distance_extra_bits);
        crate::constants::DISTANCE_BASE[index] as usize + distance_extra
    } else {
        decode_distance(codes.distance.as_ref(), reader)?
    };
    sink.copy_match(distance, length)
}

// --- two-stage decoding ------------------------------------------------------

/// Two-stage decoder sink: 16-bit output where values `< 256` are literals
/// and values `>= MARKER_BASE` are markers into the unknown window.
struct MarkerSink {
    out: Vec<u16>,
    usage: WindowUsage,
}

impl MarkerSink {
    #[inline]
    fn push_literal(&mut self, byte: u8) {
        self.out.push(byte as u16);
    }

    #[inline]
    fn copy_match(
        &mut self,
        distance: usize,
        length: usize,
        base: usize,
    ) -> Result<(), DeflateError> {
        if distance == 0 || distance > WINDOW_SIZE {
            return Err(DeflateError::DistanceTooFar {
                distance,
                available: WINDOW_SIZE,
            });
        }
        let start_position = self.out.len() - base;
        if distance > start_position {
            let reach = distance - start_position;
            self.usage.mark(WINDOW_SIZE - reach, length.min(reach));
        }
        for _ in 0..length {
            // Position within this inflate call (excluding data decoded by
            // previous calls appended to the same buffer).
            let position = self.out.len() - base;
            let symbol = if distance <= position {
                self.out[self.out.len() - distance]
            } else {
                // Reference into the unknown preceding window.  The window
                // offset counts from the oldest window byte; the byte at
                // distance `d` behind position `p` sits `d - p` bytes before
                // the chunk, i.e. at window offset `WINDOW_SIZE - (d - p)`.
                let window_offset = WINDOW_SIZE - (distance - position);
                MARKER_BASE + window_offset as u16
            };
            self.out.push(symbol);
        }
        Ok(())
    }
}

/// Decodes DEFLATE blocks without knowing the preceding window, appending
/// 16-bit symbols (literals or markers) to `out`.
///
/// References that reach before the start of *this call's* output become
/// markers; pass the output of a previous call in `out` and its length as
/// implicit context is **not** used — each call treats its own start as the
/// window boundary, matching how chunks are decoded independently.
pub fn inflate_two_stage(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u16>,
    stop_offset: u64,
) -> Result<InflateOutcome, DeflateError> {
    let base = out.len();
    let mut sink = MarkerSink {
        out: std::mem::take(out),
        usage: WindowUsage::new(),
    };

    let mut blocks = Vec::new();
    let stop_reason = loop {
        if should_stop_before_block(reader, stop_offset) {
            break StopReason::StopOffsetReached;
        }
        if reader.remaining_bits() == 0 && !blocks.is_empty() {
            break StopReason::EndOfInput;
        }
        let block_start = reader.position();
        let header = read_block_header(reader)?;
        blocks.push(BlockBoundary {
            bit_offset: block_start,
            uncompressed_offset: (sink.out.len() - base) as u64,
            block_type: header.block_type,
            is_final: header.is_final,
        });
        match header.block_type {
            BlockType::Stored => {
                let length = read_stored_header(reader)?;
                let mut buffer = vec![0u8; length];
                reader.read_bytes(&mut buffer)?;
                sink.out.extend(buffer.iter().map(|&b| b as u16));
            }
            BlockType::Fixed => {
                decode_compressed_block_markers(reader, &fixed_block_codes(), &mut sink, base)?;
            }
            BlockType::Dynamic => {
                let codes = dynamic_block_codes(reader)?;
                decode_compressed_block_markers(reader, &codes, &mut sink, base)?;
            }
        }
        if header.is_final {
            break StopReason::EndOfStream;
        }
    };

    *out = sink.out;
    Ok(InflateOutcome {
        blocks,
        stop_reason,
        end_position: reader.position(),
        window_usage: sink.usage.intervals(),
        crc32: None,
        fast_fallback_blocks: 0,
    })
}

fn decode_compressed_block_markers(
    reader: &mut BitReader<'_>,
    codes: &BlockCodes,
    sink: &mut MarkerSink,
    base: usize,
) -> Result<(), DeflateError> {
    loop {
        let symbol = codes
            .literal
            .decode(reader)
            .map_err(DeflateError::InvalidLiteralCode)?;
        if symbol < 256 {
            sink.push_literal(symbol as u8);
        } else if symbol == END_OF_BLOCK {
            return Ok(());
        } else {
            let length = decode_length(symbol, reader)?;
            let distance = decode_distance(codes.distance.as_ref(), reader)?;
            sink.copy_match(distance, length, base)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{CompressionLevel, CompressorOptions, DeflateCompressor};

    fn compress(data: &[u8]) -> Vec<u8> {
        DeflateCompressor::new(CompressorOptions::default()).compress(data)
    }

    #[test]
    fn round_trip_simple_text() {
        let data = b"How much wood would a woodchuck chuck if a woodchuck could chuck wood?";
        let compressed = compress(data);
        let mut reader = BitReader::new(&compressed);
        let mut out = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        assert_eq!(out, data);
        assert!(outcome.stream_ended());
        assert!(!outcome.blocks.is_empty());
        assert_eq!(outcome.blocks[0].bit_offset, 0);
    }

    #[test]
    fn round_trip_empty_input() {
        let compressed = compress(b"");
        let mut reader = BitReader::new(&compressed);
        let mut out = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        assert!(out.is_empty());
        assert!(outcome.stream_ended());
    }

    #[test]
    fn inflate_hashed_reports_the_crc_of_the_appended_bytes() {
        let data = b"hash me, hash me thoroughly ".repeat(3000);
        let compressed = compress(&data);
        let mut reader = BitReader::new(&compressed);
        // Pre-existing buffer contents must not leak into the hash.
        let mut out = b"prefix".to_vec();
        let outcome = inflate_hashed(&mut reader, &[], &mut out, u64::MAX).unwrap();
        assert_eq!(&out[6..], &data[..]);
        assert_eq!(outcome.crc32, Some(rgz_checksum::crc32(&data)));

        // The unhashed entry points report no checksum.
        let mut reader = BitReader::new(&compressed);
        let mut plain = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut plain, u64::MAX).unwrap();
        assert_eq!(outcome.crc32, None);
    }

    #[test]
    fn stored_blocks_round_trip() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let options = CompressorOptions {
            level: CompressionLevel::Stored,
            ..Default::default()
        };
        let compressed = DeflateCompressor::new(options).compress(&data);
        let mut reader = BitReader::new(&compressed);
        let mut out = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        assert_eq!(out, data);
        // 200 kB needs at least four 64 KiB stored blocks.
        assert!(outcome.blocks.len() >= 4);
        assert!(outcome
            .blocks
            .iter()
            .all(|b| b.block_type == BlockType::Stored));
    }

    #[test]
    fn window_continuation_between_calls() {
        // Compress data, decode it in full, then decode only the second block
        // by passing the first block's output as the window.
        let mut data = Vec::new();
        for i in 0..50_000u32 {
            data.extend_from_slice(format!("line {} of repetitive text\n", i % 100).as_bytes());
        }
        let options = CompressorOptions {
            block_size: 16 * 1024,
            ..Default::default()
        };
        let compressed = DeflateCompressor::new(options).compress(&data);
        let mut reader = BitReader::new(&compressed);
        let mut full = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut full, u64::MAX).unwrap();
        assert_eq!(full, data);
        assert!(
            outcome.blocks.len() > 2,
            "need multiple blocks for this test"
        );

        let second_block = outcome.blocks[1];
        let mut reader = BitReader::new(&compressed);
        reader.seek_to_bit(second_block.bit_offset).unwrap();
        let split = second_block.uncompressed_offset as usize;
        let window_start = split.saturating_sub(WINDOW_SIZE);
        let mut tail = Vec::new();
        inflate(&mut reader, &data[window_start..split], &mut tail, u64::MAX).unwrap();
        assert_eq!(&tail[..], &data[split..]);
    }

    #[test]
    fn two_stage_with_markers_then_replacement() {
        let mut data = Vec::new();
        for i in 0..60_000u32 {
            data.extend_from_slice(format!("record {:06} ACGTACGT\n", i % 997).as_bytes());
        }
        let options = CompressorOptions {
            block_size: 8 * 1024,
            ..Default::default()
        };
        let compressed = DeflateCompressor::new(options).compress(&data);
        let mut reader = BitReader::new(&compressed);
        let mut full = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut full, u64::MAX).unwrap();
        assert_eq!(full, data);

        // Pick a block boundary beyond 32 KiB so back-references hit the
        // unknown window.
        let boundary = outcome
            .blocks
            .iter()
            .find(|b| b.uncompressed_offset > WINDOW_SIZE as u64)
            .copied()
            .expect("need a block past the first 32 KiB");
        let mut reader = BitReader::new(&compressed);
        reader.seek_to_bit(boundary.bit_offset).unwrap();
        let mut symbols = Vec::new();
        inflate_two_stage(&mut reader, &mut symbols, u64::MAX).unwrap();
        assert!(
            symbols.iter().any(|&s| s >= MARKER_BASE),
            "expected markers"
        );

        let split = boundary.uncompressed_offset as usize;
        let window = &data[split - WINDOW_SIZE..split];
        let resolved = crate::markers::replace_markers(&symbols, window).unwrap();
        assert_eq!(&resolved[..], &data[split..]);
    }

    #[test]
    fn one_and_two_stage_decoders_report_the_same_window_usage() {
        let mut data = Vec::new();
        for i in 0..60_000u32 {
            data.extend_from_slice(format!("record {:06} ACGTACGT\n", i % 997).as_bytes());
        }
        let options = CompressorOptions {
            block_size: 8 * 1024,
            ..Default::default()
        };
        let compressed = DeflateCompressor::new(options).compress(&data);
        let mut reader = BitReader::new(&compressed);
        let mut full = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut full, u64::MAX).unwrap();
        // A stream decoded from its start references no preceding window.
        assert!(outcome.window_usage.is_empty());

        let boundary = outcome
            .blocks
            .iter()
            .find(|b| b.uncompressed_offset > WINDOW_SIZE as u64)
            .copied()
            .expect("need a block past the first 32 KiB");
        let split = boundary.uncompressed_offset as usize;
        let window = &data[split - WINDOW_SIZE..split];

        // Two-stage decode: usage from the outcome must match a scan of the
        // produced marker symbols.
        let mut reader = BitReader::new(&compressed);
        reader.seek_to_bit(boundary.bit_offset).unwrap();
        let mut symbols = Vec::new();
        let two_stage = inflate_two_stage(&mut reader, &mut symbols, u64::MAX).unwrap();
        assert!(!two_stage.window_usage.is_empty());
        assert_eq!(
            two_stage.window_usage,
            WindowUsage::from_symbols(&symbols).intervals()
        );

        // One-stage decode of the same range with the true window must report
        // the same usage.
        let mut reader = BitReader::new(&compressed);
        reader.seek_to_bit(boundary.bit_offset).unwrap();
        let mut tail = Vec::new();
        let one_stage = inflate(&mut reader, window, &mut tail, u64::MAX).unwrap();
        assert_eq!(one_stage.window_usage, two_stage.window_usage);

        // Zeroing every *unreferenced* window byte must not change the decode.
        let mut masked = vec![0u8; WINDOW_SIZE];
        for &(offset, length) in &one_stage.window_usage {
            let (offset, length) = (offset as usize, length as usize);
            masked[offset..offset + length].copy_from_slice(&window[offset..offset + length]);
        }
        let mut reader = BitReader::new(&compressed);
        reader.seek_to_bit(boundary.bit_offset).unwrap();
        let mut from_masked = Vec::new();
        inflate(&mut reader, &masked, &mut from_masked, u64::MAX).unwrap();
        assert_eq!(from_masked, tail);
        assert_eq!(&tail[..], &data[split..]);
    }

    #[test]
    fn stop_offset_halts_before_later_blocks() {
        let data: Vec<u8> = (0..100_000u32)
            .flat_map(|i| format!("{i} ").into_bytes())
            .collect();
        let options = CompressorOptions {
            block_size: 8 * 1024,
            ..Default::default()
        };
        let compressed = DeflateCompressor::new(options).compress(&data);
        let mut reader = BitReader::new(&compressed);
        let mut full = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut full, u64::MAX).unwrap();
        assert!(outcome.blocks.len() > 3);

        // Stop just after the start of block 2: the decoder must decode
        // blocks 0..=1 up to (but not including) block 2.
        let stop = outcome.blocks[1].bit_offset + 1;
        let mut reader = BitReader::new(&compressed);
        let mut partial = Vec::new();
        let partial_outcome = inflate(&mut reader, &[], &mut partial, stop).unwrap();
        assert_eq!(partial_outcome.stop_reason, StopReason::StopOffsetReached);
        assert_eq!(partial_outcome.blocks.len(), 2);
        assert_eq!(partial_outcome.end_position, outcome.blocks[2].bit_offset);
        assert_eq!(&partial[..], &data[..partial.len()]);
    }

    #[test]
    fn invalid_distance_is_reported() {
        // A back-reference at stream start with no window must fail in
        // one-stage mode.
        let mut data = Vec::new();
        for i in 0..50_000u32 {
            data.extend_from_slice(format!("{} abcabcabc ", i % 3).as_bytes());
        }
        let compressed = compress(&data);
        let mut reader = BitReader::new(&compressed);
        let mut out = Vec::new();
        inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        // Re-decode from the second block without providing the window.
        let mut reader = BitReader::new(&compressed);
        let mut out2 = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut out2, u64::MAX).unwrap();
        drop(outcome);
        // Direct unit check of the sink error.
        let mut sink = ByteSink::new(&[], Vec::new(), usize::MAX);
        assert!(matches!(
            sink.copy_match(5, 3),
            Err(DeflateError::DistanceTooFar { .. })
        ));
    }

    /// Drives both decode paths over the same bytes and asserts identical
    /// results: output, outcome metadata, and (on failure) the exact error.
    fn assert_paths_agree(compressed: &[u8], window: &[u8]) {
        let mut fast_reader = BitReader::new(compressed);
        let mut fast_out = Vec::new();
        let fast = inflate(&mut fast_reader, window, &mut fast_out, u64::MAX);
        let mut reference_reader = BitReader::new(compressed);
        let mut reference_out = Vec::new();
        let reference =
            inflate_single_symbol(&mut reference_reader, window, &mut reference_out, u64::MAX);
        match (fast, reference) {
            (Ok(fast), Ok(reference)) => {
                assert_eq!(fast_out, reference_out);
                assert_eq!(fast.stop_reason, reference.stop_reason);
                assert_eq!(fast.end_position, reference.end_position);
                assert_eq!(fast.window_usage, reference.window_usage);
                assert_eq!(fast.blocks, reference.blocks);
            }
            (fast, reference) => assert_eq!(fast.err(), reference.err()),
        }
    }

    #[test]
    fn fast_path_matches_reference_on_all_compression_levels() {
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.extend_from_slice(format!("entry {:05} AAAA text\n", i % 777).as_bytes());
        }
        for level in [
            CompressionLevel::Stored,
            CompressionLevel::Huffman,
            CompressionLevel::Fast,
            CompressionLevel::Best,
        ] {
            let options = CompressorOptions {
                level,
                block_size: 12 * 1024,
                ..Default::default()
            };
            let compressed = DeflateCompressor::new(options).compress(&data);
            assert_paths_agree(&compressed, &[]);
        }
    }

    #[test]
    fn fast_path_matches_reference_with_window_and_markers_corpus() {
        let mut data = Vec::new();
        for i in 0..60_000u32 {
            data.extend_from_slice(format!("record {:06} ACGTACGT\n", i % 997).as_bytes());
        }
        let options = CompressorOptions {
            block_size: 8 * 1024,
            ..Default::default()
        };
        let compressed = DeflateCompressor::new(options).compress(&data);
        let mut reader = BitReader::new(&compressed);
        let mut full = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut full, u64::MAX).unwrap();
        let boundary = outcome
            .blocks
            .iter()
            .find(|b| b.uncompressed_offset > WINDOW_SIZE as u64)
            .copied()
            .expect("need a block past the first 32 KiB");
        let split = boundary.uncompressed_offset as usize;
        let window = &data[split - WINDOW_SIZE..split];
        let tail = &compressed[(boundary.bit_offset / 8) as usize..];
        // Byte-aligned tails only (assert_paths_agree starts at bit 0), so
        // pad by re-seeking instead when unaligned.
        if boundary.bit_offset % 8 == 0 {
            assert_paths_agree(tail, window);
        }
        let mut fast_reader = BitReader::new(&compressed);
        fast_reader.seek_to_bit(boundary.bit_offset).unwrap();
        let mut fast_out = Vec::new();
        inflate(&mut fast_reader, window, &mut fast_out, u64::MAX).unwrap();
        let mut reference_reader = BitReader::new(&compressed);
        reference_reader.seek_to_bit(boundary.bit_offset).unwrap();
        let mut reference_out = Vec::new();
        inflate_single_symbol(&mut reference_reader, window, &mut reference_out, u64::MAX).unwrap();
        assert_eq!(fast_out, reference_out);
        assert_eq!(&fast_out[..], &data[split..]);
    }

    #[test]
    fn overshoot_copy_matches_scalar_on_boundary_cases() {
        // Distances straddling the period-replication and register-copy
        // regimes, lengths straddling the register size.
        for distance in [1usize, 2, 3, 7, 8, 15, 16, 17, 31, 32, 200] {
            for length in [1usize, 2, 3, 15, 16, 17, 31, 32, 33, 258] {
                let seed: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
                let mut fast = ByteSink::new(&[], seed.clone(), usize::MAX);
                fast.scalar_copies = false;
                fast.copy_within_output(distance, length);
                let mut scalar = ByteSink::new(&[], seed, usize::MAX);
                scalar.scalar_copies = true;
                scalar.copy_within_output(distance, length);
                assert_eq!(fast.out, scalar.out, "distance {distance} length {length}");
            }
        }
    }

    proptest::proptest! {
        /// The overshooting vector match copy must be byte-identical to the
        /// portable doubling reference over arbitrary literal/copy op
        /// sequences (overlapping and straddling matches included).
        #[test]
        fn overshoot_and_scalar_match_copies_are_identical(
            ops in proptest::collection::vec(
                (proptest::prelude::any::<u8>(), 1usize..300, 1usize..300),
                1..60,
            ),
        ) {
            let mut fast = ByteSink::new(&[], vec![7u8], usize::MAX);
            fast.scalar_copies = false;
            let mut scalar = ByteSink::new(&[], vec![7u8], usize::MAX);
            scalar.scalar_copies = true;
            for (literal, distance, length) in ops {
                fast.push_literal(literal);
                scalar.push_literal(literal);
                let distance = 1 + distance % fast.out.len();
                fast.copy_within_output(distance, length);
                scalar.copy_within_output(distance, length);
                proptest::prop_assert_eq!(&fast.out, &scalar.out);
            }
        }

        /// The tentpole guarantee: on arbitrary compressible inputs, dynamic
        /// block sizes and corruption (single-bit flips or truncation), the
        /// multi-symbol fast path and the single-symbol reference decoder are
        /// bit-for-bit identical — same bytes, same metadata, same errors.
        #[test]
        fn fast_and_reference_paths_are_identical(
            seed in proptest::prelude::any::<u64>(),
            length in 1usize..40_000,
            block_size in 4usize..64,
            // 0 encodes "no corruption" / "no truncation".
            flip_bit in 0usize..100_000,
            truncate_at in 0usize..100_000,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            // Mixed compressibility: runs, random bytes, repeated phrases.
            let mut data = Vec::with_capacity(length);
            while data.len() < length {
                match rng.gen_range(0..3) {
                    0 => data.extend(std::iter::repeat_n(rng.gen::<u8>(), rng.gen_range(1..200))),
                    1 => data.extend((0..rng.gen_range(1..200)).map(|_| rng.gen::<u8>())),
                    _ => data.extend_from_slice(b"the quick brown fox jumps over the lazy dog "),
                }
            }
            data.truncate(length);
            let options = CompressorOptions {
                block_size: block_size * 1024,
                ..Default::default()
            };
            let mut compressed = DeflateCompressor::new(options).compress(&data);
            if flip_bit > 0 {
                let bit = flip_bit % (compressed.len() * 8);
                compressed[bit / 8] ^= 1 << (bit % 8);
            }
            if truncate_at > 0 {
                compressed.truncate(truncate_at.min(compressed.len()));
            }
            assert_paths_agree(&compressed, &[]);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let data = vec![7u8; 100_000];
        let compressed = compress(&data);
        let truncated = &compressed[..compressed.len() / 2];
        let mut reader = BitReader::new(truncated);
        let mut out = Vec::new();
        assert!(inflate(&mut reader, &[], &mut out, u64::MAX).is_err());
    }
}
