//! DEFLATE block header parsing shared by the one-stage inflater, the
//! two-stage inflater and the "custom deflate" block-finder variant.

use std::sync::OnceLock;

use rgz_bitio::BitReader;
use rgz_huffman::{HuffmanDecoder, MultiSymbolDecoder};

use crate::constants::*;
use crate::DeflateError;

/// The three DEFLATE block types (plus the reserved encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockType {
    /// BTYPE = 00 — Non-Compressed Block.
    Stored,
    /// BTYPE = 01 — compressed with the fixed Huffman codes.
    Fixed,
    /// BTYPE = 10 — compressed with dynamic Huffman codes.
    Dynamic,
}

impl BlockType {
    /// Decodes the two BTYPE bits.
    pub fn from_bits(bits: u64) -> Result<Self, DeflateError> {
        match bits {
            0b00 => Ok(BlockType::Stored),
            0b01 => Ok(BlockType::Fixed),
            0b10 => Ok(BlockType::Dynamic),
            _ => Err(DeflateError::ReservedBlockType),
        }
    }
}

/// A parsed block header: final-block flag plus type.
#[derive(Debug, Clone, Copy)]
pub struct BlockHeader {
    pub is_final: bool,
    pub block_type: BlockType,
}

/// Reads the 3-bit block header (BFINAL + BTYPE).
pub fn read_block_header(reader: &mut BitReader<'_>) -> Result<BlockHeader, DeflateError> {
    let is_final = reader.read_bit()?;
    let block_type = BlockType::from_bits(reader.read(2)?)?;
    Ok(BlockHeader {
        is_final,
        block_type,
    })
}

/// The pair of Huffman decoders a compressed block uses.
#[derive(Debug, Clone)]
pub struct BlockCodes {
    pub literal: HuffmanDecoder,
    /// `None` when the block declares no usable distance code; any
    /// back-reference is then an error.
    pub distance: Option<HuffmanDecoder>,
}

/// Builds the decoders for a Fixed Block (BTYPE = 01).
pub fn fixed_block_codes() -> BlockCodes {
    BlockCodes {
        literal: HuffmanDecoder::from_code_lengths(&fixed_literal_lengths())
            .expect("fixed literal code is valid"),
        distance: Some(
            HuffmanDecoder::from_code_lengths(&fixed_distance_lengths())
                .expect("fixed distance code is valid"),
        ),
    }
}

/// The decoders the one-stage fast path uses for a compressed block: the
/// multi-symbol literal table plus the single-symbol decoders it falls back
/// to (over-long codes, near-end-of-input tails) and the distance decoder.
///
/// The two-stage (marker) decoder keeps using [`BlockCodes`]: marker symbols
/// cannot be packed, so it never pays for the fast table.
#[derive(Debug, Clone)]
pub struct FastBlockCodes {
    /// Single-symbol literal/length decoder — the exact reference fallback.
    pub literal: HuffmanDecoder,
    /// Multi-symbol literal/length fast table.
    pub literal_fast: MultiSymbolDecoder,
    /// `None` when the block declares no usable distance code; any
    /// back-reference is then an error.
    pub distance: Option<HuffmanDecoder>,
}

/// Fixed-block decoders for the fast path, built once per process: unlike
/// Dynamic Blocks the fixed code never changes, so rebuilding its tables for
/// every Fixed Block (as [`fixed_block_codes`] does) is pure overhead.
pub fn fixed_block_codes_fast() -> &'static FastBlockCodes {
    static CODES: OnceLock<FastBlockCodes> = OnceLock::new();
    CODES.get_or_init(|| {
        let literal_lengths = fixed_literal_lengths();
        FastBlockCodes {
            literal: HuffmanDecoder::from_code_lengths(&literal_lengths)
                .expect("fixed literal code is valid"),
            literal_fast: MultiSymbolDecoder::from_code_lengths(&literal_lengths)
                .expect("fixed literal code is valid"),
            distance: Some(
                HuffmanDecoder::from_code_lengths(&fixed_distance_lengths())
                    .expect("fixed distance code is valid"),
            ),
        }
    })
}

/// Parses a Dynamic Block header and builds the fast-path decoders for its
/// body (the multi-symbol table plus the single-symbol fallback).
pub fn dynamic_block_codes_fast(
    reader: &mut BitReader<'_>,
) -> Result<FastBlockCodes, DeflateError> {
    let header = parse_dynamic_header(reader)?;
    let literal = HuffmanDecoder::from_code_lengths(&header.literal_lengths)
        .map_err(DeflateError::InvalidLiteralCode)?;
    let literal_fast = MultiSymbolDecoder::from_code_lengths(&header.literal_lengths)
        .map_err(DeflateError::InvalidLiteralCode)?;
    let distance = match HuffmanDecoder::from_code_lengths(&header.distance_lengths) {
        Ok(decoder) => Some(decoder),
        Err(rgz_huffman::HuffmanError::EmptyAlphabet) => None,
        Err(error) => return Err(DeflateError::InvalidDistanceCode(error)),
    };
    Ok(FastBlockCodes {
        literal,
        literal_fast,
        distance,
    })
}

/// Raw contents of a Dynamic Block header, exposed for the block finder and
/// for tests.
#[derive(Debug, Clone)]
pub struct DynamicHeader {
    pub literal_lengths: Vec<u8>,
    pub distance_lengths: Vec<u8>,
}

/// Parses a Dynamic Block header (everything between BTYPE and the first
/// compressed symbol) and returns the code-length vectors.
///
/// All the structural checks the paper lists in §3.4.2 are applied: HLIT must
/// not exceed 286 symbols, the precode must form a valid code, the
/// precode-encoded run-length data must not overflow or start with a repeat,
/// and both final alphabets must form valid codes (checked by the caller when
/// it builds [`HuffmanDecoder`]s).
pub fn parse_dynamic_header(reader: &mut BitReader<'_>) -> Result<DynamicHeader, DeflateError> {
    let literal_count = reader.read(5)? as usize + 257;
    if literal_count > 286 {
        return Err(DeflateError::InvalidLiteralCodeCount(literal_count as u16));
    }
    let distance_count = reader.read(5)? as usize + 1;
    if distance_count > 30 {
        return Err(DeflateError::InvalidDistanceCodeCount(
            distance_count as u16,
        ));
    }
    let precode_count = reader.read(4)? as usize + 4;

    let mut precode_lengths = [0u8; PRECODE_ALPHABET_SIZE];
    for &position in PRECODE_ORDER.iter().take(precode_count) {
        precode_lengths[position] = reader.read(3)? as u8;
    }
    let precode = HuffmanDecoder::from_code_lengths(&precode_lengths)
        .map_err(DeflateError::InvalidPrecode)?;

    let total = literal_count + distance_count;
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let symbol = precode
            .decode(reader)
            .map_err(DeflateError::InvalidPrecode)?;
        match symbol {
            0..=15 => lengths.push(symbol as u8),
            16 => {
                let &previous = lengths
                    .last()
                    .ok_or(DeflateError::RepeatWithoutPreviousLength)?;
                let repeat = reader.read(2)? as usize + 3;
                if lengths.len() + repeat > total {
                    return Err(DeflateError::CodeLengthOverflow);
                }
                lengths.extend(std::iter::repeat_n(previous, repeat));
            }
            17 => {
                let repeat = reader.read(3)? as usize + 3;
                if lengths.len() + repeat > total {
                    return Err(DeflateError::CodeLengthOverflow);
                }
                lengths.extend(std::iter::repeat_n(0u8, repeat));
            }
            18 => {
                let repeat = reader.read(7)? as usize + 11;
                if lengths.len() + repeat > total {
                    return Err(DeflateError::CodeLengthOverflow);
                }
                lengths.extend(std::iter::repeat_n(0u8, repeat));
            }
            _ => return Err(DeflateError::CodeLengthOverflow),
        }
    }

    let distance_lengths = lengths.split_off(literal_count);
    Ok(DynamicHeader {
        literal_lengths: lengths,
        distance_lengths,
    })
}

/// Parses a Dynamic Block header and builds the decoders for its body.
pub fn dynamic_block_codes(reader: &mut BitReader<'_>) -> Result<BlockCodes, DeflateError> {
    let header = parse_dynamic_header(reader)?;
    let literal = HuffmanDecoder::from_code_lengths(&header.literal_lengths)
        .map_err(DeflateError::InvalidLiteralCode)?;
    let distance = match HuffmanDecoder::from_code_lengths(&header.distance_lengths) {
        Ok(decoder) => Some(decoder),
        Err(rgz_huffman::HuffmanError::EmptyAlphabet) => None,
        Err(error) => return Err(DeflateError::InvalidDistanceCode(error)),
    };
    Ok(BlockCodes { literal, distance })
}

/// Reads the LEN/NLEN header of a Non-Compressed Block (after byte
/// alignment) and returns the payload length.
pub fn read_stored_header(reader: &mut BitReader<'_>) -> Result<usize, DeflateError> {
    reader.align_to_byte();
    let length = reader.read_u16_le()?;
    let complement = reader.read_u16_le()?;
    if length != !complement {
        return Err(DeflateError::StoredLengthMismatch { length, complement });
    }
    Ok(length as usize)
}

/// Resolves a literal/length symbol above 256 to a match length.
#[inline]
pub fn decode_length(symbol: u16, reader: &mut BitReader<'_>) -> Result<usize, DeflateError> {
    if !(257..=285).contains(&symbol) {
        return Err(DeflateError::InvalidLengthSymbol(symbol));
    }
    let index = (symbol - 257) as usize;
    let extra = reader.read(LENGTH_EXTRA_BITS[index] as u32)? as usize;
    Ok(LENGTH_BASE[index] as usize + extra)
}

/// Resolves a distance symbol to a match distance.
///
/// `distance_decoder` is `None` when the block declared no usable distance
/// code (see [`BlockCodes::distance`] / [`FastBlockCodes::distance`]).
#[inline]
pub fn decode_distance(
    distance_decoder: Option<&HuffmanDecoder>,
    reader: &mut BitReader<'_>,
) -> Result<usize, DeflateError> {
    let decoder = distance_decoder.ok_or(DeflateError::BackReferenceWithoutDistanceCode)?;
    let symbol = decoder
        .decode(reader)
        .map_err(DeflateError::InvalidDistanceCode)?;
    if symbol as usize >= DISTANCE_BASE.len() {
        return Err(DeflateError::InvalidDistanceSymbol(symbol));
    }
    let index = symbol as usize;
    let extra = reader.read(DISTANCE_EXTRA_BITS[index] as u32)? as usize;
    Ok(DISTANCE_BASE[index] as usize + extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_bitio::BitWriter;

    #[test]
    fn block_type_bits_round_trip() {
        assert_eq!(BlockType::from_bits(0b00).unwrap(), BlockType::Stored);
        assert_eq!(BlockType::from_bits(0b01).unwrap(), BlockType::Fixed);
        assert_eq!(BlockType::from_bits(0b10).unwrap(), BlockType::Dynamic);
        assert!(BlockType::from_bits(0b11).is_err());
    }

    #[test]
    fn stored_header_checks_complement() {
        let mut writer = BitWriter::new();
        writer.write_bits(0, 3); // header bits, to force alignment skip
        writer.align_to_byte();
        writer.write_bits(5, 16);
        writer.write_bits((!5u16) as u64, 16);
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        reader.read(3).unwrap();
        assert_eq!(read_stored_header(&mut reader).unwrap(), 5);

        let mut writer = BitWriter::new();
        writer.write_bits(5, 16);
        writer.write_bits(1234, 16);
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        assert!(matches!(
            read_stored_header(&mut reader),
            Err(DeflateError::StoredLengthMismatch { .. })
        ));
    }

    #[test]
    fn fixed_codes_build() {
        let codes = fixed_block_codes();
        assert_eq!(codes.literal.max_code_length(), 9);
        assert_eq!(codes.distance.unwrap().max_code_length(), 5);
    }

    #[test]
    fn dynamic_header_rejects_bad_counts() {
        // HLIT = 31 (-> 288 literal codes) is invalid.
        let mut writer = BitWriter::new();
        writer.write_bits(31, 5);
        writer.write_bits(0, 5);
        writer.write_bits(0, 4);
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        assert!(matches!(
            parse_dynamic_header(&mut reader),
            Err(DeflateError::InvalidLiteralCodeCount(288))
        ));
    }

    #[test]
    fn repeat_without_previous_length_is_rejected() {
        // Build a header whose first precode symbol is 16 (copy previous).
        let mut writer = BitWriter::new();
        writer.write_bits(0, 5); // HLIT -> 257
        writer.write_bits(0, 5); // HDIST -> 1
        writer.write_bits(15, 4); // HCLEN -> 19
                                  // Precode lengths: give symbols 16 and 0 length 1, everything else 0.
        for &position in PRECODE_ORDER.iter() {
            let length = if position == 16 || position == 0 {
                1
            } else {
                0
            };
            writer.write_bits(length, 3);
        }
        // Canonical code: symbol 0 -> 0, symbol 16 -> 1. Emit symbol 16 first.
        writer.write_huffman_code(1, 1);
        writer.write_bits(0, 2);
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        assert!(matches!(
            parse_dynamic_header(&mut reader),
            Err(DeflateError::RepeatWithoutPreviousLength)
        ));
    }

    #[test]
    fn truncated_dynamic_header_reports_eof() {
        let bytes = [0b1010_1010u8];
        let mut reader = BitReader::new(&bytes);
        assert!(parse_dynamic_header(&mut reader).is_err());
    }
}
