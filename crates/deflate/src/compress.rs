//! A DEFLATE compressor.
//!
//! The paper's evaluation decompresses files produced by `gzip`, `pigz`,
//! `bgzip` and `igzip` at various levels; since this reproduction builds
//! everything from scratch, the corpora are produced by this compressor.  It
//! supports the knobs those tools differ in: match strategy (none / greedy /
//! lazy), DEFLATE block size, and block-type selection (stored / fixed /
//! dynamic, whichever is smallest), which is what Table 3 varies.

use rgz_bitio::BitWriter;
use rgz_huffman::{compute_code_lengths, HuffmanEncoder};

use crate::constants::*;
use crate::matchfinder::{HtMatchFinder, Token};

/// Match-finding effort, roughly corresponding to gzip levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionLevel {
    /// Emit Non-Compressed Blocks only (like `bgzip -l 0`).
    Stored,
    /// Huffman coding only, no LZ77 matches (like `igzip -0`).
    Huffman,
    /// Greedy matching with short hash chains (like `gzip -1`).
    Fast,
    /// Lazy matching with medium chains (like `gzip -6`).
    Default,
    /// Lazy matching with long chains (like `gzip -9`).
    Best,
}

impl CompressionLevel {
    /// Maps a numeric gzip-style level (0..=9) onto the nearest strategy.
    pub fn from_numeric(level: u8) -> Self {
        match level {
            0 => CompressionLevel::Stored,
            1..=3 => CompressionLevel::Fast,
            4..=8 => CompressionLevel::Default,
            _ => CompressionLevel::Best,
        }
    }

    pub(crate) fn max_chain(self) -> usize {
        match self {
            CompressionLevel::Stored | CompressionLevel::Huffman => 0,
            CompressionLevel::Fast => 8,
            CompressionLevel::Default => 128,
            CompressionLevel::Best => 1024,
        }
    }

    pub(crate) fn lazy(self) -> bool {
        matches!(self, CompressionLevel::Default | CompressionLevel::Best)
    }
}

/// Options controlling a [`DeflateCompressor`].
#[derive(Debug, Clone)]
pub struct CompressorOptions {
    /// Match strategy / effort.
    pub level: CompressionLevel,
    /// Approximate number of input bytes per DEFLATE block.  The paper notes
    /// (§4.8) that the average Dynamic Block size is chosen by the compressor
    /// and strongly influences how well rapidgzip can parallelize.
    pub block_size: usize,
    /// If true, forbid block-type selection from falling back to stored or
    /// fixed blocks (useful to emulate tools that always emit dynamic blocks).
    pub force_dynamic: bool,
}

impl Default for CompressorOptions {
    fn default() -> Self {
        Self {
            level: CompressionLevel::Default,
            block_size: 128 * 1024,
            force_dynamic: false,
        }
    }
}

/// A DEFLATE stream compressor.
#[derive(Debug, Clone)]
pub struct DeflateCompressor {
    options: CompressorOptions,
}

impl DeflateCompressor {
    /// Creates a compressor with the given options.
    pub fn new(options: CompressorOptions) -> Self {
        assert!(options.block_size > 0, "block_size must be non-zero");
        Self { options }
    }

    /// Compresses `data` into a complete raw DEFLATE stream.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut writer = BitWriter::with_capacity(data.len() / 2 + 64);
        self.compress_into(data, &mut writer, true);
        writer.finish()
    }

    /// Appends the compressed form of `data` to `writer`.  If `finalize` is
    /// true the last emitted block carries the final-block flag; otherwise the
    /// stream can be continued with further calls (the caller is responsible
    /// for eventually finishing the stream).
    pub fn compress_into(&self, data: &[u8], writer: &mut BitWriter, finalize: bool) {
        let mut finder = HtMatchFinder::new(self.options.level);
        self.compress_into_with(data, writer, finalize, &mut finder);
    }

    /// Like [`DeflateCompressor::compress_into`] but reuses the caller's
    /// match finder, avoiding the per-call hash-table allocation.  The
    /// parallel compressor keeps one finder per worker thread and feeds it
    /// chunk after chunk; the finder is reconfigured to this compressor's
    /// level before use.
    pub fn compress_into_with(
        &self,
        data: &[u8],
        writer: &mut BitWriter,
        finalize: bool,
        finder: &mut HtMatchFinder,
    ) {
        if data.is_empty() {
            if finalize {
                write_stored_block(writer, &[], true);
            }
            return;
        }
        if self.options.level == CompressionLevel::Stored {
            self.compress_stored(data, writer, finalize);
            return;
        }

        finder.reconfigure(self.options.level);
        let mut tokens = Vec::new();
        finder.tokenize_into(data, &mut tokens);
        // Split the token stream into blocks of roughly `block_size` input
        // bytes. Matches may reference data across block boundaries, exactly
        // as real compressors behave.
        let mut block_tokens: Vec<Token> = Vec::new();
        let mut block_start = 0usize;
        let mut position = 0usize;
        let mut emitted_any = false;
        for token in tokens {
            let token_length = match token {
                Token::Literal(_) => 1,
                Token::Match { length, .. } => length as usize,
            };
            block_tokens.push(token);
            position += token_length;
            if position - block_start >= self.options.block_size {
                let is_last = false;
                self.emit_block(
                    &data[block_start..position],
                    &block_tokens,
                    writer,
                    is_last && finalize,
                );
                emitted_any = true;
                block_tokens.clear();
                block_start = position;
            }
        }
        if !block_tokens.is_empty() || !emitted_any {
            self.emit_block(
                &data[block_start..position],
                &block_tokens,
                writer,
                finalize,
            );
        } else if finalize {
            // All data went out in non-final blocks; terminate the stream.
            write_stored_block(writer, &[], true);
        }
    }

    fn compress_stored(&self, data: &[u8], writer: &mut BitWriter, finalize: bool) {
        let mut chunks = data.chunks(MAX_STORED_BLOCK_SIZE).peekable();
        while let Some(chunk) = chunks.next() {
            let is_last = chunks.peek().is_none();
            write_stored_block(writer, chunk, is_last && finalize);
        }
    }

    /// Emits one block, choosing the cheapest representation among stored,
    /// fixed and dynamic (unless `force_dynamic` is set).
    fn emit_block(&self, raw: &[u8], tokens: &[Token], writer: &mut BitWriter, is_final: bool) {
        let (literal_frequencies, distance_frequencies) = token_frequencies(tokens);
        let dynamic = DynamicBlockPlan::build(&literal_frequencies, &distance_frequencies);

        if !self.options.force_dynamic {
            let fixed_cost = fixed_block_cost(&literal_frequencies, &distance_frequencies);
            let stored_cost = stored_cost_bits(raw.len());
            let dynamic_cost = dynamic.cost_bits(&literal_frequencies, &distance_frequencies);
            if stored_cost < dynamic_cost && stored_cost < fixed_cost && !raw.is_empty() {
                self.compress_stored(raw, writer, is_final);
                return;
            }
            if fixed_cost <= dynamic_cost {
                write_block_header(writer, is_final, 0b01);
                let literal_encoder =
                    HuffmanEncoder::from_code_lengths(&fixed_literal_lengths()).unwrap();
                let distance_encoder =
                    HuffmanEncoder::from_code_lengths(&fixed_distance_lengths()).unwrap();
                write_tokens(writer, tokens, &literal_encoder, &distance_encoder);
                return;
            }
        }

        write_block_header(writer, is_final, 0b10);
        dynamic.write_header(writer);
        let literal_encoder = HuffmanEncoder::from_code_lengths(&dynamic.literal_lengths).unwrap();
        let distance_encoder =
            HuffmanEncoder::from_code_lengths(&dynamic.distance_lengths).unwrap();
        write_tokens(writer, tokens, &literal_encoder, &distance_encoder);
    }
}

fn write_block_header(writer: &mut BitWriter, is_final: bool, block_type: u64) {
    writer.write_bits(is_final as u64, 1);
    writer.write_bits(block_type, 2);
}

/// Writes a complete Non-Compressed Block (used for empty sync blocks too).
pub fn write_stored_block(writer: &mut BitWriter, data: &[u8], is_final: bool) {
    assert!(data.len() <= MAX_STORED_BLOCK_SIZE);
    write_block_header(writer, is_final, 0b00);
    writer.align_to_byte();
    writer.write_bits(data.len() as u64, 16);
    writer.write_bits(!(data.len() as u64) & 0xFFFF, 16);
    writer.write_bytes(data);
}

fn token_frequencies(tokens: &[Token]) -> (Vec<u32>, Vec<u32>) {
    let mut literal_frequencies = vec![0u32; LITERAL_ALPHABET_SIZE];
    let mut distance_frequencies = vec![0u32; 30];
    for token in tokens {
        match *token {
            Token::Literal(byte) => literal_frequencies[byte as usize] += 1,
            Token::Match { length, distance } => {
                let (length_code, _, _) = length_to_code(length as usize);
                literal_frequencies[length_code as usize] += 1;
                let (distance_code, _, _) = distance_to_code(distance as usize);
                distance_frequencies[distance_code as usize] += 1;
            }
        }
    }
    literal_frequencies[END_OF_BLOCK as usize] += 1;
    (literal_frequencies, distance_frequencies)
}

fn write_tokens(
    writer: &mut BitWriter,
    tokens: &[Token],
    literal_encoder: &HuffmanEncoder,
    distance_encoder: &HuffmanEncoder,
) {
    for token in tokens {
        match *token {
            Token::Literal(byte) => literal_encoder.encode(writer, byte as u16).unwrap(),
            Token::Match { length, distance } => {
                let (length_code, length_extra_bits, length_extra) =
                    length_to_code(length as usize);
                literal_encoder.encode(writer, length_code).unwrap();
                writer.write_bits(length_extra as u64, length_extra_bits as u32);
                let (distance_code, distance_extra_bits, distance_extra) =
                    distance_to_code(distance as usize);
                distance_encoder.encode(writer, distance_code).unwrap();
                writer.write_bits(distance_extra as u64, distance_extra_bits as u32);
            }
        }
    }
    literal_encoder.encode(writer, END_OF_BLOCK).unwrap();
}

fn stored_cost_bits(length: usize) -> u64 {
    let blocks = length.div_ceil(MAX_STORED_BLOCK_SIZE).max(1) as u64;
    blocks * (3 + 7 + 32) + length as u64 * 8
}

fn fixed_block_cost(literal_frequencies: &[u32], distance_frequencies: &[u32]) -> u64 {
    let literal_lengths = fixed_literal_lengths();
    let distance_lengths = fixed_distance_lengths();
    symbol_cost(literal_frequencies, &literal_lengths)
        + symbol_cost(distance_frequencies, &distance_lengths)
        + extra_bits_cost(literal_frequencies, distance_frequencies)
        + 3
}

fn symbol_cost(frequencies: &[u32], lengths: &[u8]) -> u64 {
    frequencies
        .iter()
        .zip(lengths)
        .map(|(&frequency, &length)| frequency as u64 * length as u64)
        .sum()
}

fn extra_bits_cost(literal_frequencies: &[u32], distance_frequencies: &[u32]) -> u64 {
    let mut bits = 0u64;
    for (symbol, &frequency) in literal_frequencies.iter().enumerate() {
        if (257..=285).contains(&symbol) {
            bits += frequency as u64 * LENGTH_EXTRA_BITS[symbol - 257] as u64;
        }
    }
    for (symbol, &frequency) in distance_frequencies.iter().enumerate() {
        if symbol < 30 {
            bits += frequency as u64 * DISTANCE_EXTRA_BITS[symbol] as u64;
        }
    }
    bits
}

/// Everything needed to emit a Dynamic Block header.
struct DynamicBlockPlan {
    literal_lengths: Vec<u8>,
    distance_lengths: Vec<u8>,
    precode_lengths: Vec<u8>,
    /// Run-length encoded code-length sequence: (precode symbol, extra bit
    /// count, extra value).
    rle: Vec<(u16, u8, u16)>,
    literal_count: usize,
    distance_count: usize,
    precode_count: usize,
}

impl DynamicBlockPlan {
    fn build(literal_frequencies: &[u32], distance_frequencies: &[u32]) -> Self {
        let mut literal_lengths =
            compute_code_lengths(literal_frequencies, rgz_huffman::MAX_CODE_LENGTH).unwrap();
        let mut distance_lengths =
            compute_code_lengths(distance_frequencies, rgz_huffman::MAX_CODE_LENGTH).unwrap();

        // DEFLATE requires at least 257 literal codes and 1 distance code to
        // be transmitted; unused alphabets get a single dummy length-1 code.
        if distance_lengths.iter().all(|&l| l == 0) {
            distance_lengths[0] = 1;
        }
        let literal_count = literal_lengths
            .iter()
            .rposition(|&l| l > 0)
            .map(|p| p + 1)
            .unwrap_or(0)
            .max(257);
        let distance_count = distance_lengths
            .iter()
            .rposition(|&l| l > 0)
            .map(|p| p + 1)
            .unwrap_or(0)
            .max(1);
        literal_lengths.truncate(LITERAL_ALPHABET_SIZE);
        distance_lengths.truncate(30);

        // Run-length encode the concatenated code-length sequence.
        let mut sequence = Vec::with_capacity(literal_count + distance_count);
        sequence.extend_from_slice(&literal_lengths[..literal_count]);
        sequence.extend_from_slice(&distance_lengths[..distance_count]);
        let rle = run_length_encode(&sequence);

        // Build the precode from the RLE symbol frequencies.
        let mut precode_frequencies = vec![0u32; PRECODE_ALPHABET_SIZE];
        for &(symbol, _, _) in &rle {
            precode_frequencies[symbol as usize] += 1;
        }
        let precode_lengths =
            compute_code_lengths(&precode_frequencies, rgz_huffman::MAX_PRECODE_LENGTH).unwrap();
        let precode_count = PRECODE_ORDER
            .iter()
            .rposition(|&position| precode_lengths[position] > 0)
            .map(|p| p + 1)
            .unwrap_or(0)
            .max(4);

        Self {
            literal_lengths,
            distance_lengths,
            precode_lengths,
            rle,
            literal_count,
            distance_count,
            precode_count,
        }
    }

    fn header_cost_bits(&self) -> u64 {
        let mut bits = 5 + 5 + 4 + 3 * self.precode_count as u64;
        for &(symbol, extra_bits, _) in &self.rle {
            bits += self.precode_lengths[symbol as usize] as u64 + extra_bits as u64;
        }
        bits
    }

    fn cost_bits(&self, literal_frequencies: &[u32], distance_frequencies: &[u32]) -> u64 {
        3 + self.header_cost_bits()
            + symbol_cost(literal_frequencies, &self.literal_lengths)
            + symbol_cost(distance_frequencies, &self.distance_lengths)
            + extra_bits_cost(literal_frequencies, distance_frequencies)
    }

    fn write_header(&self, writer: &mut BitWriter) {
        writer.write_bits((self.literal_count - 257) as u64, 5);
        writer.write_bits((self.distance_count - 1) as u64, 5);
        writer.write_bits((self.precode_count - 4) as u64, 4);
        for &position in PRECODE_ORDER.iter().take(self.precode_count) {
            writer.write_bits(self.precode_lengths[position] as u64, 3);
        }
        let precode_encoder = HuffmanEncoder::from_code_lengths(&self.precode_lengths).unwrap();
        for &(symbol, extra_bits, extra) in &self.rle {
            precode_encoder.encode(writer, symbol).unwrap();
            writer.write_bits(extra as u64, extra_bits as u32);
        }
    }
}

/// Run-length encodes a code-length sequence into precode symbols.
fn run_length_encode(sequence: &[u8]) -> Vec<(u16, u8, u16)> {
    let mut encoded = Vec::new();
    let mut i = 0usize;
    while i < sequence.len() {
        let value = sequence[i];
        let mut run = 1usize;
        while i + run < sequence.len() && sequence[i + run] == value {
            run += 1;
        }
        if value == 0 {
            let mut remaining = run;
            while remaining >= 11 {
                let take = remaining.min(138);
                encoded.push((18, 7, (take - 11) as u16));
                remaining -= take;
            }
            if remaining >= 3 {
                encoded.push((17, 3, (remaining - 3) as u16));
                remaining = 0;
            }
            for _ in 0..remaining {
                encoded.push((0, 0, 0));
            }
        } else {
            encoded.push((value as u16, 0, 0));
            let mut remaining = run - 1;
            while remaining >= 3 {
                let take = remaining.min(6);
                encoded.push((16, 2, (take - 3) as u16));
                remaining -= take;
            }
            for _ in 0..remaining {
                encoded.push((value as u16, 0, 0));
            }
        }
        i += run;
    }
    encoded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::{inflate, BlockBoundary};
    use crate::BlockType;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rgz_bitio::BitReader;

    fn round_trip_with(options: CompressorOptions, data: &[u8]) -> (Vec<u8>, Vec<BlockBoundary>) {
        let compressed = DeflateCompressor::new(options).compress(data);
        let mut reader = BitReader::new(&compressed);
        let mut out = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        assert!(outcome.stream_ended());
        (out, outcome.blocks)
    }

    #[test]
    fn run_length_encode_round_trips_structurally() {
        let sequence = [0u8, 0, 0, 0, 5, 5, 5, 5, 5, 5, 5, 7, 0, 0, 1];
        let encoded = run_length_encode(&sequence);
        // Expand again following the DEFLATE rules.
        let mut expanded: Vec<u8> = Vec::new();
        for (symbol, _, extra) in encoded {
            match symbol {
                0..=15 => expanded.push(symbol as u8),
                16 => {
                    let previous = *expanded.last().unwrap();
                    expanded.extend(std::iter::repeat_n(previous, 3 + extra as usize));
                }
                17 => expanded.extend(std::iter::repeat_n(0, 3 + extra as usize)),
                18 => expanded.extend(std::iter::repeat_n(0, 11 + extra as usize)),
                _ => unreachable!(),
            }
        }
        assert_eq!(expanded, sequence);
    }

    #[test]
    fn long_zero_runs_use_symbol_18() {
        let sequence = vec![0u8; 200];
        let encoded = run_length_encode(&sequence);
        assert!(encoded.len() <= 3);
        assert!(encoded
            .iter()
            .all(|&(s, _, _)| s == 18 || s == 17 || s == 0));
    }

    #[test]
    fn compresses_and_restores_text() {
        let data =
            b"How much wood would a woodchuck chuck if a woodchuck could chuck wood?".repeat(100);
        for level in [
            CompressionLevel::Huffman,
            CompressionLevel::Fast,
            CompressionLevel::Default,
            CompressionLevel::Best,
        ] {
            let options = CompressorOptions {
                level,
                ..Default::default()
            };
            let (restored, _) = round_trip_with(options, &data);
            assert_eq!(restored, data, "level {level:?}");
        }
    }

    #[test]
    fn matching_levels_actually_compress() {
        let data = b"abcdefgh".repeat(10_000);
        let fast = DeflateCompressor::new(CompressorOptions {
            level: CompressionLevel::Fast,
            ..Default::default()
        })
        .compress(&data);
        let huffman_only = DeflateCompressor::new(CompressorOptions {
            level: CompressionLevel::Huffman,
            ..Default::default()
        })
        .compress(&data);
        assert!(fast.len() < data.len() / 10);
        assert!(fast.len() < huffman_only.len());
    }

    #[test]
    fn block_size_controls_block_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..300_000).map(|_| rng.gen_range(b'a'..=b'z')).collect();
        let small = round_trip_with(
            CompressorOptions {
                block_size: 16 * 1024,
                ..Default::default()
            },
            &data,
        );
        let large = round_trip_with(
            CompressorOptions {
                block_size: 1024 * 1024,
                ..Default::default()
            },
            &data,
        );
        assert_eq!(small.0, data);
        assert_eq!(large.0, data);
        assert!(small.1.len() > large.1.len());
        assert!(small.1.len() >= 300_000 / (16 * 1024));
    }

    #[test]
    fn incompressible_data_falls_back_to_stored_blocks() {
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<u8> = (0..100_000).map(|_| rng.gen()).collect();
        let (restored, blocks) = round_trip_with(CompressorOptions::default(), &data);
        assert_eq!(restored, data);
        assert!(
            blocks.iter().any(|b| b.block_type == BlockType::Stored),
            "random data should be emitted as Non-Compressed Blocks"
        );
    }

    #[test]
    fn force_dynamic_emits_only_dynamic_blocks() {
        let mut rng = StdRng::seed_from_u64(43);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let options = CompressorOptions {
            force_dynamic: true,
            ..Default::default()
        };
        let (restored, blocks) = round_trip_with(options, &data);
        assert_eq!(restored, data);
        assert!(blocks.iter().all(|b| b.block_type == BlockType::Dynamic));
    }

    #[test]
    fn empty_input_is_a_single_final_block() {
        let (restored, blocks) = round_trip_with(CompressorOptions::default(), b"");
        assert!(restored.is_empty());
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].is_final);
    }

    #[test]
    fn streams_can_be_continued_across_calls() {
        let compressor = DeflateCompressor::new(CompressorOptions::default());
        let mut writer = BitWriter::new();
        compressor.compress_into(b"first part, ", &mut writer, false);
        compressor.compress_into(b"second part", &mut writer, true);
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        let mut out = Vec::new();
        let outcome = inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        assert!(outcome.stream_ended());
        assert_eq!(out, b"first part, second part");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn round_trip_arbitrary_data(
            data in proptest::collection::vec(any::<u8>(), 0..20_000),
            level in prop_oneof![
                Just(CompressionLevel::Stored),
                Just(CompressionLevel::Huffman),
                Just(CompressionLevel::Fast),
                Just(CompressionLevel::Default),
            ],
            block_size in prop_oneof![Just(4usize * 1024), Just(64 * 1024)],
        ) {
            let options = CompressorOptions { level, block_size, force_dynamic: false };
            let compressed = DeflateCompressor::new(options).compress(&data);
            let mut reader = BitReader::new(&compressed);
            let mut out = Vec::new();
            let outcome = inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
            prop_assert!(outcome.stream_ended());
            prop_assert_eq!(out, data);
        }

        #[test]
        fn round_trip_repetitive_data(
            seed in any::<u64>(),
            length in 1000usize..60_000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let phrase_count = rng.gen_range(2..10usize);
            let phrases: Vec<Vec<u8>> = (0..phrase_count)
                .map(|_| (0..rng.gen_range(3..30)).map(|_| rng.gen_range(b'a'..=b'z')).collect())
                .collect();
            let mut data = Vec::with_capacity(length);
            while data.len() < length {
                data.extend_from_slice(&phrases[rng.gen_range(0..phrase_count)]);
            }
            let compressed = DeflateCompressor::new(CompressorOptions::default()).compress(&data);
            prop_assert!(compressed.len() < data.len());
            let mut reader = BitReader::new(&compressed);
            let mut out = Vec::new();
            inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
            prop_assert_eq!(out, data);
        }
    }
}
