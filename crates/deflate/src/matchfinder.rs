//! Hash-chain LZ77 match finding (the `HtMatchFinder` shape).
//!
//! Extracted from the compressor so the parallel write path can reuse one
//! finder per worker thread: the hash head table and the ring-buffered chain
//! links are allocated once (256 KiB total) and recycled across chunks
//! instead of being re-allocated per `compress` call.  The chain links live
//! in a window-sized ring indexed by `position & (WINDOW_SIZE - 1)`, so the
//! finder's footprint is independent of the input length.

use crate::compress::CompressionLevel;
use crate::constants::{MAX_MATCH, MIN_MATCH, WINDOW_SIZE};

/// Number of bits in the 3-byte rolling hash.
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Sentinel for an empty hash-chain slot.
const NO_POSITION: u32 = u32::MAX;

/// One LZ77 token produced by the match finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference of `length` bytes starting `distance` bytes back.
    Match {
        /// Match length, `MIN_MATCH..=MAX_MATCH`.
        length: u16,
        /// Match distance, `1..=WINDOW_SIZE`.
        distance: u16,
    },
}

#[inline]
fn hash(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// A greedy/lazy hash-chain match finder with reusable state.
///
/// The effort knobs (chain depth, lazy evaluation) come from
/// [`CompressionLevel`]; [`HtMatchFinder::reconfigure`] switches levels
/// without touching the allocations.
#[derive(Debug, Clone)]
pub struct HtMatchFinder {
    /// Most recent position for each hash bucket.
    head: Vec<u32>,
    /// Previous position with the same hash, ring-indexed by
    /// `position & (WINDOW_SIZE - 1)`.
    prev: Vec<u32>,
    max_chain: usize,
    lazy: bool,
}

impl HtMatchFinder {
    /// Creates a finder tuned for `level`.
    pub fn new(level: CompressionLevel) -> Self {
        Self {
            head: vec![NO_POSITION; HASH_SIZE],
            prev: vec![NO_POSITION; WINDOW_SIZE],
            max_chain: level.max_chain(),
            lazy: level.lazy(),
        }
    }

    /// Switches the effort level, keeping the allocated tables.
    pub fn reconfigure(&mut self, level: CompressionLevel) {
        self.max_chain = level.max_chain();
        self.lazy = level.lazy();
    }

    /// Tokenizes `data` from scratch, appending to `tokens` (which is
    /// cleared first).  The finder's tables are reset, so consecutive calls
    /// treat each buffer as an independent stream — exactly what the
    /// chunk-parallel compressor needs for its independent members.
    pub fn tokenize_into(&mut self, data: &[u8], tokens: &mut Vec<Token>) {
        tokens.clear();
        if self.max_chain == 0 {
            tokens.extend(data.iter().map(|&b| Token::Literal(b)));
            return;
        }
        assert!(
            data.len() < NO_POSITION as usize,
            "input too large for 32-bit match-finder positions"
        );
        // Clearing the heads is enough: chain walks start at a head entry
        // written during this call, and every link reachable from one was
        // also written during this call.
        self.head.fill(NO_POSITION);
        tokens.reserve(data.len() / 3 + 16);

        let mut i = 0usize;
        while i < data.len() {
            let (mut length, mut distance) = self.find_match(data, i);
            if length >= MIN_MATCH && self.lazy && i + 1 < data.len() {
                // One-step lazy matching: prefer a longer match starting at
                // the next byte.
                self.insert(data, i);
                let (next_length, next_distance) = self.find_match(data, i + 1);
                if next_length > length {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                    length = next_length;
                    distance = next_distance;
                }
            } else if length >= MIN_MATCH {
                self.insert(data, i);
            }

            if length >= MIN_MATCH {
                tokens.push(Token::Match {
                    length: length as u16,
                    distance: distance as u16,
                });
                // Insert hash entries for the matched region (skipping the
                // first position, already inserted above).
                for j in (i + 1)..(i + length) {
                    self.insert(data, j);
                }
                i += length;
            } else {
                self.insert(data, i);
                tokens.push(Token::Literal(data[i]));
                i += 1;
            }
        }
    }

    fn find_match(&self, data: &[u8], position: usize) -> (usize, usize) {
        if position + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let max_length = (data.len() - position).min(MAX_MATCH);
        let mut best_length = 0usize;
        let mut best_distance = 0usize;
        let mut candidate = self.head[hash(data, position)];
        let mut chain = 0usize;
        while candidate != NO_POSITION && chain < self.max_chain {
            let candidate_position = candidate as usize;
            let distance = position - candidate_position;
            if distance > WINDOW_SIZE {
                break;
            }
            let mut length = 0usize;
            while length < max_length
                && data[candidate_position + length] == data[position + length]
            {
                length += 1;
            }
            if length > best_length {
                best_length = length;
                best_distance = distance;
                if length == max_length {
                    break;
                }
            }
            // Ring slots are shared by positions a window apart; a link that
            // does not point strictly backwards was overwritten by a later
            // position and ends the chain.
            let next = self.prev[candidate_position & (WINDOW_SIZE - 1)];
            if next == NO_POSITION || next >= candidate {
                break;
            }
            candidate = next;
            chain += 1;
        }
        (best_length, best_distance)
    }

    #[inline]
    fn insert(&mut self, data: &[u8], position: usize) {
        if position + MIN_MATCH <= data.len() {
            let h = hash(data, position);
            self.prev[position & (WINDOW_SIZE - 1)] = self.head[h];
            self.head[h] = position as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand(tokens: &[Token]) -> Vec<u8> {
        let mut out = Vec::new();
        for token in tokens {
            match *token {
                Token::Literal(byte) => out.push(byte),
                Token::Match { length, distance } => {
                    assert!((MIN_MATCH..=MAX_MATCH).contains(&(length as usize)));
                    let distance = distance as usize;
                    assert!((1..=WINDOW_SIZE).contains(&distance));
                    assert!(distance <= out.len(), "match reaches before the stream");
                    for _ in 0..length {
                        out.push(out[out.len() - distance]);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn tokens_expand_back_to_the_input() {
        let data = b"the quick brown fox jumps over the lazy dog, the quick fox".repeat(300);
        for level in [
            CompressionLevel::Huffman,
            CompressionLevel::Fast,
            CompressionLevel::Default,
            CompressionLevel::Best,
        ] {
            let mut finder = HtMatchFinder::new(level);
            let mut tokens = Vec::new();
            finder.tokenize_into(&data, &mut tokens);
            assert_eq!(expand(&tokens), data, "level {level:?}");
        }
    }

    #[test]
    fn reuse_across_buffers_is_stateless() {
        let mut finder = HtMatchFinder::new(CompressionLevel::Default);
        let first = b"aaaa bbbb cccc dddd".repeat(50);
        let second = b"zzzz yyyy xxxx wwww".repeat(50);
        let mut tokens = Vec::new();
        finder.tokenize_into(&first, &mut tokens);
        let first_tokens = tokens.clone();
        finder.tokenize_into(&second, &mut tokens);
        assert_eq!(expand(&tokens), second);
        // Re-tokenizing the first buffer after another run must give the
        // same result as the fresh finder did.
        finder.tokenize_into(&first, &mut tokens);
        assert_eq!(tokens, first_tokens);
    }

    #[test]
    fn inputs_longer_than_the_window_stay_consistent() {
        // > 32 KiB of repetitive data exercises the ring-buffer wrap and the
        // strictly-backwards chain guard.
        let data: Vec<u8> = (0..200_000u32)
            .flat_map(|i| format!("line {}\n", i % 700).into_bytes())
            .collect();
        let mut finder = HtMatchFinder::new(CompressionLevel::Best);
        let mut tokens = Vec::new();
        finder.tokenize_into(&data, &mut tokens);
        assert_eq!(expand(&tokens), data);
        assert!(
            tokens.len() < data.len() / 4,
            "repetitive data should mostly tokenize into matches"
        );
    }

    #[test]
    fn reconfigure_switches_effort_without_reallocating() {
        let data = b"abcabcabcabc".repeat(1000);
        let mut finder = HtMatchFinder::new(CompressionLevel::Huffman);
        let mut tokens = Vec::new();
        finder.tokenize_into(&data, &mut tokens);
        assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
        finder.reconfigure(CompressionLevel::Fast);
        finder.tokenize_into(&data, &mut tokens);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(expand(&tokens), data);
    }
}
