//! Constant tables from RFC 1951.

/// Number of symbols in the literal/length alphabet (0..=287, 286/287 unused).
pub const LITERAL_ALPHABET_SIZE: usize = 288;
/// Number of symbols in the distance alphabet (0..=31, 30/31 unused).
pub const DISTANCE_ALPHABET_SIZE: usize = 32;
/// Number of symbols in the precode (code-length) alphabet.
pub const PRECODE_ALPHABET_SIZE: usize = 19;
/// End-of-block symbol in the literal/length alphabet.
pub const END_OF_BLOCK: u16 = 256;
/// Size of the LZ77 sliding window.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum and maximum match lengths.
pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = 258;
/// Maximum payload of a single Non-Compressed (stored) block.
pub const MAX_STORED_BLOCK_SIZE: usize = 65_535;

// Base match lengths / extra bits for length codes 257..=285 live in
// `rgz_huffman` (the multi-symbol decoder caches them in its table entries);
// re-exported here so the encoder, the reference decoder and the fast path
// all share one authoritative table.
pub use rgz_huffman::{LENGTH_BASE, LENGTH_EXTRA_BITS};

/// Base distances for distance codes 0..=29.
pub const DISTANCE_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];

/// Extra bits for distance codes 0..=29.
pub const DISTANCE_EXTRA_BITS: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Order in which precode code lengths are stored in a Dynamic Block header.
pub const PRECODE_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Code lengths of the fixed literal/length Huffman code (BTYPE = 01).
pub fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 144];
    lengths.extend(std::iter::repeat_n(9u8, 112));
    lengths.extend(std::iter::repeat_n(7u8, 24));
    lengths.extend(std::iter::repeat_n(8u8, 8));
    lengths
}

/// Code lengths of the fixed distance Huffman code (BTYPE = 01).
pub fn fixed_distance_lengths() -> Vec<u8> {
    vec![5u8; DISTANCE_ALPHABET_SIZE]
}

/// Maps a match length (3..=258) to `(length code, extra bits, extra value)`.
#[inline]
pub fn length_to_code(length: usize) -> (u16, u8, u16) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&length));
    // Find the last code whose base is <= length.
    let mut code_index = LENGTH_BASE.partition_point(|&base| base as usize <= length) - 1;
    // Length 258 must use code 285 (base 258, 0 extra bits), not 284 + extra.
    if length == MAX_MATCH {
        code_index = 28;
    }
    let base = LENGTH_BASE[code_index] as usize;
    (
        257 + code_index as u16,
        LENGTH_EXTRA_BITS[code_index],
        (length - base) as u16,
    )
}

/// Maps a match distance (1..=32768) to `(distance code, extra bits, extra value)`.
#[inline]
pub fn distance_to_code(distance: usize) -> (u16, u8, u16) {
    debug_assert!((1..=WINDOW_SIZE).contains(&distance));
    let code_index = DISTANCE_BASE.partition_point(|&base| base as usize <= distance) - 1;
    let base = DISTANCE_BASE[code_index] as usize;
    (
        code_index as u16,
        DISTANCE_EXTRA_BITS[code_index],
        (distance - base) as u16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_code_lengths_have_rfc_sizes() {
        let literals = fixed_literal_lengths();
        assert_eq!(literals.len(), LITERAL_ALPHABET_SIZE);
        assert_eq!(literals[0], 8);
        assert_eq!(literals[143], 8);
        assert_eq!(literals[144], 9);
        assert_eq!(literals[255], 9);
        assert_eq!(literals[256], 7);
        assert_eq!(literals[279], 7);
        assert_eq!(literals[280], 8);
        assert_eq!(literals[287], 8);
        assert_eq!(fixed_distance_lengths(), vec![5u8; 32]);
    }

    #[test]
    fn every_length_round_trips_through_its_code() {
        for length in MIN_MATCH..=MAX_MATCH {
            let (code, extra_bits, extra) = length_to_code(length);
            assert!(
                (257..=285).contains(&code),
                "length {length} -> code {code}"
            );
            let index = (code - 257) as usize;
            assert_eq!(LENGTH_EXTRA_BITS[index], extra_bits);
            assert_eq!(LENGTH_BASE[index] as usize + extra as usize, length);
            assert!(extra < (1 << extra_bits) || extra_bits == 0 && extra == 0);
        }
    }

    #[test]
    fn length_258_uses_code_285() {
        assert_eq!(length_to_code(258), (285, 0, 0));
        // 258 could also be encoded as code 284 + extra 31, but canonical
        // encoders use 285; our decoder accepts both.
        assert_eq!(length_to_code(257), (284, 5, 30));
    }

    #[test]
    fn every_distance_round_trips_through_its_code() {
        for distance in 1..=WINDOW_SIZE {
            let (code, extra_bits, extra) = distance_to_code(distance);
            assert!((0..30).contains(&(code as usize)));
            let index = code as usize;
            assert_eq!(DISTANCE_EXTRA_BITS[index], extra_bits);
            assert_eq!(DISTANCE_BASE[index] as usize + extra as usize, distance);
        }
    }

    #[test]
    fn precode_order_is_a_permutation() {
        let mut seen = [false; 19];
        for &position in &PRECODE_ORDER {
            assert!(!seen[position]);
            seen[position] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
