//! Aggregated metrics derived from a recorded trace.
//!
//! [`MetricsReport::from_sink`] folds every recorded event into per-stage
//! wall-time histograms (p50/p95/p99), per-thread utilization, a speculation
//! waste summary, and a prefetch hit-rate summary.  The report renders three
//! ways: human-readable text (`--verbose` / `--metrics`), a JSON object
//! (`--metrics=json`), and a flat `String -> f64` map that `rgz_bench`
//! embeds in its `--json` reports so `perf_compare` can gate on stage-level
//! numbers.

use crate::{escape_json, EventKind, Outcome, Stage, TraceSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Instant-event names with agreed-upon semantics. Emitted by `rgz_core`,
/// consumed here; kept public so instrumentation sites and tests share one
/// spelling.
pub mod instants {
    /// A speculative decode task was submitted to the pool.
    pub const SPEC_SUBMIT: &str = "spec_submit";
    /// A speculative chunk was committed to the output stream (`bytes` =
    /// uncompressed size).
    pub const SPEC_COMMIT: &str = "spec_commit";
    /// A speculative chunk was discarded (`bytes` = uncompressed bytes
    /// decoded in vain).
    pub const SPEC_WASTE: &str = "spec_waste";
    /// An index-aligned prefetch decode was issued.
    pub const PREFETCH_ISSUE: &str = "prefetch_issue";
    /// A random-access read was served from a prefetched chunk.
    pub const PREFETCH_HIT: &str = "prefetch_hit";
    /// A random-access read decoded on demand (no prefetched chunk).
    pub const PREFETCH_MISS: &str = "prefetch_miss";
    /// A prefetched chunk was evicted before being read.
    pub const PREFETCH_EVICT: &str = "prefetch_evict";
}

/// Latency/volume summary for one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSummary {
    /// Closed spans recorded for this stage.
    pub count: u64,
    /// Sum of span durations (µs). Overlapping spans on different threads
    /// both count, so this can exceed wall time.
    pub total_us: u64,
    /// Median span duration (µs).
    pub p50_us: u64,
    /// 95th-percentile span duration (µs).
    pub p95_us: u64,
    /// 99th-percentile span duration (µs).
    pub p99_us: u64,
    /// Longest span duration (µs).
    pub max_us: u64,
    /// Sum of the `bytes` payloads attached to spans of this stage.
    pub bytes: u64,
    /// Spans that ended [`Outcome::Wasted`].
    pub wasted: u64,
    /// Spans that ended [`Outcome::Fallback`].
    pub fallback: u64,
    /// Spans that ended [`Outcome::Error`].
    pub errors: u64,
}

/// Busy-time summary for one recording thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSummary {
    /// Thread name (e.g. `rgz-worker-3`).
    pub name: String,
    /// Microseconds covered by at least one non-`task_wait` span on this
    /// thread (overlapping spans are unioned, so nesting cannot inflate it).
    pub busy_us: u64,
    /// `busy_us` as a percentage of the trace wall time.
    pub utilization_pct: f64,
}

/// Speculative-decode accounting, from `spec_commit` / `spec_waste` instants.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpeculationSummary {
    /// Speculative decode tasks submitted to the pool.
    pub submitted: u64,
    /// Speculative chunks whose output was committed.
    pub committed_chunks: u64,
    /// Uncompressed bytes committed from speculative decodes.
    pub committed_bytes: u64,
    /// Speculative chunks decoded but discarded.
    pub wasted_chunks: u64,
    /// Uncompressed bytes decoded in vain.
    pub wasted_bytes: u64,
}

impl SpeculationSummary {
    /// Fraction of speculatively decoded bytes that were thrown away.
    pub fn waste_ratio(&self) -> f64 {
        let total = self.committed_bytes + self.wasted_bytes;
        if total == 0 {
            0.0
        } else {
            self.wasted_bytes as f64 / total as f64
        }
    }
}

/// Index-aligned prefetch accounting, from `prefetch_*` instants.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrefetchSummary {
    /// Prefetch decode tasks issued.
    pub issued: u64,
    /// Random-access reads served from a prefetched chunk.
    pub hits: u64,
    /// Random-access reads that had to decode on demand.
    pub misses: u64,
    /// Prefetched chunks evicted unread.
    pub evictions: u64,
}

impl PrefetchSummary {
    /// Fraction of random-access reads served from prefetched chunks.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Everything [`MetricsReport::from_sink`] aggregates out of a trace.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// First-event → last-event span of the trace (µs).
    pub wall_us: u64,
    /// One entry per recording thread, in track registration order.
    pub threads: Vec<ThreadSummary>,
    /// Per-stage summaries, only for stages that recorded at least one span.
    pub stages: BTreeMap<&'static str, StageSummary>,
    /// Speculation accounting.
    pub speculation: SpeculationSummary,
    /// Prefetch accounting.
    pub prefetch: PrefetchSummary,
    /// Final value of every named counter (samples are monotonic).
    pub counters: BTreeMap<&'static str, u64>,
}

impl MetricsReport {
    /// Aggregates everything recorded in `sink` so far.
    pub fn from_sink(sink: &TraceSink) -> MetricsReport {
        let tracks = sink.snapshot();
        let mut report = MetricsReport::default();
        let mut durations: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        let mut trace_start = u64::MAX;
        let mut trace_end = 0u64;
        let mut busy_intervals: Vec<Vec<(u64, u64)>> = Vec::with_capacity(tracks.len());

        for track in &tracks {
            let mut intervals = Vec::new();
            for event in &track.events {
                match event.kind {
                    EventKind::Span {
                        stage,
                        start_us,
                        duration_us,
                        outcome,
                    } => {
                        let end = start_us + duration_us;
                        trace_start = trace_start.min(start_us);
                        trace_end = trace_end.max(end);
                        let summary = report.stages.entry(stage.name()).or_default();
                        summary.count += 1;
                        summary.total_us += duration_us;
                        summary.max_us = summary.max_us.max(duration_us);
                        summary.bytes += event.meta.bytes.unwrap_or(0);
                        match outcome {
                            Outcome::Wasted => summary.wasted += 1,
                            Outcome::Fallback => summary.fallback += 1,
                            Outcome::Error => summary.errors += 1,
                            _ => {}
                        }
                        durations.entry(stage.name()).or_default().push(duration_us);
                        if stage != Stage::TaskWait {
                            intervals.push((start_us, end));
                        }
                    }
                    EventKind::Instant { name, at_us } => {
                        trace_start = trace_start.min(at_us);
                        trace_end = trace_end.max(at_us);
                        let bytes = event.meta.bytes.unwrap_or(0);
                        match name {
                            instants::SPEC_SUBMIT => report.speculation.submitted += 1,
                            instants::SPEC_COMMIT => {
                                report.speculation.committed_chunks += 1;
                                report.speculation.committed_bytes += bytes;
                            }
                            instants::SPEC_WASTE => {
                                report.speculation.wasted_chunks += 1;
                                report.speculation.wasted_bytes += bytes;
                            }
                            instants::PREFETCH_ISSUE => report.prefetch.issued += 1,
                            instants::PREFETCH_HIT => report.prefetch.hits += 1,
                            instants::PREFETCH_MISS => report.prefetch.misses += 1,
                            instants::PREFETCH_EVICT => report.prefetch.evictions += 1,
                            _ => {}
                        }
                    }
                    EventKind::Counter { name, at_us, value } => {
                        trace_start = trace_start.min(at_us);
                        trace_end = trace_end.max(at_us);
                        report.counters.insert(name, value);
                    }
                }
            }
            busy_intervals.push(intervals);
        }

        report.wall_us = trace_end.saturating_sub(if trace_start == u64::MAX {
            trace_end
        } else {
            trace_start
        });

        for (stage, mut samples) in durations {
            samples.sort_unstable();
            let summary = report.stages.get_mut(stage).expect("stage seen above");
            summary.p50_us = percentile(&samples, 50.0);
            summary.p95_us = percentile(&samples, 95.0);
            summary.p99_us = percentile(&samples, 99.0);
        }

        for (track, intervals) in tracks.iter().zip(busy_intervals) {
            let busy_us = union_length(intervals);
            let utilization_pct = if report.wall_us == 0 {
                0.0
            } else {
                100.0 * busy_us as f64 / report.wall_us as f64
            };
            report.threads.push(ThreadSummary {
                name: track.name.clone(),
                busy_us,
                utilization_pct,
            });
        }

        report
    }

    /// Human-readable rendering, one stage per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {:.3} s wall, {} thread(s)",
            self.wall_us as f64 / 1e6,
            self.threads.len()
        );
        let _ = writeln!(
            out,
            "  {:<18} {:>8} {:>10} {:>8} {:>8} {:>8} {:>12}",
            "stage", "count", "total_ms", "p50_us", "p95_us", "p99_us", "bytes"
        );
        for (name, stage) in &self.stages {
            let mut flags = String::new();
            if stage.wasted > 0 {
                let _ = write!(flags, " wasted={}", stage.wasted);
            }
            if stage.fallback > 0 {
                let _ = write!(flags, " fallback={}", stage.fallback);
            }
            if stage.errors > 0 {
                let _ = write!(flags, " errors={}", stage.errors);
            }
            let _ = writeln!(
                out,
                "  {:<18} {:>8} {:>10.2} {:>8} {:>8} {:>8} {:>12}{}",
                name,
                stage.count,
                stage.total_us as f64 / 1e3,
                stage.p50_us,
                stage.p95_us,
                stage.p99_us,
                stage.bytes,
                flags
            );
        }
        for thread in &self.threads {
            let _ = writeln!(
                out,
                "  thread {:<16} busy {:>8.2} ms  utilization {:>5.1}%",
                thread.name,
                thread.busy_us as f64 / 1e3,
                thread.utilization_pct
            );
        }
        let _ = writeln!(
            out,
            "  speculation: {} submitted, {} committed ({} B), {} wasted ({} B), waste ratio {:.1}%",
            self.speculation.submitted,
            self.speculation.committed_chunks,
            self.speculation.committed_bytes,
            self.speculation.wasted_chunks,
            self.speculation.wasted_bytes,
            100.0 * self.speculation.waste_ratio()
        );
        let _ = writeln!(
            out,
            "  prefetch: {} issued, {} hits, {} misses, {} evicted, hit rate {:.1}%",
            self.prefetch.issued,
            self.prefetch.hits,
            self.prefetch.misses,
            self.prefetch.evictions,
            100.0 * self.prefetch.hit_rate()
        );
        out
    }

    /// Renders the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"wall_us\":{}", self.wall_us);
        out.push_str(",\"threads\":[");
        for (index, thread) in self.threads.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"busy_us\":{},\"utilization_pct\":{}}}",
                escape_json(&thread.name),
                thread.busy_us,
                format_f64(thread.utilization_pct)
            );
        }
        out.push_str("],\"stages\":{");
        for (index, (name, stage)) in self.stages.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"total_us\":{},\"p50_us\":{},\"p95_us\":{},\
                 \"p99_us\":{},\"max_us\":{},\"bytes\":{},\"wasted\":{},\"fallback\":{},\
                 \"errors\":{}}}",
                stage.count,
                stage.total_us,
                stage.p50_us,
                stage.p95_us,
                stage.p99_us,
                stage.max_us,
                stage.bytes,
                stage.wasted,
                stage.fallback,
                stage.errors
            );
        }
        let _ = write!(
            out,
            "}},\"speculation\":{{\"submitted\":{},\"committed_chunks\":{},\
             \"committed_bytes\":{},\"wasted_chunks\":{},\"wasted_bytes\":{},\
             \"waste_ratio\":{}}}",
            self.speculation.submitted,
            self.speculation.committed_chunks,
            self.speculation.committed_bytes,
            self.speculation.wasted_chunks,
            self.speculation.wasted_bytes,
            format_f64(self.speculation.waste_ratio())
        );
        let _ = write!(
            out,
            ",\"prefetch\":{{\"issued\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"hit_rate\":{}}}",
            self.prefetch.issued,
            self.prefetch.hits,
            self.prefetch.misses,
            self.prefetch.evictions,
            format_f64(self.prefetch.hit_rate())
        );
        out.push_str(",\"counters\":{");
        for (index, (name, value)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("}}");
        out
    }

    /// Flattens the report into bench-style `name -> f64` metrics
    /// (`<stage>_count`, `<stage>_total_us`, `<stage>_p95_us`, plus
    /// `wall_us`, `utilization_pct`, `speculation_waste_ratio`,
    /// `prefetch_hit_rate`).
    pub fn flat_metrics(&self) -> BTreeMap<String, f64> {
        let mut metrics = BTreeMap::new();
        metrics.insert("wall_us".to_owned(), self.wall_us as f64);
        for (name, stage) in &self.stages {
            metrics.insert(format!("{name}_count"), stage.count as f64);
            metrics.insert(format!("{name}_total_us"), stage.total_us as f64);
            metrics.insert(format!("{name}_p95_us"), stage.p95_us as f64);
        }
        let mean_utilization = if self.threads.is_empty() {
            0.0
        } else {
            self.threads
                .iter()
                .map(|thread| thread.utilization_pct)
                .sum::<f64>()
                / self.threads.len() as f64
        };
        metrics.insert("utilization_pct".to_owned(), mean_utilization);
        metrics.insert(
            "speculation_waste_ratio".to_owned(),
            self.speculation.waste_ratio(),
        );
        metrics.insert("prefetch_hit_rate".to_owned(), self.prefetch.hit_rate());
        metrics
    }
}

/// Nearest-rank percentile over an ascending-sorted sample set.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Total length of the union of (possibly overlapping / nested) intervals.
fn union_length(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut current: Option<(u64, u64)> = None;
    for (start, end) in intervals {
        match current {
            Some((cur_start, cur_end)) if start <= cur_end => {
                current = Some((cur_start, cur_end.max(end)));
            }
            Some((cur_start, cur_end)) => {
                total += cur_end - cur_start;
                current = Some((start, end));
            }
            None => current = Some((start, end)),
        }
    }
    if let Some((start, end)) = current {
        total += end - start;
    }
    total
}

/// JSON-safe float rendering (no NaN/inf, stable shortest-ish form).
fn format_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "0.0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventMeta;

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 95.0), 95);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn union_length_merges_nested_and_overlapping() {
        assert_eq!(union_length(vec![(0, 10), (2, 5)]), 10);
        assert_eq!(union_length(vec![(0, 10), (5, 15)]), 15);
        assert_eq!(union_length(vec![(0, 10), (20, 30)]), 20);
        assert_eq!(union_length(vec![]), 0);
    }

    #[test]
    fn report_aggregates_spans_and_instants() {
        let sink = TraceSink::new_enabled();
        for chunk in 0..4u64 {
            let mut span = sink.span(Stage::DecodeOneStage).chunk(chunk);
            span.set_bytes(1000);
            if chunk == 3 {
                span.set_outcome(Outcome::Fallback);
            }
        }
        sink.instant(
            instants::SPEC_COMMIT,
            EventMeta {
                bytes: Some(900),
                ..EventMeta::default()
            },
        );
        sink.instant(
            instants::SPEC_WASTE,
            EventMeta {
                bytes: Some(100),
                ..EventMeta::default()
            },
        );
        sink.instant(instants::PREFETCH_HIT, EventMeta::default());
        sink.instant(instants::PREFETCH_MISS, EventMeta::default());
        sink.counter("resolved_cache_len", 5);

        let report = MetricsReport::from_sink(&sink);
        let stage = report.stages["decode_one_stage"];
        assert_eq!(stage.count, 4);
        assert_eq!(stage.bytes, 4000);
        assert_eq!(stage.fallback, 1);
        assert_eq!(report.speculation.committed_bytes, 900);
        assert_eq!(report.speculation.wasted_bytes, 100);
        assert!((report.speculation.waste_ratio() - 0.1).abs() < 1e-9);
        assert!((report.prefetch.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(report.counters["resolved_cache_len"], 5);
        assert_eq!(report.threads.len(), 1);

        let json = report.to_json();
        assert!(json.contains("\"decode_one_stage\""));
        assert!(json.contains("\"waste_ratio\":0.100000"));
        let text = report.render_text();
        assert!(text.contains("decode_one_stage"));
        assert!(text.contains("hit rate 50.0%"));

        let flat = report.flat_metrics();
        assert_eq!(flat["decode_one_stage_count"], 4.0);
        assert!((flat["speculation_waste_ratio"] - 0.1).abs() < 1e-9);
    }
}
