//! Low-overhead structured tracing for the parallel read pipeline.
//!
//! The paper's analysis lives and dies by per-chunk timelines: its scaling
//! figures are explained by *where* chunk time goes (block finding vs.
//! two-stage decode vs. marker replacement vs. verification).  This crate is
//! the reproduction's equivalent instrument: a [`TraceSink`] that pipeline
//! stages write timestamped spans, instant events, and counters into, plus
//! exporters for Chrome trace-event JSON ([`chrome_trace_json`], loadable in
//! Perfetto / `chrome://tracing`) and an aggregated [`MetricsReport`]
//! (per-stage latency percentiles, thread utilization, speculation waste,
//! prefetch hit rate).
//!
//! # Design
//!
//! - **Always compiled, off by default.** Every record method starts with a
//!   single relaxed atomic load; when the sink is disabled that load is the
//!   *entire* cost, so instrumentation can stay in release builds
//!   unconditionally.  The `trace_overhead_ratio` gate in the perf-smoke CI
//!   job enforces this claim.
//! - **Per-thread event buffers.** Each recording thread gets its own
//!   [`ThreadTrack`] with its own buffer lock.  Only the owning thread
//!   appends, so the lock is uncontended in steady state (exporters take it
//!   briefly when snapshotting); a thread-local cache maps sinks to tracks so
//!   the global registry lock is touched once per thread per sink.  Events
//!   become visible to exporters the moment they are recorded — there is no
//!   thread-local pending buffer to flush, so dropping a reader mid-stream
//!   loses nothing.
//! - **Monotonic microsecond clock.** Timestamps are `Instant`-based,
//!   rebased to the sink's construction time (the *trace epoch*), which is
//!   exactly the `ts` convention Chrome trace viewers expect.
//!
//! # Example
//!
//! ```
//! use rgz_trace::{Outcome, Stage, TraceSink};
//!
//! let sink = TraceSink::new_enabled();
//! {
//!     let mut span = sink.span(Stage::DecodeOneStage).chunk(0);
//!     span.set_bytes(4096);
//!     span.set_outcome(Outcome::Committed);
//! } // span recorded on drop
//! let json = rgz_trace::chrome_trace_json(&sink);
//! assert!(json.contains("decode_one_stage"));
//! ```

mod chrome;
mod metrics;

pub use chrome::chrome_trace_json;
pub use metrics::{
    instants, MetricsReport, PrefetchSummary, SpeculationSummary, StageSummary, ThreadSummary,
};

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Pipeline stage a span belongs to. One value per instrumented hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Speculative deflate-block search inside a chunk guess.
    BlockFind,
    /// Speculative two-stage decode (16-bit marker symbols, unknown window).
    DecodeTwoStage,
    /// One-stage decode with a known window (sequential, prefetch, or
    /// on-demand random access all run this loop).
    DecodeOneStage,
    /// Marker-symbol replacement of a speculative chunk against the real
    /// window, including worker-side output hashing.
    MarkerReplace,
    /// Seek-point window sparsify + deflate-compress job.
    WindowCompress,
    /// Lazy re-inflation of a compressed seek-point window.
    WindowInflate,
    /// CRC fragment folding inside `StreamVerifier`.
    CrcFold,
    /// Index-aligned prefetch task: window inflate + decode + fragment check.
    PrefetchDecode,
    /// On-demand random-access chunk decode (index fast path, cache miss).
    RandomAccess,
    /// Whole-stream serial decode (the non-parallel CLI path).
    SerialDecode,
    /// Time a submitted task spent queued before a worker picked it up.
    TaskWait,
}

impl Stage {
    /// Stable snake_case name used in Chrome trace output and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::BlockFind => "block_find",
            Stage::DecodeTwoStage => "decode_two_stage",
            Stage::DecodeOneStage => "decode_one_stage",
            Stage::MarkerReplace => "marker_replace",
            Stage::WindowCompress => "window_compress",
            Stage::WindowInflate => "window_inflate",
            Stage::CrcFold => "crc_fold",
            Stage::PrefetchDecode => "prefetch_decode",
            Stage::RandomAccess => "random_access",
            Stage::SerialDecode => "serial_decode",
            Stage::TaskWait => "task_wait",
        }
    }

    /// All stages, for exhaustive aggregation.
    pub const ALL: [Stage; 11] = [
        Stage::BlockFind,
        Stage::DecodeTwoStage,
        Stage::DecodeOneStage,
        Stage::MarkerReplace,
        Stage::WindowCompress,
        Stage::WindowInflate,
        Stage::CrcFold,
        Stage::PrefetchDecode,
        Stage::RandomAccess,
        Stage::SerialDecode,
        Stage::TaskWait,
    ];
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Outcome {
    /// Completed; no commit/discard semantics apply (the default).
    #[default]
    Ok,
    /// Work product was committed to the output stream or a cache.
    Committed,
    /// Speculative work whose product was discarded.
    Wasted,
    /// The fast path bailed to the reference implementation mid-stage.
    Fallback,
    /// A search stage finished without finding anything.
    NotFound,
    /// The stage returned an error.
    Error,
}

impl Outcome {
    /// Stable snake_case name used in Chrome trace args.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Committed => "committed",
            Outcome::Wasted => "wasted",
            Outcome::Fallback => "fallback",
            Outcome::NotFound => "not_found",
            Outcome::Error => "error",
        }
    }
}

/// Optional identifying payload attached to spans and instants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventMeta {
    /// Chunk identifier: the compressed *bit* offset the chunk starts at.
    pub chunk: Option<u64>,
    /// Gzip member index the work belongs to.
    pub member: Option<u64>,
    /// Compressed byte range `[start, end)` the stage covered.
    pub compressed_range: Option<(u64, u64)>,
    /// Uncompressed bytes produced (or covered) by the stage.
    pub bytes: Option<u64>,
}

/// What kind of event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed duration span.
    Span {
        stage: Stage,
        start_us: u64,
        duration_us: u64,
        outcome: Outcome,
    },
    /// A point-in-time marker (speculation submit/commit/waste, prefetch
    /// issue/hit/evict, ...).
    Instant { name: &'static str, at_us: u64 },
    /// A named monotonic counter sample.
    Counter {
        name: &'static str,
        at_us: u64,
        value: u64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub kind: EventKind,
    pub meta: EventMeta,
}

/// Per-thread event buffer. Only the owning thread appends; exporters briefly
/// take the lock to copy events out, so the mutex is effectively uncontended.
#[derive(Debug)]
pub struct ThreadTrack {
    name: String,
    tid: u64,
    events: Mutex<Vec<Event>>,
}

impl ThreadTrack {
    /// Display name (the OS thread name, e.g. `rgz-worker-3`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable per-sink track id.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Copies the events recorded on this track so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }
}

/// Point-in-time copy of one track, as returned by [`TraceSink::snapshot`].
#[derive(Debug, Clone)]
pub struct TrackSnapshot {
    pub name: String,
    pub tid: u64,
    pub events: Vec<Event>,
}

/// Distinguishes sinks in the per-thread track cache.
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(sink id, track)` pairs for every sink this thread has recorded into.
    /// Readers have at most a couple of live sinks, so a linear scan beats a
    /// hash map here.
    static TRACK_CACHE: RefCell<Vec<(u64, Arc<ThreadTrack>)>> = const { RefCell::new(Vec::new()) };
}

/// A structured event sink shared by every stage of one read pipeline.
///
/// Cloning is done via `Arc`. Disabled sinks cost one relaxed atomic load per
/// record call; see the crate docs for the full design.
#[derive(Debug)]
pub struct TraceSink {
    id: u64,
    enabled: AtomicBool,
    epoch: Instant,
    tracks: Mutex<Vec<Arc<ThreadTrack>>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// Creates a disabled sink (recording is a single atomic load per call).
    pub fn new() -> Self {
        TraceSink {
            id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            tracks: Mutex::new(Vec::new()),
        }
    }

    /// Creates a sink that records immediately.
    pub fn new_enabled() -> Self {
        let sink = Self::new();
        sink.enabled.store(true, Ordering::Relaxed);
        sink
    }

    /// A process-wide shared *disabled* sink, for code paths that need a sink
    /// reference but were not handed one. Never enable this instance.
    pub fn shared_disabled() -> Arc<TraceSink> {
        static SHARED: OnceLock<Arc<TraceSink>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(TraceSink::new())))
    }

    /// Whether events are currently being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Spans already open keep their start time.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Microseconds elapsed since the trace epoch.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span for `stage`, ending (and recording) when the guard drops.
    /// Returns a disarmed no-op guard when the sink is disabled.
    #[inline]
    pub fn span(&self, stage: Stage) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::disarmed();
        }
        SpanGuard {
            sink: Some(self),
            stage,
            start_us: self.now_us(),
            meta: EventMeta::default(),
            outcome: Outcome::Ok,
        }
    }

    /// Records a span whose start timestamp was captured earlier (possibly on
    /// a different thread) with [`TraceSink::now_us`]. Used for queue-wait
    /// spans where the interval spans submit → dequeue.
    #[inline]
    pub fn record_span_since(
        &self,
        stage: Stage,
        start_us: u64,
        meta: EventMeta,
        outcome: Outcome,
    ) {
        if !self.is_enabled() {
            return;
        }
        let now = self.now_us();
        self.record(Event {
            kind: EventKind::Span {
                stage,
                start_us,
                duration_us: now.saturating_sub(start_us),
                outcome,
            },
            meta,
        });
    }

    /// Records a point-in-time marker.
    #[inline]
    pub fn instant(&self, name: &'static str, meta: EventMeta) {
        if !self.is_enabled() {
            return;
        }
        self.record(Event {
            kind: EventKind::Instant {
                name,
                at_us: self.now_us(),
            },
            meta,
        });
    }

    /// Records a named counter sample.
    #[inline]
    pub fn counter(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record(Event {
            kind: EventKind::Counter {
                name,
                at_us: self.now_us(),
                value,
            },
            meta: EventMeta::default(),
        });
    }

    /// Appends a fully-formed event to the calling thread's track.
    fn record(&self, event: Event) {
        let track = self.track_for_current_thread();
        track.events.lock().push(event);
    }

    /// Finds (or registers) the calling thread's track for this sink. The
    /// global registry lock is only taken on the first event a thread records
    /// into this sink; later calls hit the thread-local cache.
    fn track_for_current_thread(&self) -> Arc<ThreadTrack> {
        TRACK_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, track)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(track);
            }
            // Drop cache entries whose sink died (registry Arc gone): the
            // cached Arc would otherwise keep dead tracks alive forever in
            // long-lived worker threads that serve many readers.
            cache.retain(|(_, track)| Arc::strong_count(track) > 1);
            let track = {
                let mut tracks = self.tracks.lock();
                let tid = tracks.len() as u64;
                let name = std::thread::current()
                    .name()
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("thread-{tid}"));
                let track = Arc::new(ThreadTrack {
                    name,
                    tid,
                    events: Mutex::new(Vec::new()),
                });
                tracks.push(Arc::clone(&track));
                track
            };
            cache.push((self.id, Arc::clone(&track)));
            track
        })
    }

    /// Copies out every track recorded so far, in registration order.
    pub fn snapshot(&self) -> Vec<TrackSnapshot> {
        let tracks = self.tracks.lock().clone();
        tracks
            .iter()
            .map(|track| TrackSnapshot {
                name: track.name.clone(),
                tid: track.tid,
                events: track.events(),
            })
            .collect()
    }

    /// Total events recorded across all tracks.
    pub fn event_count(&self) -> usize {
        let tracks = self.tracks.lock().clone();
        tracks.iter().map(|t| t.events.lock().len()).sum()
    }
}

/// RAII span: opened by [`TraceSink::span`], recorded when dropped.
///
/// Identifying metadata can be attached up front with the builder methods or
/// after the work with the `set_*` methods; the duration always runs from
/// `span()` to drop.
#[must_use = "a span measures the scope it lives in; dropping it immediately records a zero-length span"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: Option<&'a TraceSink>,
    stage: Stage,
    start_us: u64,
    meta: EventMeta,
    outcome: Outcome,
}

impl<'a> SpanGuard<'a> {
    /// A guard that records nothing; returned when the sink is disabled.
    #[inline]
    fn disarmed() -> SpanGuard<'a> {
        SpanGuard {
            sink: None,
            stage: Stage::SerialDecode,
            start_us: 0,
            meta: EventMeta::default(),
            outcome: Outcome::Ok,
        }
    }

    /// Attaches the chunk id (compressed bit offset).
    #[inline]
    pub fn chunk(mut self, chunk: u64) -> Self {
        if self.sink.is_some() {
            self.meta.chunk = Some(chunk);
        }
        self
    }

    /// Attaches the gzip member index.
    #[inline]
    pub fn member(mut self, member: u64) -> Self {
        if self.sink.is_some() {
            self.meta.member = Some(member);
        }
        self
    }

    /// Attaches the compressed byte range `[start, end)` covered.
    #[inline]
    pub fn compressed_range(mut self, start: u64, end: u64) -> Self {
        if self.sink.is_some() {
            self.meta.compressed_range = Some((start, end));
        }
        self
    }

    /// Sets the uncompressed byte count once the work has produced it.
    #[inline]
    pub fn set_bytes(&mut self, bytes: u64) {
        if self.sink.is_some() {
            self.meta.bytes = Some(bytes);
        }
    }

    /// Sets the member index once the work has discovered it.
    #[inline]
    pub fn set_member(&mut self, member: u64) {
        if self.sink.is_some() {
            self.meta.member = Some(member);
        }
    }

    /// Sets the compressed byte range once the work has discovered it.
    #[inline]
    pub fn set_compressed_range(&mut self, start: u64, end: u64) {
        if self.sink.is_some() {
            self.meta.compressed_range = Some((start, end));
        }
    }

    /// Sets how the span ended (defaults to [`Outcome::Ok`]).
    #[inline]
    pub fn set_outcome(&mut self, outcome: Outcome) {
        self.outcome = outcome;
    }

    /// Ends the span now (equivalent to dropping it).
    #[inline]
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        let Some(sink) = self.sink else { return };
        let end_us = sink.now_us();
        sink.record(Event {
            kind: EventKind::Span {
                stage: self.stage,
                start_us: self.start_us,
                duration_us: end_us.saturating_sub(self.start_us),
                outcome: self.outcome,
            },
            meta: self.meta,
        });
    }
}

/// Escapes `text` for inclusion in a JSON string literal. Shared by the
/// Chrome exporter and the metrics JSON renderer; kept dependency-free so
/// `rgz_trace` stays a leaf crate.
pub(crate) fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        {
            let mut span = sink.span(Stage::DecodeOneStage).chunk(17);
            span.set_bytes(100);
            span.set_outcome(Outcome::Committed);
        }
        sink.instant("spec_commit", EventMeta::default());
        sink.counter("bytes", 3);
        sink.record_span_since(Stage::TaskWait, 0, EventMeta::default(), Outcome::Ok);
        assert_eq!(sink.event_count(), 0);
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn enabling_mid_stream_starts_recording() {
        let sink = TraceSink::new();
        sink.span(Stage::BlockFind).finish();
        assert_eq!(sink.event_count(), 0);
        sink.set_enabled(true);
        sink.span(Stage::BlockFind).finish();
        assert_eq!(sink.event_count(), 1);
    }

    #[test]
    fn spans_are_balanced_and_monotonic_per_thread() {
        let sink = Arc::new(TraceSink::new_enabled());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let sink = Arc::clone(&sink);
                std::thread::Builder::new()
                    .name(format!("trace-test-{t}"))
                    .spawn(move || {
                        for i in 0..50u64 {
                            let mut span = sink.span(Stage::DecodeTwoStage).chunk(i);
                            // Nested span: must close before the outer one.
                            sink.span(Stage::BlockFind).chunk(i).finish();
                            span.set_bytes(i * 10);
                            span.set_outcome(Outcome::Committed);
                        }
                    })
                    .unwrap()
            })
            .collect();
        for handle in threads {
            handle.join().unwrap();
        }

        let snapshot = sink.snapshot();
        assert_eq!(snapshot.len(), 4, "one track per recording thread");
        for track in &snapshot {
            assert!(track.name.starts_with("trace-test-"));
            let spans: Vec<_> = track
                .events
                .iter()
                .filter_map(|event| match event.kind {
                    EventKind::Span {
                        start_us,
                        duration_us,
                        stage,
                        ..
                    } => Some((stage, start_us, start_us + duration_us)),
                    _ => None,
                })
                .collect();
            assert_eq!(spans.len(), 100, "50 outer + 50 nested spans");
            // Balanced: every span closed (end >= start)...
            for &(_, start, end) in &spans {
                assert!(end >= start);
            }
            // ...and monotonic: recorded in end-time order per thread, and
            // each nested BlockFind closes before its enclosing decode span.
            for pair in spans.windows(2) {
                assert!(pair[1].2 >= pair[0].2, "per-thread end times sorted");
            }
            for pair in spans.chunks(2) {
                let (inner, outer) = (pair[0], pair[1]);
                assert_eq!(inner.0, Stage::BlockFind);
                assert_eq!(outer.0, Stage::DecodeTwoStage);
                assert!(inner.1 >= outer.1, "nested span starts inside outer");
                assert!(inner.2 <= outer.2, "nested span ends inside outer");
            }
        }
    }

    #[test]
    fn cross_thread_queue_wait_span_lands_on_recording_thread() {
        let sink = Arc::new(TraceSink::new_enabled());
        let submit_us = sink.now_us();
        let worker = {
            let sink = Arc::clone(&sink);
            std::thread::Builder::new()
                .name("trace-worker".into())
                .spawn(move || {
                    sink.record_span_since(
                        Stage::TaskWait,
                        submit_us,
                        EventMeta {
                            chunk: Some(1),
                            ..EventMeta::default()
                        },
                        Outcome::Ok,
                    );
                })
                .unwrap()
        };
        worker.join().unwrap();
        let snapshot = sink.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].name, "trace-worker");
        assert!(matches!(
            snapshot[0].events[0].kind,
            EventKind::Span {
                stage: Stage::TaskWait,
                ..
            }
        ));
    }

    #[test]
    fn two_sinks_keep_separate_tracks_on_one_thread() {
        let a = TraceSink::new_enabled();
        let b = TraceSink::new_enabled();
        a.span(Stage::CrcFold).finish();
        b.span(Stage::CrcFold).finish();
        b.span(Stage::CrcFold).finish();
        assert_eq!(a.event_count(), 1);
        assert_eq!(b.event_count(), 2);
    }

    #[test]
    fn escape_json_handles_controls_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
