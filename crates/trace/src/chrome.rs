//! Chrome trace-event JSON exporter.
//!
//! Emits the "JSON array format" understood by Perfetto and
//! `chrome://tracing`: one `M` (metadata) event naming each thread track,
//! then `X` (complete) events for spans, `i` for instants, and `C` for
//! counters.  Timestamps and durations are microseconds since the trace
//! epoch, which is what the format expects.

use crate::{escape_json, EventKind, EventMeta, TraceSink};
use std::fmt::Write as _;

/// Process id used for every event; the trace covers a single process.
const PID: u64 = 1;

/// Renders everything recorded in `sink` so far as a Chrome trace JSON array.
pub fn chrome_trace_json(sink: &TraceSink) -> String {
    let tracks = sink.snapshot();
    let mut out = String::from("[");
    let mut first = true;
    let mut push = |event: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&event);
    };

    push(
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
             \"args\":{{\"name\":\"rgzip\"}}}}"
        ),
        &mut out,
    );

    for track in &tracks {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.tid,
                escape_json(&track.name)
            ),
            &mut out,
        );
    }

    for track in &tracks {
        for event in &track.events {
            let rendered = match event.kind {
                EventKind::Span {
                    stage,
                    start_us,
                    duration_us,
                    outcome,
                } => {
                    let mut args = meta_args(&event.meta);
                    push_arg(&mut args, "outcome", &format!("\"{}\"", outcome.name()));
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{start_us},\"dur\":{duration_us},\
                         \"pid\":{PID},\"tid\":{},\"args\":{{{args}}}}}",
                        stage.name(),
                        track.tid,
                    )
                }
                EventKind::Instant { name, at_us } => {
                    let args = meta_args(&event.meta);
                    format!(
                        "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{at_us},\"pid\":{PID},\
                         \"tid\":{},\"s\":\"t\",\"args\":{{{args}}}}}",
                        track.tid,
                    )
                }
                EventKind::Counter { name, at_us, value } => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{at_us},\"pid\":{PID},\
                     \"tid\":{},\"args\":{{\"value\":{value}}}}}",
                    track.tid,
                ),
            };
            push(rendered, &mut out);
        }
    }

    out.push_str("\n]\n");
    out
}

fn push_arg(args: &mut String, key: &str, rendered_value: &str) {
    if !args.is_empty() {
        args.push(',');
    }
    let _ = write!(args, "\"{key}\":{rendered_value}");
}

fn meta_args(meta: &EventMeta) -> String {
    let mut args = String::new();
    if let Some(chunk) = meta.chunk {
        push_arg(&mut args, "chunk", &chunk.to_string());
    }
    if let Some(member) = meta.member {
        push_arg(&mut args, "member", &member.to_string());
    }
    if let Some((start, end)) = meta.compressed_range {
        push_arg(&mut args, "compressed_start", &start.to_string());
        push_arg(&mut args, "compressed_end", &end.to_string());
    }
    if let Some(bytes) = meta.bytes {
        push_arg(&mut args, "bytes", &bytes.to_string());
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Outcome, Stage};

    #[test]
    fn emits_metadata_and_span_events() {
        let sink = TraceSink::new_enabled();
        {
            let mut span = sink.span(Stage::MarkerReplace).chunk(8).member(0);
            span.set_bytes(1024);
            span.set_outcome(Outcome::Committed);
        }
        sink.instant(
            "spec_commit",
            EventMeta {
                chunk: Some(8),
                bytes: Some(1024),
                ..EventMeta::default()
            },
        );
        sink.counter("spec_in_flight", 2);

        let json = chrome_trace_json(&sink);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"marker_replace\",\"ph\":\"X\""));
        assert!(json.contains("\"outcome\":\"committed\""));
        assert!(json.contains("\"chunk\":8"));
        assert!(json.contains("\"name\":\"spec_commit\",\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"spec_in_flight\",\"ph\":\"C\""));
    }

    #[test]
    fn empty_sink_is_still_a_valid_array() {
        let sink = TraceSink::new();
        let json = chrome_trace_json(&sink);
        assert!(json.contains("process_name"));
        assert!(json.trim_end().ends_with(']'));
    }
}
