fn main() {
    let data: Vec<u8> = (0..64usize << 20)
        .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
        .collect();
    for (name, f) in [
        ("simd", rgz_checksum::crc32 as fn(&[u8]) -> u32),
        ("scalar", rgz_checksum::crc32_scalar),
    ] {
        let mut best = f64::MAX;
        let mut out = 0;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            out = f(&data);
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!(
            "{name}: {:.0} MB/s (crc {out:08x})",
            data.len() as f64 / best / 1e6
        );
    }
    assert_eq!(
        rgz_checksum::crc32(&data),
        rgz_checksum::crc32_scalar(&data)
    );
}
