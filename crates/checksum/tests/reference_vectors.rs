//! Cross-checks of the optimized checksum paths against naive bitwise
//! reference implementations and the published test vectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rgz_checksum::{adler32, crc32};

/// Naive CRC-32 (IEEE, reflected 0xEDB88320): one bit at a time, no tables.
fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Naive Adler-32: per-byte modulo, straight from RFC 1950.
fn adler32_naive(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let (mut a, mut b) = (1u32, 0u32);
    for &byte in data {
        a = (a + byte as u32) % MOD;
        b = (b + a) % MOD;
    }
    (b << 16) | a
}

fn one_mib_random() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0xC5C5_C5C5);
    (0..1 << 20).map(|_| rng.gen()).collect()
}

#[test]
fn crc32_empty_input_matches_bitwise_path() {
    assert_eq!(crc32(b""), 0);
    assert_eq!(crc32_bitwise(b""), 0);
}

#[test]
fn crc32_check_string_matches_bitwise_path() {
    // The canonical CRC-32 "check" value.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32_bitwise(b"123456789"), 0xCBF4_3926);
}

#[test]
fn crc32_one_mib_random_slice_by_8_matches_bitwise() {
    let data = one_mib_random();
    assert_eq!(crc32(&data), crc32_bitwise(&data));
}

#[test]
fn crc32_unaligned_prefixes_match_bitwise() {
    // Lengths around the 8-byte slicing boundary exercise the remainder loop.
    let data = one_mib_random();
    for length in [1usize, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
        assert_eq!(
            crc32(&data[..length]),
            crc32_bitwise(&data[..length]),
            "length {length}"
        );
    }
}

#[test]
fn adler32_empty_input_matches_naive_path() {
    assert_eq!(adler32(b""), 1);
    assert_eq!(adler32_naive(b""), 1);
}

#[test]
fn adler32_check_string_matches_naive_path() {
    assert_eq!(adler32(b"123456789"), 0x091E_01DE);
    assert_eq!(adler32_naive(b"123456789"), 0x091E_01DE);
}

#[test]
fn adler32_one_mib_random_matches_naive() {
    let data = one_mib_random();
    assert_eq!(adler32(&data), adler32_naive(&data));
}
