//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) with slicing-by-16.

const POLYNOMIAL: u32 = 0xEDB88320;

/// Sixteen 256-entry tables for the slicing-by-16 algorithm, generated at
/// compile time.  Processing 16 bytes per iteration keeps the checksum pass
/// well below the decoder's throughput, which matters now that random-access
/// reads re-hash every on-demand chunk against stored index fragments.
const TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut table = 1;
    while table < 16 {
        let mut i = 0;
        while i < 256 {
            let previous = tables[table - 1][i];
            tables[table][i] = (previous >> 8) ^ tables[0][(previous & 0xFF) as usize];
            i += 1;
        }
        table += 1;
    }
    tables
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
    length: u64,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a hasher with the standard initial state.
    pub fn new() -> Self {
        Self {
            state: 0xFFFF_FFFF,
            length: 0,
        }
    }

    /// Resumes hashing from a previously finalized CRC value.
    pub fn from_state(crc: u32, length: u64) -> Self {
        Self {
            state: !crc,
            length,
        }
    }

    /// Number of bytes hashed so far.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.length += data.len() as u64;
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            let a = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let b = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            let c = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
            let d = u32::from_le_bytes([chunk[12], chunk[13], chunk[14], chunk[15]]);
            crc = TABLES[15][(a & 0xFF) as usize]
                ^ TABLES[14][((a >> 8) & 0xFF) as usize]
                ^ TABLES[13][((a >> 16) & 0xFF) as usize]
                ^ TABLES[12][((a >> 24) & 0xFF) as usize]
                ^ TABLES[11][(b & 0xFF) as usize]
                ^ TABLES[10][((b >> 8) & 0xFF) as usize]
                ^ TABLES[9][((b >> 16) & 0xFF) as usize]
                ^ TABLES[8][((b >> 24) & 0xFF) as usize]
                ^ TABLES[7][(c & 0xFF) as usize]
                ^ TABLES[6][((c >> 8) & 0xFF) as usize]
                ^ TABLES[5][((c >> 16) & 0xFF) as usize]
                ^ TABLES[4][((c >> 24) & 0xFF) as usize]
                ^ TABLES[3][(d & 0xFF) as usize]
                ^ TABLES[2][((d >> 8) & 0xFF) as usize]
                ^ TABLES[1][((d >> 16) & 0xFF) as usize]
                ^ TABLES[0][((d >> 24) & 0xFF) as usize];
        }
        for &byte in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the CRC-32 of everything fed so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

// --- crc32_combine -----------------------------------------------------------
//
// CRCs over GF(2) are linear: appending `len2` zero bytes to the first buffer
// corresponds to multiplying its CRC by x^(8*len2) modulo the CRC polynomial.
// We represent that operator as a 32x32 bit matrix and exponentiate by
// repeated squaring, the same approach zlib takes.

type Matrix = [u32; 32];

fn matrix_times_vector(matrix: &Matrix, mut vector: u32) -> u32 {
    let mut result = 0u32;
    let mut index = 0;
    while vector != 0 {
        if vector & 1 != 0 {
            result ^= matrix[index];
        }
        vector >>= 1;
        index += 1;
    }
    result
}

fn matrix_square(destination: &mut Matrix, source: &Matrix) {
    for (column, entry) in destination.iter_mut().enumerate() {
        *entry = matrix_times_vector(source, source[column]);
    }
}

pub(crate) fn combine(crc_a: u32, crc_b: u32, mut len_b: u64) -> u32 {
    if len_b == 0 {
        return crc_a;
    }

    // Operator for one zero bit.
    let mut odd: Matrix = [0; 32];
    odd[0] = POLYNOMIAL;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    let mut even: Matrix = [0; 32];

    // odd = operator for one zero bit; square it to get operators for
    // 2, 4, 8, ... zero bits and apply those matching the binary
    // representation of len_b * 8.
    matrix_square(&mut even, &odd); // 2 bits
    matrix_square(&mut odd, &even); // 4 bits

    let mut crc = crc_a;
    loop {
        matrix_square(&mut even, &odd); // even = odd^2
        if len_b & 1 != 0 {
            crc = matrix_times_vector(&even, crc);
        }
        len_b >>= 1;
        if len_b == 0 {
            break;
        }
        matrix_square(&mut odd, &even);
        if len_b & 1 != 0 {
            crc = matrix_times_vector(&odd, crc);
        }
        len_b >>= 1;
        if len_b == 0 {
            break;
        }
    }
    crc ^ crc_b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_zero_matches_bitwise_definition() {
        for byte in 0u32..256 {
            let mut crc = byte;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLYNOMIAL
                } else {
                    crc >> 1
                };
            }
            assert_eq!(TABLES[0][byte as usize], crc);
        }
    }

    #[test]
    fn slicing_matches_bytewise() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
            .collect();
        // Byte-wise reference.
        let mut reference = 0xFFFF_FFFFu32;
        for &byte in &data {
            reference = (reference >> 8) ^ TABLES[0][((reference ^ byte as u32) & 0xFF) as usize];
        }
        let mut crc = Crc32::new();
        crc.update(&data);
        assert_eq!(crc.finalize(), !reference);
        assert_eq!(crc.length(), data.len() as u64);
    }

    #[test]
    fn from_state_resumes() {
        let data = b"resume me please, I am a buffer";
        let (first, second) = data.split_at(11);
        let mut one = Crc32::new();
        one.update(first);
        let mut resumed = Crc32::from_state(one.finalize(), one.length());
        resumed.update(second);
        let mut whole = Crc32::new();
        whole.update(data);
        assert_eq!(resumed.finalize(), whole.finalize());
        assert_eq!(resumed.length(), data.len() as u64);
    }
}
