//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Two implementations share the incremental [`Crc32`] state:
//!
//! * **slicing-by-16** — the portable scalar reference (16 bytes per
//!   iteration through sixteen 256-entry tables);
//! * **carryless-multiply folding** (x86-64 with `pclmulqdq` + `sse4.1`) —
//!   folds 64 input bytes per iteration into four 128-bit accumulators and
//!   finishes with a Barrett reduction, the construction from Intel's "Fast
//!   CRC Computation for Generic Polynomials Using PCLMULQDQ" white paper
//!   that ISA-L and zlib-ng use on their verify paths.
//!
//! The folding path is selected once per process via
//! `is_x86_feature_detected!` and can be pinned off with `RGZ_FORCE_SCALAR`
//! (see [`rgz_bitio::dispatch`]); both paths are bit-for-bit identical, which
//! the differential proptests in this module assert on arbitrary inputs and
//! split points.

const POLYNOMIAL: u32 = 0xEDB88320;

/// Sixteen 256-entry tables for the slicing-by-16 algorithm, generated at
/// compile time.  Processing 16 bytes per iteration keeps the checksum pass
/// well below the decoder's throughput, which matters now that random-access
/// reads re-hash every on-demand chunk against stored index fragments.
const TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut table = 1;
    while table < 16 {
        let mut i = 0;
        while i < 256 {
            let previous = tables[table - 1][i];
            tables[table][i] = (previous >> 8) ^ tables[0][(previous & 0xFF) as usize];
            i += 1;
        }
        table += 1;
    }
    tables
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
    length: u64,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a hasher with the standard initial state.
    pub fn new() -> Self {
        Self {
            state: 0xFFFF_FFFF,
            length: 0,
        }
    }

    /// Resumes hashing from a previously finalized CRC value.
    pub fn from_state(crc: u32, length: u64) -> Self {
        Self {
            state: !crc,
            length,
        }
    }

    /// Number of bytes hashed so far.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// Feeds `data` into the hash, through the hardware folding kernel when
    /// one is available (see [`active_isa`]).
    pub fn update(&mut self, data: &[u8]) {
        self.length += data.len() as u64;
        self.state = update_dispatch(self.state, data);
    }

    /// Feeds `data` into the hash through the scalar slicing-by-16 reference
    /// path, ignoring any available hardware kernel.
    ///
    /// This is the portable implementation the differential tests compare
    /// the folding kernel against, and the path every platform without
    /// `pclmulqdq` takes unconditionally.
    pub fn update_scalar(&mut self, data: &[u8]) {
        self.length += data.len() as u64;
        self.state = update_slicing16(self.state, data);
    }

    /// Returns the CRC-32 of everything fed so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// Name of the CRC-32 kernel `update` resolves to on this machine:
/// `"pclmulqdq"` for the carryless-multiply folding path or
/// `"slicing16"` for the scalar reference.
pub fn active_isa() -> &'static str {
    if pclmul_enabled() {
        "pclmulqdq"
    } else {
        "slicing16"
    }
}

/// Whether the folding kernel is compiled in, supported by this CPU, and not
/// pinned off by `RGZ_FORCE_SCALAR`.
#[inline]
fn pclmul_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| {
            !rgz_bitio::scalar_forced()
                && is_x86_feature_detected!("pclmulqdq")
                && is_x86_feature_detected!("sse4.1")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Raw-state update: routes the bulk of `data` through the folding kernel
/// when available and finishes the unaligned tail with slicing-by-16.
#[inline]
fn update_dispatch(state: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if data.len() >= pclmul::MIN_FOLD_LENGTH && pclmul_enabled() {
        // The kernel consumes whole 16-byte lanes; everything else is tail.
        let split = data.len() & !15;
        // SAFETY: `pclmul_enabled` verified pclmulqdq + sse4.1 at runtime,
        // and `split` is a non-zero multiple of 16 that is >= 64.
        #[allow(unsafe_code)]
        let state = unsafe { pclmul::fold(state, &data[..split]) };
        return update_slicing16(state, &data[split..]);
    }
    update_slicing16(state, data)
}

/// Scalar slicing-by-16 over the raw (non-inverted) CRC state.
fn update_slicing16(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let a = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let b = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        let c = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
        let d = u32::from_le_bytes([chunk[12], chunk[13], chunk[14], chunk[15]]);
        crc = TABLES[15][(a & 0xFF) as usize]
            ^ TABLES[14][((a >> 8) & 0xFF) as usize]
            ^ TABLES[13][((a >> 16) & 0xFF) as usize]
            ^ TABLES[12][((a >> 24) & 0xFF) as usize]
            ^ TABLES[11][(b & 0xFF) as usize]
            ^ TABLES[10][((b >> 8) & 0xFF) as usize]
            ^ TABLES[9][((b >> 16) & 0xFF) as usize]
            ^ TABLES[8][((b >> 24) & 0xFF) as usize]
            ^ TABLES[7][(c & 0xFF) as usize]
            ^ TABLES[6][((c >> 8) & 0xFF) as usize]
            ^ TABLES[5][((c >> 16) & 0xFF) as usize]
            ^ TABLES[4][((c >> 24) & 0xFF) as usize]
            ^ TABLES[3][(d & 0xFF) as usize]
            ^ TABLES[2][((d >> 8) & 0xFF) as usize]
            ^ TABLES[1][((d >> 16) & 0xFF) as usize]
            ^ TABLES[0][((d >> 24) & 0xFF) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc
}

/// Carryless-multiply CRC-32 folding (x86-64 `pclmulqdq` + `sse4.1`).
///
/// The folding constants are `x^N mod P` for the distances the loop shifts
/// by, precomputed for the reflected IEEE polynomial (the values published in
/// Intel's white paper and used by zlib-ng/ISA-L):
///
/// | constant | meaning            |
/// |----------|--------------------|
/// | `K1`     | `x^(4*128+32) mod P` — 64-byte-stride fold, low halves  |
/// | `K2`     | `x^(4*128-32) mod P` — 64-byte-stride fold, high halves |
/// | `K3`     | `x^(128+32) mod P` — 16-byte-stride fold, low halves    |
/// | `K4`     | `x^(128-32) mod P` — 16-byte-stride fold, high halves   |
/// | `K5`     | `x^64 mod P` — final 96→64 bit reduction                |
/// | `POLY_P` / `POLY_MU` | Barrett reduction constants                 |
// The workspace denies `unsafe_code`; the SIMD kernels are the vetted
// exception — `unsafe` here is confined to CPU intrinsics whose preconditions
// (feature detection, lane-aligned lengths) are checked by the dispatcher.
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use std::arch::x86_64::*;

    /// Smallest input the folding kernel accepts: four 16-byte lanes.
    pub(super) const MIN_FOLD_LENGTH: usize = 64;

    const K1: i64 = 0x0001_5444_2bd4;
    const K2: i64 = 0x0001_c6e4_1596;
    const K3: i64 = 0x0001_7519_97d0;
    const K4: i64 = 0x0000_ccaa_009e;
    const K5: i64 = 0x0001_63cd_6124;
    const POLY_P: i64 = 0x0001_db71_0641;
    const POLY_MU: i64 = 0x0001_f701_1641;

    /// Folds `data` into the raw CRC `state`.
    ///
    /// # Safety
    ///
    /// The CPU must support `pclmulqdq` and `sse4.1`, and `data.len()` must
    /// be a multiple of 16 that is at least [`MIN_FOLD_LENGTH`].
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub(super) unsafe fn fold(state: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= MIN_FOLD_LENGTH && data.len() % 16 == 0);
        let mut ptr = data.as_ptr().cast::<__m128i>();
        let mut remaining = data.len();

        // Four independent 128-bit accumulators, the CRC state folded into
        // the first lane.
        let mut x1 = _mm_loadu_si128(ptr);
        let mut x2 = _mm_loadu_si128(ptr.add(1));
        let mut x3 = _mm_loadu_si128(ptr.add(2));
        let mut x4 = _mm_loadu_si128(ptr.add(3));
        x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(state as i32));
        ptr = ptr.add(4);
        remaining -= 64;

        // 64 bytes per iteration: each accumulator folds itself 64 bytes
        // forward and absorbs the next input lane.
        let k1k2 = _mm_set_epi64x(K2, K1);
        while remaining >= 64 {
            let f1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
            let f2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
            let f3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
            let f4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
            x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
            x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
            x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, f1), _mm_loadu_si128(ptr));
            x2 = _mm_xor_si128(_mm_xor_si128(x2, f2), _mm_loadu_si128(ptr.add(1)));
            x3 = _mm_xor_si128(_mm_xor_si128(x3, f3), _mm_loadu_si128(ptr.add(2)));
            x4 = _mm_xor_si128(_mm_xor_si128(x4, f4), _mm_loadu_si128(ptr.add(3)));
            ptr = ptr.add(4);
            remaining -= 64;
        }

        // Fold the four accumulators into one, 16 bytes apart.
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut acc = x1;
        for next in [x2, x3, x4] {
            let low = _mm_clmulepi64_si128(acc, k3k4, 0x00);
            acc = _mm_clmulepi64_si128(acc, k3k4, 0x11);
            acc = _mm_xor_si128(_mm_xor_si128(acc, low), next);
        }

        // Remaining whole 16-byte lanes.
        while remaining >= 16 {
            let low = _mm_clmulepi64_si128(acc, k3k4, 0x00);
            acc = _mm_clmulepi64_si128(acc, k3k4, 0x11);
            acc = _mm_xor_si128(_mm_xor_si128(acc, low), _mm_loadu_si128(ptr));
            ptr = ptr.add(1);
            remaining -= 16;
        }

        // Reduce 128 -> 64 bits.
        let mask32 = _mm_setr_epi32(-1, 0, -1, 0);
        let folded = _mm_clmulepi64_si128(acc, k3k4, 0x10);
        let acc = _mm_xor_si128(_mm_srli_si128(acc, 8), folded);
        // Reduce 96 -> 64 bits with K5.
        let k5 = _mm_set_epi64x(0, K5);
        let high = _mm_srli_si128(acc, 4);
        let acc = _mm_and_si128(acc, mask32);
        let acc = _mm_xor_si128(_mm_clmulepi64_si128(acc, k5, 0x00), high);

        // Barrett reduction 64 -> 32 bits.
        let poly = _mm_set_epi64x(POLY_MU, POLY_P);
        let t = _mm_and_si128(acc, mask32);
        let t = _mm_clmulepi64_si128(t, poly, 0x10);
        let t = _mm_and_si128(t, mask32);
        let t = _mm_clmulepi64_si128(t, poly, 0x00);
        let acc = _mm_xor_si128(acc, t);
        _mm_extract_epi32(acc, 1) as u32
    }
}

// --- crc32_combine -----------------------------------------------------------
//
// CRCs over GF(2) are linear: appending `len2` zero bytes to the first buffer
// corresponds to multiplying its CRC by x^(8*len2) modulo the CRC polynomial.
// We represent that operator as a 32x32 bit matrix and exponentiate by
// repeated squaring, the same approach zlib takes.

type Matrix = [u32; 32];

fn matrix_times_vector(matrix: &Matrix, mut vector: u32) -> u32 {
    let mut result = 0u32;
    let mut index = 0;
    while vector != 0 {
        if vector & 1 != 0 {
            result ^= matrix[index];
        }
        vector >>= 1;
        index += 1;
    }
    result
}

fn matrix_square(destination: &mut Matrix, source: &Matrix) {
    for (column, entry) in destination.iter_mut().enumerate() {
        *entry = matrix_times_vector(source, source[column]);
    }
}

pub(crate) fn combine(crc_a: u32, crc_b: u32, mut len_b: u64) -> u32 {
    if len_b == 0 {
        return crc_a;
    }

    // Operator for one zero bit.
    let mut odd: Matrix = [0; 32];
    odd[0] = POLYNOMIAL;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    let mut even: Matrix = [0; 32];

    // odd = operator for one zero bit; square it to get operators for
    // 2, 4, 8, ... zero bits and apply those matching the binary
    // representation of len_b * 8.
    matrix_square(&mut even, &odd); // 2 bits
    matrix_square(&mut odd, &even); // 4 bits

    let mut crc = crc_a;
    loop {
        matrix_square(&mut even, &odd); // even = odd^2
        if len_b & 1 != 0 {
            crc = matrix_times_vector(&even, crc);
        }
        len_b >>= 1;
        if len_b == 0 {
            break;
        }
        matrix_square(&mut odd, &even);
        if len_b & 1 != 0 {
            crc = matrix_times_vector(&odd, crc);
        }
        len_b >>= 1;
        if len_b == 0 {
            break;
        }
    }
    crc ^ crc_b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_zero_matches_bitwise_definition() {
        for byte in 0u32..256 {
            let mut crc = byte;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLYNOMIAL
                } else {
                    crc >> 1
                };
            }
            assert_eq!(TABLES[0][byte as usize], crc);
        }
    }

    #[test]
    fn slicing_matches_bytewise() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
            .collect();
        // Byte-wise reference.
        let mut reference = 0xFFFF_FFFFu32;
        for &byte in &data {
            reference = (reference >> 8) ^ TABLES[0][((reference ^ byte as u32) & 0xFF) as usize];
        }
        let mut crc = Crc32::new();
        crc.update(&data);
        assert_eq!(crc.finalize(), !reference);
        assert_eq!(crc.length(), data.len() as u64);
    }

    #[test]
    fn folding_kernel_matches_scalar_on_fixed_sizes() {
        // Exercises every dispatch regime: below MIN_FOLD_LENGTH, exactly at
        // it, lane-aligned, and with 1..=15 tail bytes.
        let data: Vec<u8> = (0..8192u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 7) as u8)
            .collect();
        for len in [
            0, 1, 15, 16, 63, 64, 65, 79, 80, 127, 128, 1000, 4096, 8191, 8192,
        ] {
            let mut simd = Crc32::new();
            simd.update(&data[..len]);
            let mut scalar = Crc32::new();
            scalar.update_scalar(&data[..len]);
            assert_eq!(simd.finalize(), scalar.finalize(), "length {len}");
        }
    }

    #[test]
    fn active_isa_names_a_known_kernel() {
        assert!(matches!(super::active_isa(), "pclmulqdq" | "slicing16"));
    }

    #[test]
    fn from_state_resumes() {
        let data = b"resume me please, I am a buffer";
        let (first, second) = data.split_at(11);
        let mut one = Crc32::new();
        one.update(first);
        let mut resumed = Crc32::from_state(one.finalize(), one.length());
        resumed.update(second);
        let mut whole = Crc32::new();
        whole.update(data);
        assert_eq!(resumed.finalize(), whole.finalize());
        assert_eq!(resumed.length(), data.len() as u64);
    }
}
