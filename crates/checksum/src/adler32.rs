//! Adler-32 checksum as used by zlib streams (RFC 1950).

const MODULUS: u32 = 65_521;
/// Largest number of bytes that can be accumulated before the 32-bit sums
/// must be reduced modulo [`MODULUS`] (same bound zlib uses).
const MAX_CHUNK: usize = 5552;

/// Incremental Adler-32 hasher.
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Creates a hasher with the standard initial state (1).
    pub fn new() -> Self {
        Self { a: 1, b: 0 }
    }

    /// Resumes hashing from a previously finalized Adler-32 value.
    pub fn from_state(adler: u32) -> Self {
        Self {
            a: adler & 0xFFFF,
            b: adler >> 16,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        for chunk in data.chunks(MAX_CHUNK) {
            for &byte in chunk {
                self.a += byte as u32;
                self.b += self.a;
            }
            self.a %= MODULUS;
            self.b %= MODULUS;
        }
    }

    /// Returns the Adler-32 of everything fed so far.
    pub fn finalize(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let mut incremental = Adler32::new();
        for chunk in data.chunks(97) {
            incremental.update(chunk);
        }
        let mut one_shot = Adler32::new();
        one_shot.update(&data);
        assert_eq!(incremental.finalize(), one_shot.finalize());
    }

    #[test]
    fn from_state_resumes() {
        let data = b"the adler checksum can be resumed from a finalized value";
        let (first, second) = data.split_at(20);
        let mut one = Adler32::new();
        one.update(first);
        let mut resumed = Adler32::from_state(one.finalize());
        resumed.update(second);
        let mut whole = Adler32::new();
        whole.update(data);
        assert_eq!(resumed.finalize(), whole.finalize());
    }

    proptest! {
        #[test]
        fn matches_naive_definition(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let mut a: u64 = 1;
            let mut b: u64 = 0;
            for &byte in &data {
                a = (a + byte as u64) % MODULUS as u64;
                b = (b + a) % MODULUS as u64;
            }
            let expected = ((b as u32) << 16) | a as u32;
            let mut hasher = Adler32::new();
            hasher.update(&data);
            prop_assert_eq!(hasher.finalize(), expected);
        }
    }
}
