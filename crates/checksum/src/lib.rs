//! Checksums required by the gzip and zlib container formats.
//!
//! Both are implemented from scratch: CRC-32 (IEEE, reflected polynomial
//! `0xEDB88320`) with a runtime-dispatched carryless-multiply folding kernel
//! on x86-64 (`pclmulqdq`, see [`crc32_active_isa`]) over a portable
//! slicing-by-16 reference so that checksum computation does not dominate
//! single-threaded decompression, and Adler-32 for zlib streams.

mod adler32;
mod crc32;

pub use adler32::Adler32;
pub use crc32::{active_isa as crc32_active_isa, Crc32};

/// Convenience helper: CRC-32 of a whole buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finalize()
}

/// [`crc32`] through the scalar slicing-by-16 reference path, ignoring any
/// available hardware folding kernel.  The differential tests (and the
/// benchmark harness) compare [`crc32`] against this.
pub fn crc32_scalar(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update_scalar(data);
    crc.finalize()
}

/// Convenience helper: Adler-32 of a whole buffer.
pub fn adler32(data: &[u8]) -> u32 {
    let mut adler = Adler32::new();
    adler.update(data);
    adler.finalize()
}

/// Combines two CRC-32 values computed over consecutive buffers, as if the
/// buffers had been hashed in one pass.  `crc_b` is the CRC of the second
/// buffer and `len_b` its length in bytes.
///
/// This is the same construction `zlib`'s `crc32_combine` uses and allows the
/// parallel decompressor to verify whole-stream checksums even though chunks
/// are hashed independently on worker threads.
pub fn crc32_combine(crc_a: u32, crc_b: u32, len_b: u64) -> u32 {
    crc32::combine(crc_a, crc_b, len_b)
}

/// CRC-32 of every fragment of `data` delimited by `fragment_ends` (sorted
/// end offsets, one per split point).  The returned vector always has
/// `fragment_ends.len() + 1` entries — the last one hashes the (possibly
/// empty) tail after the final split.
///
/// This is the slicing step behind per-member chunk verification: the
/// parallel decompressor splits every chunk's output at gzip member
/// boundaries, hashes each piece independently, and later folds the pieces
/// with [`crc32_combine`] or compares them against an index's stored
/// fragments.
pub fn crc32_fragments(data: &[u8], fragment_ends: &[usize]) -> Vec<u32> {
    debug_assert!(fragment_ends.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(fragment_ends.iter().all(|&end| end <= data.len()));
    let mut crcs = Vec::with_capacity(fragment_ends.len() + 1);
    let mut start = 0usize;
    for &end in fragment_ends {
        crcs.push(crc32(&data[start..end]));
        start = end;
    }
    crcs.push(crc32(&data[start..]));
    crcs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6CAB0B);
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E60398);
        assert_eq!(adler32(b"123456789"), 0x091E01DE);
    }

    #[test]
    fn crc32_incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 7 + 3) as u8).collect();
        let mut crc = Crc32::new();
        for chunk in data.chunks(13) {
            crc.update(chunk);
        }
        assert_eq!(crc.finalize(), crc32(&data));
    }

    #[test]
    fn crc32_combine_matches_concatenation() {
        let a: Vec<u8> = (0..777u32).map(|i| (i ^ 0x5A) as u8).collect();
        let b: Vec<u8> = (0..1234u32).map(|i| (i.wrapping_mul(31)) as u8).collect();
        let mut whole = a.clone();
        whole.extend_from_slice(&b);
        let combined = crc32_combine(crc32(&a), crc32(&b), b.len() as u64);
        assert_eq!(combined, crc32(&whole));
    }

    #[test]
    fn crc32_fragments_cover_the_buffer_and_fold_back_to_the_whole() {
        let data: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(13) >> 3) as u8)
            .collect();
        let ends = [0usize, 1200, 1200, 4999];
        let crcs = crc32_fragments(&data, &ends);
        assert_eq!(crcs.len(), ends.len() + 1);
        assert_eq!(crcs[0], crc32(b""));
        assert_eq!(crcs[1], crc32(&data[..1200]));
        assert_eq!(crcs[2], crc32(b""));
        // Folding the fragments in order reproduces the one-shot hash.
        let mut starts = vec![0];
        starts.extend_from_slice(&ends);
        let mut folded = 0u32;
        for (crc, length) in crcs.iter().zip(
            starts
                .iter()
                .zip(ends.iter().chain(std::iter::once(&data.len())))
                .map(|(&s, &e)| (e - s) as u64),
        ) {
            folded = crc32_combine(folded, *crc, length);
        }
        assert_eq!(folded, crc32(&data));
        // No split points: one fragment hashing the whole buffer.
        assert_eq!(crc32_fragments(&data, &[]), vec![crc32(&data)]);
    }

    #[test]
    fn crc32_combine_with_empty_parts() {
        let a = b"hello world".as_slice();
        assert_eq!(crc32_combine(crc32(a), crc32(b""), 0), crc32(a));
        assert_eq!(
            crc32_combine(crc32(b""), crc32(a), a.len() as u64),
            crc32(a)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            // The hardware folding kernel must be bit-for-bit identical to
            // the scalar slicing-by-16 reference on arbitrary inputs, for
            // one-shot hashing and for arbitrary incremental split points
            // (which exercise resumed states and sub-lane tails).  On
            // machines without pclmulqdq this degenerates to scalar ==
            // scalar and still runs, keeping the harness portable.
            #[test]
            fn simd_and_scalar_crc32_agree(
                data in proptest::collection::vec(any::<u8>(), 0..4096),
                split_one in 0usize..4097,
                split_two in 0usize..4097,
            ) {
                prop_assert_eq!(crc32(&data), crc32_scalar(&data));

                let first = split_one % (data.len() + 1);
                let second = split_two % (data.len() + 1);
                let (low, high) = (first.min(second), first.max(second));
                let mut incremental = Crc32::new();
                incremental.update(&data[..low]);
                incremental.update(&data[low..high]);
                incremental.update(&data[high..]);
                prop_assert_eq!(incremental.finalize(), crc32_scalar(&data));
                prop_assert_eq!(incremental.length(), data.len() as u64);
            }
            // The GF(2) construction behind `crc32_combine` makes the fold
            // associative: for any 3-way split a|b|c of a buffer, combining
            // left-to-right, right-to-left, or hashing the whole buffer in
            // one pass must agree.  This is what lets the parallel reader
            // fold per-chunk fragment CRCs in stream order regardless of
            // where chunk boundaries fall.
            #[test]
            fn crc32_combine_is_associative_over_arbitrary_3way_splits(
                data in proptest::collection::vec(any::<u8>(), 0..6000),
                cut_one in 0usize..6001,
                cut_two in 0usize..6001,
            ) {
                let first = cut_one % (data.len() + 1);
                let second = cut_two % (data.len() + 1);
                let (low, high) = (first.min(second), first.max(second));
                let (a, b, c) = (&data[..low], &data[low..high], &data[high..]);

                let ab = crc32_combine(crc32(a), crc32(b), b.len() as u64);
                let left = crc32_combine(ab, crc32(c), c.len() as u64);

                let bc = crc32_combine(crc32(b), crc32(c), c.len() as u64);
                let right = crc32_combine(crc32(a), bc, (b.len() + c.len()) as u64);

                let whole = crc32(&data);
                prop_assert_eq!(left, whole);
                prop_assert_eq!(right, whole);
            }

            // Splitting at every chunk boundary of a random partition and
            // folding sequentially (the verifier's access pattern) matches
            // the one-shot hash.
            #[test]
            fn sequential_fold_of_random_partitions_matches_one_shot(
                data in proptest::collection::vec(any::<u8>(), 1..4000),
                chunk in 1usize..512,
            ) {
                let mut folded = 0u32;
                for piece in data.chunks(chunk) {
                    folded = crc32_combine(folded, crc32(piece), piece.len() as u64);
                }
                prop_assert_eq!(folded, crc32(&data));
            }
        }
    }
}
