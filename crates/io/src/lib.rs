//! File-reading abstraction (§3, "FileReader" in the class diagram; §4.2,
//! Figure 8).
//!
//! The parallel decompressor needs many threads to read disjoint ranges of
//! the same compressed file concurrently.  [`FileReader`] abstracts
//! positional reads so the rest of the system works identically on regular
//! files ([`StandardFileReader`]), in-memory buffers ([`MemoryFileReader`])
//! and sequential-only sources such as pipes or Python file-like objects
//! ([`SequentialFileReader`], which serialises access behind a lock — the
//! stand-in for the paper's `PythonFileReader`).
//!
//! [`SharedFileReader`] is the cheaply clonable handle handed to worker
//! threads; its strided-read throughput is what Figure 8 measures.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rgz_metrics::{exponential_buckets, Counter, Histogram, MetricsRegistry};

/// Positional, thread-safe read access to a compressed input.
pub trait FileReader: Send + Sync {
    /// Reads up to `buffer.len()` bytes starting at `offset`, returning the
    /// number of bytes read (0 at end of file).
    fn read_at(&self, offset: u64, buffer: &mut [u8]) -> io::Result<usize>;

    /// Total size of the input in bytes.
    fn size(&self) -> u64;
}

/// Reads exactly `length` bytes at `offset` (shorter only at end of file).
pub fn read_range(reader: &dyn FileReader, offset: u64, length: usize) -> io::Result<Vec<u8>> {
    let available = reader.size().saturating_sub(offset).min(length as u64) as usize;
    let mut buffer = vec![0u8; available];
    let mut filled = 0usize;
    while filled < buffer.len() {
        let read = reader.read_at(offset + filled as u64, &mut buffer[filled..])?;
        if read == 0 {
            break;
        }
        filled += read;
    }
    buffer.truncate(filled);
    Ok(buffer)
}

// --- in-memory ---------------------------------------------------------------

/// A [`FileReader`] over an in-memory buffer.
#[derive(Debug, Clone)]
pub struct MemoryFileReader {
    data: Bytes,
}

impl MemoryFileReader {
    /// Wraps a buffer.
    pub fn new(data: impl Into<Bytes>) -> Self {
        Self { data: data.into() }
    }

    /// Borrow the underlying bytes.
    pub fn bytes(&self) -> &Bytes {
        &self.data
    }
}

impl FileReader for MemoryFileReader {
    fn read_at(&self, offset: u64, buffer: &mut [u8]) -> io::Result<usize> {
        if offset >= self.data.len() as u64 {
            return Ok(0);
        }
        let start = offset as usize;
        let length = buffer.len().min(self.data.len() - start);
        buffer[..length].copy_from_slice(&self.data[start..start + length]);
        Ok(length)
    }

    fn size(&self) -> u64 {
        self.data.len() as u64
    }
}

// --- regular files -----------------------------------------------------------

/// A [`FileReader`] over a regular file using positional reads (`pread`), so
/// that all threads can share one file descriptor without seeking.
#[derive(Debug)]
pub struct StandardFileReader {
    file: File,
    size: u64,
}

impl StandardFileReader {
    /// Opens `path` for shared positional reading.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        let size = file.metadata()?.len();
        Ok(Self { file, size })
    }

    /// Wraps an already opened file.
    pub fn from_file(file: File) -> io::Result<Self> {
        let size = file.metadata()?.len();
        Ok(Self { file, size })
    }
}

impl FileReader for StandardFileReader {
    #[cfg(unix)]
    fn read_at(&self, offset: u64, buffer: &mut [u8]) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        self.file.read_at(buffer, offset)
    }

    #[cfg(not(unix))]
    fn read_at(&self, offset: u64, buffer: &mut [u8]) -> io::Result<usize> {
        use std::io::Read;
        let mut clone = self.file.try_clone()?;
        clone.seek(SeekFrom::Start(offset))?;
        clone.read(buffer)
    }

    fn size(&self) -> u64 {
        self.size
    }
}

// --- sequential sources ------------------------------------------------------

/// Adapts a sequential `Read + Seek` source (a pipe buffered to a temporary
/// file, a Python file-like object, …) to the positional [`FileReader`]
/// interface by serialising access behind a mutex.
pub struct SequentialFileReader<R> {
    inner: Mutex<R>,
    size: u64,
}

impl<R: Read + Seek + Send> SequentialFileReader<R> {
    /// Wraps a seekable sequential reader.
    pub fn new(mut inner: R) -> io::Result<Self> {
        let size = inner.seek(SeekFrom::End(0))?;
        inner.seek(SeekFrom::Start(0))?;
        Ok(Self {
            inner: Mutex::new(inner),
            size,
        })
    }
}

impl<R: Read + Seek + Send> FileReader for SequentialFileReader<R> {
    fn read_at(&self, offset: u64, buffer: &mut [u8]) -> io::Result<usize> {
        let mut guard = self.inner.lock();
        guard.seek(SeekFrom::Start(offset))?;
        guard.read(buffer)
    }

    fn size(&self) -> u64 {
        self.size
    }
}

// --- instrumentation ---------------------------------------------------------

/// Wraps any [`FileReader`] and counts every positional read (call count,
/// bytes returned, latency) into a live metrics registry.
///
/// The wrapper sits at the bottom of the pipeline, so `rgz_read_bytes_total`
/// is the ground truth for compressed bytes pulled in — including bytes read
/// twice by wasted speculation, which no higher layer can see.
pub struct InstrumentedFileReader {
    inner: Arc<dyn FileReader>,
    metrics: Arc<MetricsRegistry>,
    reads_total: Counter,
    read_bytes_total: Counter,
    read_seconds: Histogram,
}

impl InstrumentedFileReader {
    /// Wraps `inner`, registering the I/O metric families on `metrics`.
    pub fn new(inner: Arc<dyn FileReader>, metrics: Arc<MetricsRegistry>) -> Self {
        let reads_total = metrics.counter(
            "rgz_read_calls_total",
            "Positional read calls issued to the compressed input.",
        );
        let read_bytes_total = metrics.counter(
            "rgz_read_bytes_total",
            "Compressed bytes returned by positional reads (includes speculative re-reads).",
        );
        let read_seconds = metrics.histogram(
            "rgz_read_seconds",
            "Latency of one positional read call.",
            &exponential_buckets(0.000_01, 4.0, 10),
        );
        Self {
            inner,
            metrics,
            reads_total,
            read_bytes_total,
            read_seconds,
        }
    }
}

impl FileReader for InstrumentedFileReader {
    fn read_at(&self, offset: u64, buffer: &mut [u8]) -> io::Result<usize> {
        if !self.metrics.is_enabled() {
            return self.inner.read_at(offset, buffer);
        }
        let timer = self.read_seconds.start_timer();
        let result = self.inner.read_at(offset, buffer);
        match &result {
            Ok(read) => {
                self.reads_total.inc();
                self.read_bytes_total.add(*read as u64);
            }
            Err(_) => timer.discard(),
        }
        result
    }

    fn size(&self) -> u64 {
        self.inner.size()
    }
}

// --- shared handle -----------------------------------------------------------

/// A cheaply clonable, thread-safe handle to any [`FileReader`].
#[derive(Clone)]
pub struct SharedFileReader {
    inner: Arc<dyn FileReader>,
}

impl std::fmt::Debug for SharedFileReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedFileReader")
            .field("size", &self.size())
            .finish()
    }
}

impl SharedFileReader {
    /// Wraps any reader implementation.
    pub fn new(reader: impl FileReader + 'static) -> Self {
        Self {
            inner: Arc::new(reader),
        }
    }

    /// Wraps an in-memory buffer.
    pub fn from_bytes(data: impl Into<Bytes>) -> Self {
        Self::new(MemoryFileReader::new(data))
    }

    /// Opens a file from a path.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(StandardFileReader::open(path)?))
    }

    /// Reads exactly the requested range (shorter only at end of file).
    pub fn read_range(&self, offset: u64, length: usize) -> io::Result<Vec<u8>> {
        read_range(self.inner.as_ref(), offset, length)
    }

    /// Returns a handle that reports every read to `metrics`
    /// (see [`InstrumentedFileReader`]).
    pub fn instrumented(&self, metrics: Arc<MetricsRegistry>) -> SharedFileReader {
        SharedFileReader {
            inner: Arc::new(InstrumentedFileReader::new(
                Arc::clone(&self.inner),
                metrics,
            )),
        }
    }
}

impl FileReader for SharedFileReader {
    fn read_at(&self, offset: u64, buffer: &mut [u8]) -> io::Result<usize> {
        self.inner.read_at(offset, buffer)
    }

    fn size(&self) -> u64 {
        self.inner.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_data(length: usize) -> Vec<u8> {
        (0..length).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn memory_reader_reads_ranges_and_clamps_at_eof() {
        let data = sample_data(1000);
        let reader = MemoryFileReader::new(data.clone());
        assert_eq!(reader.size(), 1000);
        let mut buffer = [0u8; 16];
        assert_eq!(reader.read_at(0, &mut buffer).unwrap(), 16);
        assert_eq!(&buffer[..], &data[..16]);
        assert_eq!(reader.read_at(995, &mut buffer).unwrap(), 5);
        assert_eq!(&buffer[..5], &data[995..]);
        assert_eq!(reader.read_at(1000, &mut buffer).unwrap(), 0);
        assert_eq!(reader.read_at(5000, &mut buffer).unwrap(), 0);
    }

    #[test]
    fn read_range_helper_is_exact() {
        let data = sample_data(10_000);
        let reader = SharedFileReader::from_bytes(data.clone());
        assert_eq!(reader.read_range(100, 256).unwrap(), &data[100..356]);
        assert_eq!(reader.read_range(9990, 100).unwrap(), &data[9990..]);
        assert_eq!(reader.read_range(20_000, 10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn standard_file_reader_reads_files() {
        let data = sample_data(64 * 1024);
        let path = std::env::temp_dir().join(format!("rgz_io_test_{}.bin", std::process::id()));
        std::fs::write(&path, &data).unwrap();
        let reader = SharedFileReader::open(&path).unwrap();
        assert_eq!(reader.size(), data.len() as u64);
        assert_eq!(
            reader.read_range(1234, 4096).unwrap(),
            &data[1234..1234 + 4096]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequential_reader_serialises_positional_access() {
        let data = sample_data(8192);
        let reader = SequentialFileReader::new(Cursor::new(data.clone())).unwrap();
        assert_eq!(reader.size(), 8192);
        let mut buffer = [0u8; 128];
        assert_eq!(reader.read_at(4000, &mut buffer).unwrap(), 128);
        assert_eq!(&buffer[..], &data[4000..4128]);
        assert_eq!(reader.read_at(0, &mut buffer).unwrap(), 128);
        assert_eq!(&buffer[..], &data[..128]);
    }

    #[test]
    fn instrumented_reader_counts_calls_and_bytes() {
        let data = sample_data(4096);
        let registry = Arc::new(rgz_metrics::MetricsRegistry::new_enabled());
        let reader = SharedFileReader::from_bytes(data.clone()).instrumented(Arc::clone(&registry));
        assert_eq!(reader.read_range(0, 1000).unwrap(), &data[..1000]);
        assert_eq!(reader.read_range(4000, 200).unwrap(), &data[4000..]);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("rgz_read_calls_total", &[]), Some(2));
        assert_eq!(snapshot.counter("rgz_read_bytes_total", &[]), Some(1096));
        assert_eq!(
            snapshot.histogram("rgz_read_seconds", &[]).unwrap().count,
            2
        );
        // A disabled registry must not count (and not pay for timers).
        registry.set_enabled(false);
        reader.read_range(0, 100).unwrap();
        assert_eq!(
            registry.snapshot().counter("rgz_read_calls_total", &[]),
            Some(2)
        );
    }

    #[test]
    fn shared_reader_supports_concurrent_strided_reads() {
        // A miniature version of the Figure 8 access pattern: N threads read
        // interleaved 4 KiB stripes of the same in-memory file.
        let data = sample_data(1 << 20);
        let reader = SharedFileReader::from_bytes(data.clone());
        let threads = 8usize;
        let stripe = 4096usize;
        let results: Vec<bool> = std::thread::scope(|scope| {
            (0..threads)
                .map(|thread_index| {
                    let reader = reader.clone();
                    let data = &data;
                    scope.spawn(move || {
                        let mut offset = thread_index * stripe;
                        while offset < data.len() {
                            let chunk = reader.read_range(offset as u64, stripe).unwrap();
                            if chunk != data[offset..(offset + stripe).min(data.len())] {
                                return false;
                            }
                            offset += stripe * threads;
                        }
                        true
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .collect()
        });
        assert!(results.into_iter().all(|ok| ok));
    }
}
