//! LSB-first bit writer used by the DEFLATE compressor and by tests that
//! construct hand-crafted bit streams.

use crate::low_bit_mask;

/// An LSB-first bit writer that accumulates into a `Vec<u8>`.
///
/// This is the exact inverse of [`crate::BitReader`]: a stream written with
/// `write_bits(v, n)` calls reads back the same values with `read(n)`.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits not yet flushed to `bytes` (low bits first).
    bit_buffer: u64,
    /// Number of valid bits in `bit_buffer` (always < 8 after `flush_full_bytes`).
    bit_count: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with a pre-allocated output capacity in bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(capacity),
            bit_buffer: 0,
            bit_count: 0,
        }
    }

    /// Current length of the produced stream in bits.
    #[inline]
    pub fn position(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.bit_count as u64
    }

    #[inline]
    fn flush_full_bytes(&mut self) {
        while self.bit_count >= 8 {
            self.bytes.push((self.bit_buffer & 0xFF) as u8);
            self.bit_buffer >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Appends the low `count` bits of `value`, LSB first. `count` must be
    /// at most 56.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 56, "write_bits supports at most 56 bits per call");
        self.bit_buffer |= (value & low_bit_mask(count)) << self.bit_count;
        self.bit_count += count;
        self.flush_full_bytes();
    }

    /// Writes a Huffman code given MSB-first (as canonical codes are
    /// defined); the bits are emitted in the reversed order DEFLATE expects.
    #[inline]
    pub fn write_huffman_code(&mut self, code: u32, length: u32) {
        let reversed = crate::reverse_bits(code, length);
        self.write_bits(reversed as u64, length);
    }

    /// Pads with zero bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        if self.bit_count % 8 != 0 {
            let padding = 8 - (self.bit_count % 8);
            self.write_bits(0, padding);
        }
    }

    /// Appends whole bytes. The writer must be byte-aligned.
    pub fn write_bytes(&mut self, data: &[u8]) {
        assert_eq!(
            self.bit_count % 8,
            0,
            "write_bytes requires a byte-aligned writer"
        );
        self.flush_full_bytes();
        debug_assert_eq!(self.bit_count, 0);
        self.bytes.extend_from_slice(data);
    }

    /// Finishes the stream, padding the final partial byte with zeros, and
    /// returns the accumulated bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.flush_full_bytes();
        debug_assert_eq!(self.bit_count, 0);
        self.bytes
    }

    /// Read-only view of the fully flushed bytes produced so far.
    pub fn flushed_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitReader;
    use proptest::prelude::*;

    #[test]
    fn writes_lsb_first() {
        let mut writer = BitWriter::new();
        writer.write_bits(0b0, 1);
        writer.write_bits(0b10, 2);
        writer.write_bits(0b10110, 5);
        let bytes = writer.finish();
        assert_eq!(bytes, vec![0xB4]);
    }

    #[test]
    fn align_and_write_bytes() {
        let mut writer = BitWriter::new();
        writer.write_bits(0b101, 3);
        writer.align_to_byte();
        writer.write_bytes(&[0xDE, 0xAD]);
        assert_eq!(writer.position(), 24);
        let bytes = writer.finish();
        assert_eq!(bytes, vec![0b0000_0101, 0xDE, 0xAD]);
    }

    #[test]
    fn huffman_code_round_trip() {
        // Code 0b110 of length 3 (MSB-first) must read back as 0b110 when the
        // reader re-reverses the peeked bits.
        let mut writer = BitWriter::new();
        writer.write_huffman_code(0b110, 3);
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        let raw = reader.read(3).unwrap() as u32;
        assert_eq!(crate::reverse_bits(raw, 3), 0b110);
    }

    #[test]
    fn position_tracks_unflushed_bits() {
        let mut writer = BitWriter::new();
        assert_eq!(writer.position(), 0);
        writer.write_bits(0x3, 2);
        assert_eq!(writer.position(), 2);
        writer.write_bits(0xFFFF, 16);
        assert_eq!(writer.position(), 18);
    }

    proptest! {
        #[test]
        fn writer_reader_round_trip(values in proptest::collection::vec((any::<u64>(), 1u32..25), 0..200)) {
            let mut writer = BitWriter::new();
            for &(value, count) in &values {
                writer.write_bits(value, count);
            }
            let bytes = writer.finish();
            let mut reader = BitReader::new(&bytes);
            for &(value, count) in &values {
                prop_assert_eq!(reader.read(count).unwrap(), value & crate::low_bit_mask(count));
            }
        }
    }
}
