//! Bit-granular readers and writers used throughout the rapidgzip-rs
//! reproduction.
//!
//! DEFLATE packs data LSB-first inside each byte: the first bit of the stream
//! is the least-significant bit of the first byte.  [`BitReader`] and
//! [`BitWriter`] implement exactly this bit order.  The reader maintains a
//! 64-bit refill buffer so that typical DEFLATE reads (1–16 bits) and the
//! block-finder peeks (up to 57 bits) cost only a few instructions, which is
//! what Figure 7 of the paper measures.

pub mod dispatch;
mod reader;
mod writer;

pub use dispatch::scalar_forced;
pub use reader::BitReader;
pub use writer::BitWriter;

/// Errors produced by bit-level readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitIoError {
    /// The requested number of bits extends past the end of the input.
    UnexpectedEof {
        /// Bit position at which the read was attempted.
        position: u64,
        /// Number of bits requested.
        requested: u32,
        /// Number of bits still available.
        available: u64,
    },
    /// A read or peek requested more bits than the implementation supports
    /// in a single call (at most [`MAX_BITS_PER_READ`]).
    TooManyBits(u32),
    /// A seek targeted a bit offset beyond the end of the input.
    SeekOutOfBounds {
        /// Requested bit offset.
        target: u64,
        /// Size of the input in bits.
        size: u64,
    },
}

impl std::fmt::Display for BitIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitIoError::UnexpectedEof {
                position,
                requested,
                available,
            } => write!(
                f,
                "unexpected end of bit stream at bit {position}: requested {requested} bits, \
                 {available} available"
            ),
            BitIoError::TooManyBits(n) => {
                write!(
                    f,
                    "requested {n} bits in one call, maximum is {MAX_BITS_PER_READ}"
                )
            }
            BitIoError::SeekOutOfBounds { target, size } => {
                write!(
                    f,
                    "seek to bit {target} is beyond the input size of {size} bits"
                )
            }
        }
    }
}

impl std::error::Error for BitIoError {}

/// Maximum number of bits a single [`BitReader::read`] or
/// [`BitReader::peek`] call may request.
pub const MAX_BITS_PER_READ: u32 = 57;

/// Returns a mask with the lowest `count` bits set. `count` must be <= 64.
#[inline]
pub const fn low_bit_mask(count: u32) -> u64 {
    if count >= 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Reverses the lowest `length` bits of `code`.
///
/// Canonical Huffman codes are defined MSB-first while DEFLATE streams are
/// read LSB-first, so both the encoder and the decoder LUT construction need
/// this helper.
#[inline]
pub const fn reverse_bits(code: u32, length: u32) -> u32 {
    let mut reversed = 0u32;
    let mut i = 0;
    while i < length {
        reversed |= ((code >> i) & 1) << (length - 1 - i);
        i += 1;
    }
    reversed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bit_mask_values() {
        assert_eq!(low_bit_mask(0), 0);
        assert_eq!(low_bit_mask(1), 1);
        assert_eq!(low_bit_mask(8), 0xFF);
        assert_eq!(low_bit_mask(57), (1u64 << 57) - 1);
        assert_eq!(low_bit_mask(64), u64::MAX);
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b10, 2), 0b01);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b10110, 5), 0b01101);
        assert_eq!(reverse_bits(0, 15), 0);
    }

    #[test]
    fn reverse_twice_is_identity() {
        for length in 1..=15u32 {
            for code in 0..(1u32 << length.min(10)) {
                assert_eq!(reverse_bits(reverse_bits(code, length), length), code);
            }
        }
    }

    #[test]
    fn error_display() {
        let err = BitIoError::UnexpectedEof {
            position: 10,
            requested: 8,
            available: 3,
        };
        assert!(err.to_string().contains("unexpected end"));
        assert!(BitIoError::TooManyBits(99).to_string().contains("99"));
        assert!(BitIoError::SeekOutOfBounds { target: 5, size: 2 }
            .to_string()
            .contains("beyond"));
    }
}
