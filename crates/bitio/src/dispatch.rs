//! Shared runtime-dispatch support for the SIMD hot-path kernels.
//!
//! Every accelerated kernel in the workspace (carryless-multiply CRC-32 in
//! `rgz_checksum`, SIMD marker replacement in `rgz_deflate`, the block-finder
//! prefilter in `rgz_blockfinder`) keeps its scalar implementation as the
//! portable reference and selects the widest available instruction set at
//! runtime.  This module centralises the one policy knob they all share: the
//! `RGZ_FORCE_SCALAR` environment variable, which pins every kernel to its
//! scalar reference path (used by the CI fallback leg and by differential
//! benchmarks).

use std::sync::OnceLock;

/// Returns `true` when `RGZ_FORCE_SCALAR` is set (to anything but `0` or the
/// empty string), requesting that all SIMD kernels take their scalar
/// reference paths.  Read once per process.
pub fn scalar_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var_os("RGZ_FORCE_SCALAR") {
        None => false,
        Some(value) => !value.is_empty() && value != *"0",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_forced_is_stable_across_calls() {
        // The value is latched on first use; both calls must agree.
        assert_eq!(scalar_forced(), scalar_forced());
    }
}
