//! LSB-first bit reader over an in-memory byte slice.

use crate::{low_bit_mask, BitIoError, MAX_BITS_PER_READ};

/// An LSB-first bit reader over a byte slice.
///
/// The reader tracks an exact bit position, supports arbitrary bit-granular
/// seeks (needed because DEFLATE blocks may start at any bit offset), and
/// offers `peek`/`consume` primitives so that table-driven Huffman decoders
/// can look at the next 15 bits without committing to them.
#[derive(Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next byte that has not yet been loaded into `bit_buffer`.
    next_byte: usize,
    /// Bits that have been loaded from `data` but not yet consumed.
    bit_buffer: u64,
    /// Number of valid bits in `bit_buffer`.
    bit_count: u32,
}

impl<'a> std::fmt::Debug for BitReader<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitReader")
            .field("size_bits", &self.size_in_bits())
            .field("position", &self.position())
            .finish()
    }
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at bit 0 of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            next_byte: 0,
            bit_buffer: 0,
            bit_count: 0,
        }
    }

    /// Total size of the underlying data in bits.
    #[inline]
    pub fn size_in_bits(&self) -> u64 {
        (self.data.len() as u64) * 8
    }

    /// Current bit position (number of bits consumed so far).
    #[inline]
    pub fn position(&self) -> u64 {
        (self.next_byte as u64) * 8 - self.bit_count as u64
    }

    /// Number of bits remaining until the end of the data.
    #[inline]
    pub fn remaining_bits(&self) -> u64 {
        self.size_in_bits() - self.position()
    }

    /// Whether all bits have been consumed.
    #[inline]
    pub fn is_at_end(&self) -> bool {
        self.remaining_bits() == 0
    }

    /// The underlying byte slice.
    #[inline]
    pub fn data(&self) -> &'a [u8] {
        self.data
    }

    #[inline]
    fn refill(&mut self) {
        // Fast path: load eight bytes in one go and advance by however many
        // whole bytes fit into the buffer.  This leaves 56..=63 buffered bits;
        // the byte loop below tops the buffer up to >56 bits (so that 57-bit
        // peeks keep working) and handles the last seven bytes of the data.
        if self.bit_count < 56 && self.next_byte + 8 <= self.data.len() {
            let word = u64::from_le_bytes(
                self.data[self.next_byte..self.next_byte + 8]
                    .try_into()
                    .expect("eight bytes were checked to be available"),
            );
            self.bit_buffer |= word << self.bit_count;
            let added_bytes = (63 - self.bit_count) >> 3;
            self.next_byte += added_bytes as usize;
            self.bit_count += added_bytes * 8;
        }
        while self.bit_count <= 56 && self.next_byte < self.data.len() {
            self.bit_buffer |= (self.data[self.next_byte] as u64) << self.bit_count;
            self.bit_count += 8;
            self.next_byte += 1;
        }
    }

    /// Refills the internal bit buffer from the underlying data.
    ///
    /// After the call the buffer holds at least 57 bits, unless fewer bits
    /// remain in the input (in which case it holds all of them).  One call
    /// amortises over several subsequent [`BitReader::peek_cached`] /
    /// [`BitReader::consume_cached`] steps, which is what lets a multi-symbol
    /// Huffman decoder consume 2+ symbols between bounds checks.
    #[inline]
    pub fn fill_buffer(&mut self) {
        self.refill();
    }

    /// Number of bits currently buffered (available to
    /// [`BitReader::peek_cached`] / [`BitReader::consume_cached`] without
    /// another refill).
    #[inline]
    pub fn cached_bits(&self) -> u32 {
        self.bit_count
    }

    /// Returns the next `count` bits without consuming them and **without
    /// refilling** the buffer.
    ///
    /// Only the low [`BitReader::cached_bits`] bits of the result are
    /// guaranteed meaningful.  Beyond them the value is *unspecified*: zero
    /// at the true end of the input, but mid-stream the word-based refill
    /// may leave (correct) not-yet-accounted input bits above `cached_bits`.
    /// Callers must therefore guard with `cached_bits()` before acting on a
    /// peek — the decode fast path only peeks after checking it has enough
    /// buffered bits for the worst-case step.
    #[inline]
    pub fn peek_cached(&self, count: u32) -> u64 {
        debug_assert!(count <= MAX_BITS_PER_READ);
        self.bit_buffer & low_bit_mask(count)
    }

    /// Consumes `count` bits that are known to be buffered.
    ///
    /// Contract: `count <= cached_bits()`, checked only via `debug_assert`.
    /// Violating it corrupts the reader's position tracking (it cannot cause
    /// memory unsafety).  The decode fast path upholds it by refilling once
    /// and then consuming at most `cached_bits()` bits before the next
    /// refill.
    #[inline]
    pub fn consume_cached(&mut self, count: u32) {
        debug_assert!(count <= self.bit_count);
        self.bit_buffer >>= count;
        self.bit_count -= count;
    }

    /// Returns the next `count` bits without consuming them.
    ///
    /// Bits past the end of the data read as zero; combine with
    /// [`BitReader::remaining_bits`] or a subsequent [`BitReader::read`] if
    /// end-of-data must be detected.
    #[inline]
    pub fn peek(&mut self, count: u32) -> u64 {
        debug_assert!(count <= MAX_BITS_PER_READ);
        self.refill();
        self.bit_buffer & low_bit_mask(count)
    }

    /// Consumes `count` bits that were previously observed with
    /// [`BitReader::peek`]. Fails if fewer bits are available.
    #[inline]
    pub fn consume(&mut self, count: u32) -> Result<(), BitIoError> {
        if count > MAX_BITS_PER_READ {
            return Err(BitIoError::TooManyBits(count));
        }
        self.refill();
        if (count as u64) > self.bit_count as u64 {
            return Err(BitIoError::UnexpectedEof {
                position: self.position(),
                requested: count,
                available: self.remaining_bits(),
            });
        }
        self.bit_buffer >>= count;
        self.bit_count -= count;
        Ok(())
    }

    /// Reads and consumes `count` bits, returning them in the low bits of the
    /// result (first stream bit is bit 0 of the result).
    #[inline]
    pub fn read(&mut self, count: u32) -> Result<u64, BitIoError> {
        if count > MAX_BITS_PER_READ {
            return Err(BitIoError::TooManyBits(count));
        }
        if count == 0 {
            return Ok(0);
        }
        self.refill();
        if (count as u64) > self.bit_count as u64 {
            return Err(BitIoError::UnexpectedEof {
                position: self.position(),
                requested: count,
                available: self.remaining_bits(),
            });
        }
        let value = self.bit_buffer & low_bit_mask(count);
        self.bit_buffer >>= count;
        self.bit_count -= count;
        Ok(value)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, BitIoError> {
        Ok(self.read(1)? != 0)
    }

    /// Seeks to an absolute bit offset.
    pub fn seek_to_bit(&mut self, bit_offset: u64) -> Result<(), BitIoError> {
        if bit_offset > self.size_in_bits() {
            return Err(BitIoError::SeekOutOfBounds {
                target: bit_offset,
                size: self.size_in_bits(),
            });
        }
        self.next_byte = (bit_offset / 8) as usize;
        self.bit_buffer = 0;
        self.bit_count = 0;
        let residual = (bit_offset % 8) as u32;
        if residual != 0 {
            self.refill();
            // A residual implies at least one whole byte exists at next_byte.
            self.bit_buffer >>= residual;
            self.bit_count -= residual;
        }
        Ok(())
    }

    /// Discards bits until the position is a multiple of 8.
    #[inline]
    pub fn align_to_byte(&mut self) {
        let residual = (self.position() % 8) as u32;
        if residual != 0 {
            // Aligning never runs past the end: a non-zero residual means the
            // current byte exists and its remaining bits are in the buffer.
            let _ = self.consume(8 - residual);
        }
    }

    /// Reads `out.len()` bytes starting at the current (byte-aligned)
    /// position. The reader must be byte-aligned.
    pub fn read_bytes(&mut self, out: &mut [u8]) -> Result<(), BitIoError> {
        assert_eq!(
            self.position() % 8,
            0,
            "read_bytes requires a byte-aligned reader"
        );
        let start = (self.position() / 8) as usize;
        let end = start + out.len();
        if end > self.data.len() {
            return Err(BitIoError::UnexpectedEof {
                position: self.position(),
                requested: (out.len() * 8) as u32,
                available: self.remaining_bits(),
            });
        }
        out.copy_from_slice(&self.data[start..end]);
        self.bit_buffer = 0;
        self.bit_count = 0;
        self.next_byte = end;
        Ok(())
    }

    /// Reads a little-endian `u16` from a byte-aligned position.
    pub fn read_u16_le(&mut self) -> Result<u16, BitIoError> {
        let mut buf = [0u8; 2];
        self.read_bytes(&mut buf)?;
        Ok(u16::from_le_bytes(buf))
    }

    /// Reads a little-endian `u32` from a byte-aligned position.
    pub fn read_u32_le(&mut self) -> Result<u32, BitIoError> {
        let mut buf = [0u8; 4];
        self.read_bytes(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Returns a sub-slice of the underlying data without consuming it.
    /// `byte_offset` is absolute within the data.
    pub fn bytes_at(&self, byte_offset: usize, length: usize) -> Option<&'a [u8]> {
        self.data.get(byte_offset..byte_offset + length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reads_lsb_first() {
        // 0b1011_0100, 0b0000_0001
        let data = [0xB4u8, 0x01];
        let mut reader = BitReader::new(&data);
        assert_eq!(reader.read(1).unwrap(), 0); // LSB of 0xB4
        assert_eq!(reader.read(2).unwrap(), 0b10);
        assert_eq!(reader.read(5).unwrap(), 0b10110);
        assert_eq!(reader.position(), 8);
        assert_eq!(reader.read(8).unwrap(), 1);
        assert!(reader.is_at_end());
    }

    #[test]
    fn read_across_byte_boundaries() {
        let data = [0xFF, 0x00, 0xAA, 0x55];
        let mut reader = BitReader::new(&data);
        assert_eq!(reader.read(12).unwrap(), 0x0FF);
        assert_eq!(reader.read(12).unwrap(), 0xAA0);
        assert_eq!(reader.read(8).unwrap(), 0x55);
    }

    #[test]
    fn peek_does_not_consume() {
        let data = [0xCD, 0xAB];
        let mut reader = BitReader::new(&data);
        assert_eq!(reader.peek(16), 0xABCD);
        assert_eq!(reader.peek(16), 0xABCD);
        assert_eq!(reader.position(), 0);
        reader.consume(4).unwrap();
        assert_eq!(reader.peek(12), 0xABC);
    }

    #[test]
    fn peek_past_end_is_zero_padded() {
        let data = [0x0F];
        let mut reader = BitReader::new(&data);
        assert_eq!(reader.peek(16), 0x000F);
        assert_eq!(reader.read(8).unwrap(), 0x0F);
        assert_eq!(reader.peek(8), 0);
        assert!(reader.read(1).is_err());
    }

    #[test]
    fn eof_error_reports_positions() {
        let data = [0xFF];
        let mut reader = BitReader::new(&data);
        reader.read(6).unwrap();
        match reader.read(4) {
            Err(BitIoError::UnexpectedEof {
                position,
                requested,
                available,
            }) => {
                assert_eq!(position, 6);
                assert_eq!(requested, 4);
                assert_eq!(available, 2);
            }
            other => panic!("expected EOF error, got {other:?}"),
        }
    }

    #[test]
    fn too_many_bits_is_rejected() {
        let data = [0u8; 32];
        let mut reader = BitReader::new(&data);
        assert!(matches!(reader.read(58), Err(BitIoError::TooManyBits(58))));
        assert!(matches!(
            reader.consume(64),
            Err(BitIoError::TooManyBits(64))
        ));
    }

    #[test]
    fn seek_to_arbitrary_bit_offsets() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut reader = BitReader::new(&data);
        reader.seek_to_bit(8 * 100 + 3).unwrap();
        assert_eq!(reader.position(), 803);
        assert_eq!(reader.read(5).unwrap(), (100u64 >> 3) & 0x1F);
        reader.seek_to_bit(0).unwrap();
        assert_eq!(reader.read(8).unwrap(), 0);
        assert!(reader.seek_to_bit(reader.size_in_bits() + 1).is_err());
        reader.seek_to_bit(reader.size_in_bits()).unwrap();
        assert!(reader.is_at_end());
    }

    #[test]
    fn align_to_byte_behaviour() {
        let data = [0xFF, 0xEE, 0xDD];
        let mut reader = BitReader::new(&data);
        reader.align_to_byte();
        assert_eq!(reader.position(), 0);
        reader.read(3).unwrap();
        reader.align_to_byte();
        assert_eq!(reader.position(), 8);
        assert_eq!(reader.read(8).unwrap(), 0xEE);
    }

    #[test]
    fn read_bytes_and_le_helpers() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut reader = BitReader::new(&data);
        assert_eq!(reader.read_u16_le().unwrap(), 0x0201);
        assert_eq!(reader.read_u32_le().unwrap(), 0x06050403);
        let mut rest = [0u8; 1];
        reader.read_bytes(&mut rest).unwrap();
        assert_eq!(rest, [0x07]);
        assert!(reader.read_bytes(&mut rest).is_err());
    }

    #[test]
    fn bytes_at_returns_subslices() {
        let data = [1, 2, 3, 4];
        let reader = BitReader::new(&data);
        assert_eq!(reader.bytes_at(1, 2), Some(&data[1..3]));
        assert_eq!(reader.bytes_at(3, 2), None);
    }

    #[test]
    fn fill_buffer_guarantees_57_bits_when_available() {
        let data: Vec<u8> = (0..64u8).collect();
        let mut reader = BitReader::new(&data);
        reader.fill_buffer();
        assert!(reader.cached_bits() >= 57);
        // Consuming odd amounts and refilling keeps the guarantee.
        while reader.cached_bits() >= 13 {
            reader.consume_cached(13);
            reader.fill_buffer();
            assert!(
                reader.cached_bits() >= 57
                    || reader.cached_bits() as u64 == reader.remaining_bits()
            );
        }
        assert!(reader.remaining_bits() < 13);
    }

    #[test]
    fn cached_peek_and_consume_match_read() {
        let data: Vec<u8> = (0..=255u8).rev().collect();
        let mut cached = BitReader::new(&data);
        let mut reference = BitReader::new(&data);
        let widths = [1u32, 13, 7, 13, 2, 13, 5, 13, 13, 3];
        for &width in widths.iter().cycle().take(120) {
            cached.fill_buffer();
            if (cached.cached_bits()) < width {
                break;
            }
            let peeked = cached.peek_cached(width);
            cached.consume_cached(width);
            assert_eq!(peeked, reference.read(width).unwrap());
            assert_eq!(cached.position(), reference.position());
        }
    }

    #[test]
    fn fill_buffer_near_end_caches_exactly_the_remaining_bits() {
        let data = [0xAB, 0xCD, 0xEF];
        let mut reader = BitReader::new(&data);
        reader.fill_buffer();
        assert_eq!(reader.cached_bits(), 24);
        reader.consume_cached(20);
        reader.fill_buffer();
        assert_eq!(reader.cached_bits(), 4);
        assert_eq!(reader.peek_cached(4), 0xE);
        // Bits past the end of the cached data peek as zero.
        assert_eq!(reader.peek_cached(12), 0xE);
        reader.consume_cached(4);
        assert!(reader.is_at_end());
    }

    proptest! {
        #[test]
        fn cached_api_matches_read_on_random_schedules(
            data in proptest::collection::vec(any::<u8>(), 0..200),
            widths in proptest::collection::vec(1u32..20, 0..200),
        ) {
            let mut cached = BitReader::new(&data);
            let mut reference = BitReader::new(&data);
            for &width in &widths {
                cached.fill_buffer();
                if cached.cached_bits() < width {
                    prop_assert!(reference.read(width).is_err());
                    break;
                }
                let peeked = cached.peek_cached(width);
                cached.consume_cached(width);
                prop_assert_eq!(peeked, reference.read(width).unwrap());
            }
        }

        #[test]
        fn chunked_reads_match_reference(data in proptest::collection::vec(any::<u8>(), 0..256),
                                         chunk_sizes in proptest::collection::vec(1u32..25, 0..200)) {
            let mut reader = BitReader::new(&data);
            let mut bit_position = 0u64;
            for &count in &chunk_sizes {
                let total_bits = data.len() as u64 * 8;
                let value = reader.read(count);
                if bit_position + count as u64 > total_bits {
                    prop_assert!(value.is_err());
                    break;
                }
                // Reference: extract bits one by one from the byte slice.
                let mut expected = 0u64;
                for i in 0..count as u64 {
                    let bit_index = bit_position + i;
                    let byte = data[(bit_index / 8) as usize];
                    let bit = (byte >> (bit_index % 8)) & 1;
                    expected |= (bit as u64) << i;
                }
                prop_assert_eq!(value.unwrap(), expected);
                bit_position += count as u64;
            }
        }

        #[test]
        fn seek_then_read_matches_fresh_reader(data in proptest::collection::vec(any::<u8>(), 1..128),
                                               offset_frac in 0.0f64..1.0) {
            let total_bits = data.len() as u64 * 8;
            let offset = ((total_bits - 1) as f64 * offset_frac) as u64;
            let mut seeked = BitReader::new(&data);
            seeked.seek_to_bit(offset).unwrap();

            let mut sequential = BitReader::new(&data);
            let mut skipped = 0u64;
            while skipped < offset {
                let step = (offset - skipped).min(32) as u32;
                sequential.read(step).unwrap();
                skipped += step as u64;
            }
            let remaining = (total_bits - offset).min(20) as u32;
            prop_assert_eq!(seeked.read(remaining).unwrap(), sequential.read(remaining).unwrap());
        }
    }
}
