//! Writer/reader round-trips across every supported bit width and the
//! byte-alignment edge cases.

use rgz_bitio::{low_bit_mask, BitIoError, BitReader, BitWriter, MAX_BITS_PER_READ};

/// Writes `count` low bits of `value`, splitting calls wider than the
/// writer's 56-bit-per-call limit.
fn write_wide(writer: &mut BitWriter, value: u64, count: u32) {
    if count <= 56 {
        writer.write_bits(value, count);
    } else {
        writer.write_bits(value, 56);
        writer.write_bits(value >> 56, count - 56);
    }
}

#[test]
fn round_trip_every_width_1_to_57() {
    // A fixed pattern with bits set at both ends so truncation errors show.
    let patterns = [u64::MAX, 0xA5A5_A5A5_A5A5_A5A5, 1, 0x8000_0000_0000_0001];
    for width in 1..=MAX_BITS_PER_READ {
        let mut writer = BitWriter::new();
        for &pattern in &patterns {
            write_wide(&mut writer, pattern, width);
        }
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        for &pattern in &patterns {
            assert_eq!(
                reader.read(width).unwrap(),
                pattern & low_bit_mask(width),
                "width {width}"
            );
        }
    }
}

#[test]
fn round_trip_mixed_widths_crossing_byte_boundaries() {
    // Widths chosen so the stream position hits every alignment mod 8.
    let widths: Vec<u32> = (1..=57).collect();
    let mut writer = BitWriter::new();
    for (i, &width) in widths.iter().enumerate() {
        write_wide(&mut writer, i as u64, width);
    }
    let bytes = writer.finish();
    let mut reader = BitReader::new(&bytes);
    for (i, &width) in widths.iter().enumerate() {
        assert_eq!(
            reader.read(width).unwrap(),
            (i as u64) & low_bit_mask(width),
            "width {width} at index {i}"
        );
    }
}

#[test]
fn align_to_byte_skips_to_the_same_boundary_on_both_sides() {
    for prefix_bits in 1..8u32 {
        let mut writer = BitWriter::new();
        writer.write_bits(low_bit_mask(prefix_bits), prefix_bits);
        writer.align_to_byte();
        writer.write_bytes(&[0xAB, 0xCD]);
        let bytes = writer.finish();

        let mut reader = BitReader::new(&bytes);
        assert_eq!(reader.read(prefix_bits).unwrap(), low_bit_mask(prefix_bits));
        reader.align_to_byte();
        let mut out = [0u8; 2];
        reader.read_bytes(&mut out).unwrap();
        assert_eq!(out, [0xAB, 0xCD], "prefix of {prefix_bits} bits");
        assert!(reader.is_at_end());
    }
}

#[test]
fn align_on_exact_boundary_is_a_no_op() {
    let mut writer = BitWriter::new();
    writer.write_bits(0xFF, 8);
    writer.align_to_byte();
    writer.write_bits(0x01, 8);
    let bytes = writer.finish();
    assert_eq!(bytes, vec![0xFF, 0x01]);

    let mut reader = BitReader::new(&bytes);
    reader.align_to_byte(); // at position 0: no-op
    assert_eq!(reader.position(), 0);
    assert_eq!(reader.read(8).unwrap(), 0xFF);
    reader.align_to_byte(); // at position 8: still a no-op
    assert_eq!(reader.position(), 8);
}

#[test]
fn reading_past_the_end_reports_eof_with_positions() {
    let mut writer = BitWriter::new();
    writer.write_bits(0b101, 3);
    let bytes = writer.finish(); // padded to 8 bits
    let mut reader = BitReader::new(&bytes);
    assert_eq!(reader.read(3).unwrap(), 0b101);
    assert_eq!(reader.remaining_bits(), 5);
    match reader.read(6) {
        Err(BitIoError::UnexpectedEof {
            position,
            requested,
            available,
        }) => {
            assert_eq!(position, 3);
            assert_eq!(requested, 6);
            assert_eq!(available, 5);
        }
        other => panic!("expected UnexpectedEof, got {other:?}"),
    }
}

#[test]
fn oversized_reads_are_rejected_not_truncated() {
    let bytes = vec![0u8; 64];
    let mut reader = BitReader::new(&bytes);
    assert_eq!(
        reader.read(MAX_BITS_PER_READ + 1),
        Err(BitIoError::TooManyBits(MAX_BITS_PER_READ + 1))
    );
    // The failed call must not have consumed anything.
    assert_eq!(reader.position(), 0);
}
