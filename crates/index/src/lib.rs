//! The seek-point index (§1.3, §3.3).
//!
//! During the first decompression pass rapidgzip records, for every chunk (and
//! for every DEFLATE block boundary it decides to keep), the compressed bit
//! offset, the uncompressed byte offset, and the 32 KiB window needed to
//! resume decoding there.  With such an index, later reads seek in constant
//! time and decompression can skip the two-stage machinery entirely.
//!
//! Three pieces mirror the paper's class diagram: [`BlockMap`] (offset
//! translation), [`WindowMap`] (windows keyed by compressed offset) and
//! [`GzipIndex`] which bundles them and supports export/import.

use std::collections::HashMap;
use std::sync::Arc;

use rgz_checksum::crc32;

/// Maximum window size stored per seek point.
pub const WINDOW_SIZE: usize = 32 * 1024;

/// One entry of the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeekPoint {
    /// Bit offset of the first DEFLATE block of this chunk in the compressed
    /// stream.
    pub compressed_bit_offset: u64,
    /// Offset of the first decompressed byte of this chunk.
    pub uncompressed_offset: u64,
    /// Number of decompressed bytes in this chunk.
    pub uncompressed_size: u64,
}

/// Maps uncompressed offsets to seek points (the paper's `BlockMap`).
#[derive(Debug, Default, Clone)]
pub struct BlockMap {
    points: Vec<SeekPoint>,
}

impl BlockMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of seek points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All seek points in order of uncompressed offset.
    pub fn points(&self) -> &[SeekPoint] {
        &self.points
    }

    /// Appends a seek point; offsets must be non-decreasing.
    pub fn push(&mut self, point: SeekPoint) {
        if let Some(last) = self.points.last() {
            assert!(
                point.uncompressed_offset >= last.uncompressed_offset
                    && point.compressed_bit_offset >= last.compressed_bit_offset,
                "seek points must be appended in order"
            );
        }
        self.points.push(point);
    }

    /// Finds the last seek point whose uncompressed offset is `<= offset`.
    pub fn find(&self, offset: u64) -> Option<&SeekPoint> {
        if self.points.is_empty() {
            return None;
        }
        let position = self
            .points
            .partition_point(|p| p.uncompressed_offset <= offset);
        if position == 0 {
            None
        } else {
            Some(&self.points[position - 1])
        }
    }

    /// Finds the seek point that starts exactly at the given compressed bit
    /// offset.
    pub fn find_by_compressed_offset(&self, bit_offset: u64) -> Option<&SeekPoint> {
        self.points
            .binary_search_by_key(&bit_offset, |p| p.compressed_bit_offset)
            .ok()
            .map(|i| &self.points[i])
    }

    /// Total decompressed size covered by the seek points.
    pub fn uncompressed_size(&self) -> u64 {
        self.points
            .last()
            .map(|p| p.uncompressed_offset + p.uncompressed_size)
            .unwrap_or(0)
    }
}

/// Windows keyed by compressed bit offset (the paper's `WindowMap`).
///
/// Windows are shared via `Arc` because the chunk fetcher, the index and
/// in-flight decompression tasks all hold references concurrently.
#[derive(Debug, Default, Clone)]
pub struct WindowMap {
    windows: HashMap<u64, Arc<Vec<u8>>>,
}

impl WindowMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Stores the window preceding the block at `compressed_bit_offset`,
    /// keeping only the last 32 KiB.
    pub fn insert(&mut self, compressed_bit_offset: u64, window: &[u8]) {
        let tail_start = window.len().saturating_sub(WINDOW_SIZE);
        self.windows.insert(
            compressed_bit_offset,
            Arc::new(window[tail_start..].to_vec()),
        );
    }

    /// Stores an already shared window.
    pub fn insert_shared(&mut self, compressed_bit_offset: u64, window: Arc<Vec<u8>>) {
        debug_assert!(window.len() <= WINDOW_SIZE);
        self.windows.insert(compressed_bit_offset, window);
    }

    /// Looks up the window for a compressed bit offset.
    pub fn get(&self, compressed_bit_offset: u64) -> Option<Arc<Vec<u8>>> {
        self.windows.get(&compressed_bit_offset).cloned()
    }

    /// Whether a window exists for the given offset.
    pub fn contains(&self, compressed_bit_offset: u64) -> bool {
        self.windows.contains_key(&compressed_bit_offset)
    }
}

/// A complete seek index: block map + window map + stream totals.
#[derive(Debug, Default, Clone)]
pub struct GzipIndex {
    /// Offset translation.
    pub block_map: BlockMap,
    /// Windows for each seek point.
    pub window_map: WindowMap,
    /// Size of the compressed file in bytes (0 if unknown).
    pub compressed_size: u64,
    /// Total decompressed size (0 if unknown / not yet complete).
    pub uncompressed_size: u64,
}

/// Errors from index import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The serialized data does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u32),
    /// The data is shorter than its header claims.
    Truncated,
    /// The trailing checksum does not match.
    ChecksumMismatch,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::BadMagic => write!(f, "not a rapidgzip-rs index file"),
            IndexError::UnsupportedVersion(v) => write!(f, "unsupported index version {v}"),
            IndexError::Truncated => write!(f, "truncated index data"),
            IndexError::ChecksumMismatch => write!(f, "index checksum mismatch"),
        }
    }
}

impl std::error::Error for IndexError {}

const MAGIC: &[u8; 8] = b"RGZIDX01";
const VERSION: u32 = 1;

impl GzipIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a seek point together with its window.
    pub fn add_seek_point(&mut self, point: SeekPoint, window: &[u8]) {
        self.window_map.insert(point.compressed_bit_offset, window);
        self.block_map.push(point);
    }

    /// Serialises the index to a standalone byte buffer.
    ///
    /// Layout: magic, version, counts and totals, the seek points, then each
    /// window prefixed by its length, and finally a CRC-32 over everything
    /// before it.
    pub fn export(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.compressed_size.to_le_bytes());
        out.extend_from_slice(&self.uncompressed_size.to_le_bytes());
        out.extend_from_slice(&(self.block_map.len() as u64).to_le_bytes());
        for point in self.block_map.points() {
            out.extend_from_slice(&point.compressed_bit_offset.to_le_bytes());
            out.extend_from_slice(&point.uncompressed_offset.to_le_bytes());
            out.extend_from_slice(&point.uncompressed_size.to_le_bytes());
            let window = self.window_map.get(point.compressed_bit_offset);
            match window {
                Some(window) => {
                    out.extend_from_slice(&(window.len() as u32).to_le_bytes());
                    out.extend_from_slice(&window);
                }
                None => out.extend_from_slice(&0u32.to_le_bytes()),
            }
        }
        let checksum = crc32(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Reconstructs an index previously produced by [`GzipIndex::export`].
    pub fn import(data: &[u8]) -> Result<Self, IndexError> {
        if data.len() < MAGIC.len() + 4 + 8 + 8 + 8 + 4 {
            return Err(IndexError::Truncated);
        }
        if &data[..8] != MAGIC {
            return Err(IndexError::BadMagic);
        }
        let stored_checksum = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        let computed = crc32(&data[..data.len() - 4]);
        if stored_checksum != computed {
            return Err(IndexError::ChecksumMismatch);
        }
        let mut cursor = 8usize;
        let read_u32 = |cursor: &mut usize| -> Result<u32, IndexError> {
            let bytes = data
                .get(*cursor..*cursor + 4)
                .ok_or(IndexError::Truncated)?;
            *cursor += 4;
            Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
        };
        let read_u64 = |cursor: &mut usize| -> Result<u64, IndexError> {
            let bytes = data
                .get(*cursor..*cursor + 8)
                .ok_or(IndexError::Truncated)?;
            *cursor += 8;
            Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
        };

        let version = read_u32(&mut cursor)?;
        if version != VERSION {
            return Err(IndexError::UnsupportedVersion(version));
        }
        let compressed_size = read_u64(&mut cursor)?;
        let uncompressed_size = read_u64(&mut cursor)?;
        let point_count = read_u64(&mut cursor)? as usize;

        let mut index = GzipIndex {
            compressed_size,
            uncompressed_size,
            ..Default::default()
        };
        for _ in 0..point_count {
            let compressed_bit_offset = read_u64(&mut cursor)?;
            let uncompressed_offset = read_u64(&mut cursor)?;
            let chunk_size = read_u64(&mut cursor)?;
            let window_length = read_u32(&mut cursor)? as usize;
            let window = data
                .get(cursor..cursor + window_length)
                .ok_or(IndexError::Truncated)?;
            cursor += window_length;
            index.add_seek_point(
                SeekPoint {
                    compressed_bit_offset,
                    uncompressed_offset,
                    uncompressed_size: chunk_size,
                },
                window,
            );
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_index() -> GzipIndex {
        let mut index = GzipIndex::new();
        index.compressed_size = 1_000_000;
        index.uncompressed_size = 3_200_000;
        let mut uncompressed = 0u64;
        let mut compressed = 100u64;
        for i in 0..50u64 {
            let window: Vec<u8> = (0..((i as usize * 131) % WINDOW_SIZE))
                .map(|j| (j % 256) as u8)
                .collect();
            index.add_seek_point(
                SeekPoint {
                    compressed_bit_offset: compressed,
                    uncompressed_offset: uncompressed,
                    uncompressed_size: 64_000,
                },
                &window,
            );
            uncompressed += 64_000;
            compressed += 20_000 + i;
        }
        index
    }

    #[test]
    fn block_map_find_returns_covering_point() {
        let index = sample_index();
        let map = &index.block_map;
        assert_eq!(map.find(0).unwrap().uncompressed_offset, 0);
        assert_eq!(map.find(63_999).unwrap().uncompressed_offset, 0);
        assert_eq!(map.find(64_000).unwrap().uncompressed_offset, 64_000);
        assert_eq!(map.find(1_000_000).unwrap().uncompressed_offset, 960_000);
        assert_eq!(map.find(u64::MAX).unwrap().uncompressed_offset, 49 * 64_000);
        assert_eq!(map.uncompressed_size(), 50 * 64_000);
    }

    #[test]
    fn block_map_lookup_by_compressed_offset() {
        let index = sample_index();
        let point = index.block_map.points()[3].clone();
        assert_eq!(
            index
                .block_map
                .find_by_compressed_offset(point.compressed_bit_offset),
            Some(&point)
        );
        assert!(index.block_map.find_by_compressed_offset(1).is_none());
    }

    #[test]
    #[should_panic(expected = "seek points must be appended in order")]
    fn out_of_order_seek_points_panic() {
        let mut map = BlockMap::new();
        map.push(SeekPoint {
            compressed_bit_offset: 100,
            uncompressed_offset: 100,
            uncompressed_size: 10,
        });
        map.push(SeekPoint {
            compressed_bit_offset: 50,
            uncompressed_offset: 50,
            uncompressed_size: 10,
        });
    }

    #[test]
    fn window_map_keeps_only_the_last_32_kib() {
        let mut map = WindowMap::new();
        let big: Vec<u8> = (0..100_000).map(|i| (i % 256) as u8).collect();
        map.insert(42, &big);
        let stored = map.get(42).unwrap();
        assert_eq!(stored.len(), WINDOW_SIZE);
        assert_eq!(&stored[..], &big[big.len() - WINDOW_SIZE..]);
        assert!(map.contains(42));
        assert!(!map.contains(43));
    }

    #[test]
    fn export_import_round_trips() {
        let index = sample_index();
        let serialized = index.export();
        let restored = GzipIndex::import(&serialized).unwrap();
        assert_eq!(restored.compressed_size, index.compressed_size);
        assert_eq!(restored.uncompressed_size, index.uncompressed_size);
        assert_eq!(restored.block_map.points(), index.block_map.points());
        for point in index.block_map.points() {
            assert_eq!(
                restored
                    .window_map
                    .get(point.compressed_bit_offset)
                    .as_deref(),
                index.window_map.get(point.compressed_bit_offset).as_deref()
            );
        }
    }

    #[test]
    fn import_rejects_corruption() {
        let index = sample_index();
        let serialized = index.export();
        assert_eq!(GzipIndex::import(&[]).unwrap_err(), IndexError::Truncated);
        assert_eq!(
            GzipIndex::import(&serialized[..20]).unwrap_err(),
            IndexError::Truncated
        );
        let mut bad_magic = serialized.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            GzipIndex::import(&bad_magic).unwrap_err(),
            IndexError::BadMagic
        );
        let mut flipped = serialized.clone();
        let position = flipped.len() / 2;
        flipped[position] ^= 0xFF;
        assert_eq!(
            GzipIndex::import(&flipped).unwrap_err(),
            IndexError::ChecksumMismatch
        );
        let mut bad_version = serialized.clone();
        bad_version[8] = 99;
        // Fixing the checksum is required for the version error to surface.
        let body_length = bad_version.len() - 4;
        let checksum = rgz_checksum::crc32(&bad_version[..body_length]);
        bad_version[body_length..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            GzipIndex::import(&bad_version).unwrap_err(),
            IndexError::UnsupportedVersion(99)
        );
    }

    proptest! {
        #[test]
        fn export_import_preserves_arbitrary_indexes(
            points in proptest::collection::vec((0u64..1 << 40, 1u64..1 << 20), 0..40),
            window_seed in any::<u8>(),
        ) {
            let mut index = GzipIndex::new();
            let mut compressed = 0u64;
            let mut uncompressed = 0u64;
            for (i, &(compressed_step, size)) in points.iter().enumerate() {
                compressed += compressed_step % 100_000 + 1;
                let window: Vec<u8> = (0..(i * 37) % 1000).map(|j| (j as u8) ^ window_seed).collect();
                index.add_seek_point(
                    SeekPoint {
                        compressed_bit_offset: compressed,
                        uncompressed_offset: uncompressed,
                        uncompressed_size: size,
                    },
                    &window,
                );
                uncompressed += size;
            }
            index.uncompressed_size = uncompressed;
            let restored = GzipIndex::import(&index.export()).unwrap();
            prop_assert_eq!(restored.block_map.points(), index.block_map.points());
            prop_assert_eq!(restored.uncompressed_size, index.uncompressed_size);
        }
    }
}
