//! The seek-point index (§1.3, §3.3).
//!
//! During the first decompression pass rapidgzip records, for every chunk (and
//! for every DEFLATE block boundary it decides to keep), the compressed bit
//! offset, the uncompressed byte offset, and the 32 KiB window needed to
//! resume decoding there.  With such an index, later reads seek in constant
//! time and decompression can skip the two-stage machinery entirely.
//!
//! Three pieces mirror the paper's class diagram: [`BlockMap`] (offset
//! translation), [`WindowMap`] (windows keyed by compressed offset) and
//! [`GzipIndex`] which bundles them and supports export/import.
//!
//! Windows are no longer held as raw 32 KiB buffers: [`WindowMap`] is backed
//! by an [`rgz_window::WindowStore`] that deflate-compresses every window
//! (optionally on a shared thread pool), sparsifies windows whose chunk is
//! known to reference only part of them, and lazily re-inflates hot windows
//! through a bounded cache.
//!
//! # Serialized formats
//!
//! All formats share the same header and trailing whole-file CRC-32:
//!
//! ```text
//! magic              8 bytes  "RGZIDX01"
//! version            u32      1, 2 or 3
//! compressed_size    u64
//! uncompressed_size  u64
//! point_count        u64
//! ...point records...
//! crc32              u32      over every preceding byte
//! ```
//!
//! A **v1** point record stores the raw window:
//!
//! ```text
//! compressed_bit_offset u64, uncompressed_offset u64, uncompressed_size u64,
//! window_length u32 (<= 32768), window bytes
//! ```
//!
//! A **v2** point record stores a compressed-window record
//! ([`rgz_window::CompressedWindow`]):
//!
//! ```text
//! compressed_bit_offset u64, uncompressed_offset u64, uncompressed_size u64,
//! flags u8 (bit 0 = deflate-compressed payload, bit 1 = sparse),
//! original_length u32, window_length u32, payload_length u32,
//! window_crc32 u32 (CRC-32 of the decompressed window), payload bytes
//! ```
//!
//! A **v3** point record is the v2 record followed by optional per-span CRC
//! fragments, so random-access reads through the index can be verified
//! ([`PointChecksums`]):
//!
//! ```text
//! ...v2 record...,
//! checksums_present u8 (0 or 1), and when present:
//! first_member u64, fragment_count u32,
//! fragment_count x { crc32 u32, length u64 }
//! ```
//!
//! The fragments split the seek point's uncompressed span at gzip member
//! boundaries: fragment `i` covers the part of the span that falls into
//! member `first_member + i`, and the fragment lengths must sum to the
//! point's `uncompressed_size`.

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Arc;

use parking_lot::Mutex;

use rgz_checksum::crc32;
use rgz_fetcher::ThreadPool;
use rgz_window::{flags, CompressedWindow, WindowError, WindowStore, WindowStoreStatistics};

/// Maximum window size stored per seek point.
pub const WINDOW_SIZE: usize = rgz_window::WINDOW_SIZE;

/// One entry of the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeekPoint {
    /// Bit offset of the first DEFLATE block of this chunk in the compressed
    /// stream.
    pub compressed_bit_offset: u64,
    /// Offset of the first decompressed byte of this chunk.
    pub uncompressed_offset: u64,
    /// Number of decompressed bytes in this chunk.
    pub uncompressed_size: u64,
}

/// Maps uncompressed offsets to seek points (the paper's `BlockMap`).
#[derive(Debug, Default, Clone)]
pub struct BlockMap {
    points: Vec<SeekPoint>,
}

impl BlockMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of seek points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All seek points in order of uncompressed offset.
    pub fn points(&self) -> &[SeekPoint] {
        &self.points
    }

    /// Appends a seek point; offsets must be non-decreasing.
    pub fn push(&mut self, point: SeekPoint) {
        if let Some(last) = self.points.last() {
            assert!(
                point.uncompressed_offset >= last.uncompressed_offset
                    && point.compressed_bit_offset >= last.compressed_bit_offset,
                "seek points must be appended in order"
            );
        }
        self.points.push(point);
    }

    /// Appends a seek point read from an *untrusted* file, turning the
    /// ordering violation [`BlockMap::push`] would panic on into a typed
    /// [`IndexError::NonMonotonic`].
    pub fn checked_push(&mut self, point: SeekPoint) -> Result<(), IndexError> {
        if let Some(last) = self.points.last() {
            if point.uncompressed_offset < last.uncompressed_offset
                || point.compressed_bit_offset < last.compressed_bit_offset
            {
                return Err(IndexError::NonMonotonic {
                    point: self.points.len() as u64,
                });
            }
        }
        self.points.push(point);
        Ok(())
    }

    /// Finds the last seek point whose uncompressed offset is `<= offset`.
    pub fn find(&self, offset: u64) -> Option<&SeekPoint> {
        if self.points.is_empty() {
            return None;
        }
        let position = self
            .points
            .partition_point(|p| p.uncompressed_offset <= offset);
        if position == 0 {
            None
        } else {
            Some(&self.points[position - 1])
        }
    }

    /// Finds the seek point that starts exactly at the given compressed bit
    /// offset.
    pub fn find_by_compressed_offset(&self, bit_offset: u64) -> Option<&SeekPoint> {
        self.points
            .binary_search_by_key(&bit_offset, |p| p.compressed_bit_offset)
            .ok()
            .map(|i| &self.points[i])
    }

    /// Total decompressed size covered by the seek points.
    pub fn uncompressed_size(&self) -> u64 {
        self.points
            .last()
            .map(|p| p.uncompressed_offset + p.uncompressed_size)
            .unwrap_or(0)
    }
}

/// Windows keyed by compressed bit offset (the paper's `WindowMap`).
///
/// Backed by a shared [`WindowStore`]: windows are deflate-compressed (and
/// sparsified when usage information is available) on insertion and lazily
/// re-inflated on access through a bounded hot cache.  Clones share the same
/// store, so the chunk fetcher, the index and in-flight decompression tasks
/// can all hold references concurrently.
#[derive(Debug, Default, Clone)]
pub struct WindowMap {
    store: Arc<WindowStore>,
}

impl WindowMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a thread pool; subsequent insertions compress asynchronously.
    pub fn set_pool(&self, pool: Arc<ThreadPool>) {
        self.store.set_pool(pool);
    }

    /// Attaches a trace sink; window compress/inflate work records spans.
    pub fn set_trace(&self, trace: Arc<rgz_trace::TraceSink>) {
        self.store.set_trace(trace);
    }

    /// Attaches a metrics registry; the store mirrors its size and cache
    /// counters into gauges/counters and times compress/inflate work.
    pub fn set_metrics(&self, registry: &rgz_metrics::MetricsRegistry) {
        self.store.set_metrics(registry);
    }

    /// Number of stored windows.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Stores the window preceding the block at `compressed_bit_offset`,
    /// keeping only the last 32 KiB.
    pub fn insert(&self, compressed_bit_offset: u64, window: &[u8]) {
        self.store.insert(compressed_bit_offset, window.to_vec());
    }

    /// Stores the window keeping only the bytes in `usage` — marker-space
    /// `(offset, length)` runs as produced by `rgz_deflate::WindowUsage` —
    /// dropping leading unreferenced bytes and zeroing the rest.
    pub fn insert_sparse(&self, compressed_bit_offset: u64, window: &[u8], usage: &[(u32, u32)]) {
        self.store
            .insert_sparse(compressed_bit_offset, window.to_vec(), usage.to_vec());
    }

    /// Stores an already compressed record (the import path).
    pub fn insert_compressed(&self, compressed_bit_offset: u64, record: CompressedWindow) {
        self.store.insert_compressed(compressed_bit_offset, record);
    }

    /// Looks up (and lazily decompresses) the window for a compressed bit
    /// offset.  Corrupt windows yield `None`; use [`WindowMap::try_get`] to
    /// distinguish corruption from absence.
    pub fn get(&self, compressed_bit_offset: u64) -> Option<Arc<Vec<u8>>> {
        self.store.get(compressed_bit_offset).ok().flatten()
    }

    /// Looks up the window, surfacing checksum/validation failures.
    pub fn try_get(&self, compressed_bit_offset: u64) -> Result<Option<Arc<Vec<u8>>>, WindowError> {
        self.store.get(compressed_bit_offset)
    }

    /// The compressed record for a seek point, if any (waits for an
    /// in-flight compression to finish).
    pub fn get_compressed(&self, compressed_bit_offset: u64) -> Option<Arc<CompressedWindow>> {
        self.store.get_compressed(compressed_bit_offset)
    }

    /// Whether a window exists for the given offset.
    pub fn contains(&self, compressed_bit_offset: u64) -> bool {
        self.store.contains(compressed_bit_offset)
    }

    /// Memory and cache counters of the backing store.
    pub fn statistics(&self) -> WindowStoreStatistics {
        self.store.statistics()
    }
}

/// One CRC fragment of a seek point's uncompressed span: the part of the
/// span that falls into a single gzip member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcFragment {
    /// CRC-32 of the fragment's bytes.
    pub crc32: u32,
    /// Number of uncompressed bytes the fragment covers.
    pub length: u64,
}

/// Per-seek-point verification data (serialized by format v3): the point's
/// span split at gzip member boundaries, one CRC-32 per piece.  A later
/// random-access decode of the chunk re-hashes its output the same way and
/// compares, attributing any disagreement to member `first_member + i`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PointChecksums {
    /// Zero-based index of the gzip member the span starts in; fragment `i`
    /// belongs to member `first_member + i`.
    pub first_member: u64,
    /// The span's pieces, in stream order; lengths sum to the seek point's
    /// `uncompressed_size`.
    pub fragments: Vec<CrcFragment>,
}

impl PointChecksums {
    /// Builds the record from a first-member index and `(crc32, length)`
    /// pieces, dropping trailing zero-length fragments: the sequential
    /// capture and the random-access re-decode differ in whether they emit
    /// an empty piece when a chunk ends exactly on a member boundary, so
    /// both sides normalise before storing or comparing.
    pub fn from_fragments(
        first_member: u64,
        fragments: impl IntoIterator<Item = (u32, u64)>,
    ) -> Self {
        let mut fragments: Vec<CrcFragment> = fragments
            .into_iter()
            .map(|(crc32, length)| CrcFragment { crc32, length })
            .collect();
        while fragments.last().is_some_and(|f| f.length == 0) {
            fragments.pop();
        }
        Self {
            first_member,
            fragments,
        }
    }
}

/// Per-seek-point CRC fragments keyed by compressed bit offset.
///
/// Clones share the same storage (like [`WindowMap`]), so decompression
/// workers can record a chunk's fragments concurrently while the reader and
/// the index hold references.
#[derive(Debug, Default, Clone)]
pub struct ChecksumMap {
    store: Arc<Mutex<HashMap<u64, Arc<PointChecksums>>>>,
}

impl ChecksumMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of seek points with stored fragments.
    pub fn len(&self) -> usize {
        self.store.lock().len()
    }

    /// Whether any point has stored fragments.
    pub fn is_empty(&self) -> bool {
        self.store.lock().is_empty()
    }

    /// Whether fragments exist for the given seek point.
    pub fn contains(&self, compressed_bit_offset: u64) -> bool {
        self.store.lock().contains_key(&compressed_bit_offset)
    }

    /// Stores the fragments for a seek point.
    pub fn insert(&self, compressed_bit_offset: u64, checksums: PointChecksums) {
        self.store
            .lock()
            .insert(compressed_bit_offset, Arc::new(checksums));
    }

    /// Looks up the fragments for a seek point.
    pub fn get(&self, compressed_bit_offset: u64) -> Option<Arc<PointChecksums>> {
        self.store.lock().get(&compressed_bit_offset).cloned()
    }
}

/// A complete seek index: block map + window map + stream totals.
#[derive(Debug, Default, Clone)]
pub struct GzipIndex {
    /// Offset translation.
    pub block_map: BlockMap,
    /// Windows for each seek point.
    pub window_map: WindowMap,
    /// Per-point CRC fragments for verified random access (empty for v1/v2
    /// and foreign imports; clones share storage).
    pub checksum_map: ChecksumMap,
    /// Size of the compressed file in bytes (0 if unknown).
    pub compressed_size: u64,
    /// Total decompressed size (0 if unknown / not yet complete).
    pub uncompressed_size: u64,
}

/// Errors from index import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The serialized data does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u32),
    /// The data is shorter than its header claims.
    Truncated,
    /// The trailing checksum does not match.
    ChecksumMismatch,
    /// A per-window length field exceeds the 32 KiB window bound — the file
    /// is corrupt or hostile, and honouring the length would mean a huge
    /// allocation.
    WindowTooLarge {
        /// The declared length.
        length: u64,
    },
    /// A v2 window record is structurally invalid (unknown flags,
    /// inconsistent lengths).
    InvalidWindow,
    /// The header declares more seek points than the file could possibly
    /// hold — honouring the count would mean a huge allocation.
    PointCountTooLarge {
        /// The declared point count.
        count: u64,
    },
    /// A seek point's offsets go backwards relative to its predecessor.
    NonMonotonic {
        /// Zero-based position of the offending point.
        point: u64,
    },
    /// A seek-point field is structurally invalid (e.g. a sub-byte bit count
    /// outside `0..=7`, or a bit offset before the start of the file).
    InvalidPoint(&'static str),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::BadMagic => write!(f, "not a recognised index file"),
            IndexError::UnsupportedVersion(v) => write!(f, "unsupported index version {v}"),
            IndexError::Truncated => write!(f, "truncated index data"),
            IndexError::ChecksumMismatch => write!(f, "index checksum mismatch"),
            IndexError::WindowTooLarge { length } => write!(
                f,
                "window length {length} exceeds the {WINDOW_SIZE} byte bound"
            ),
            IndexError::InvalidWindow => write!(f, "structurally invalid window record"),
            IndexError::PointCountTooLarge { count } => write!(
                f,
                "declared seek-point count {count} exceeds what the file can hold"
            ),
            IndexError::NonMonotonic { point } => {
                write!(f, "seek point {point} goes backwards")
            }
            IndexError::InvalidPoint(reason) => write!(f, "invalid seek point: {reason}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// The index format a byte buffer appears to hold, sniffed from its magic
/// bytes only (no parsing, no allocation).
///
/// The foreign formats are parsed and written by the `rgz_interop` crate;
/// this enum lives here so anything holding a `GzipIndex` can dispatch on a
/// file's format without depending on the converters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectedFormat {
    /// The native `RGZIDX01` container (v1 or v2).
    Rgz,
    /// A gztool `.gzi` index (eight zero bytes, then `gzipindx`).
    Gztool,
    /// A gztool v1 `.gzi` index with line-counting data (`gzipindX`).
    GztoolWithLines,
    /// An indexed_gzip index file (`GZIDX`).
    IndexedGzip,
    /// None of the known magics matched.
    Unknown,
}

impl std::fmt::Display for DetectedFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectedFormat::Rgz => write!(f, "rgz (RGZIDX01)"),
            DetectedFormat::Gztool => write!(f, "gztool (.gzi)"),
            DetectedFormat::GztoolWithLines => write!(f, "gztool v1 (.gzi with line info)"),
            DetectedFormat::IndexedGzip => write!(f, "indexed_gzip (GZIDX)"),
            DetectedFormat::Unknown => write!(f, "unknown"),
        }
    }
}

/// Sniffs the on-disk index format from the magic bytes at the start of
/// `data`.
pub fn detect_format(data: &[u8]) -> DetectedFormat {
    if data.starts_with(MAGIC) {
        return DetectedFormat::Rgz;
    }
    if data.starts_with(b"GZIDX") {
        return DetectedFormat::IndexedGzip;
    }
    // gztool prefixes its magic with eight zero bytes so that `.gzi` files
    // made by bgzip (which start with a block count) are never confused with
    // its own.
    if data.len() >= 16 && data[..8].iter().all(|&b| b == 0) {
        match &data[8..16] {
            b"gzipindx" => return DetectedFormat::Gztool,
            b"gzipindX" => return DetectedFormat::GztoolWithLines,
            _ => {}
        }
    }
    DetectedFormat::Unknown
}

/// Serialized index format version.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum IndexFormat {
    /// Version 1: raw windows, one length-prefixed buffer per seek point.
    V1,
    /// Version 2: compressed-window records (flags byte, per-window CRC-32,
    /// deflate payload) — typically several times smaller than v1.
    V2,
    /// Version 3: the v2 record plus optional per-span CRC fragments, so
    /// random-access reads through the index can be verified.
    #[default]
    V3,
}

impl IndexFormat {
    /// The version number written into the file header.
    pub fn version(self) -> u32 {
        match self {
            IndexFormat::V1 => 1,
            IndexFormat::V2 => 2,
            IndexFormat::V3 => 3,
        }
    }
}

impl FromStr for IndexFormat {
    type Err = String;

    fn from_str(value: &str) -> Result<Self, Self::Err> {
        match value {
            "v1" | "V1" | "1" => Ok(IndexFormat::V1),
            "v2" | "V2" | "2" => Ok(IndexFormat::V2),
            "v3" | "V3" | "3" => Ok(IndexFormat::V3),
            other => Err(format!(
                "unknown index format '{other}' (expected v1, v2 or v3)"
            )),
        }
    }
}

const MAGIC: &[u8; 8] = b"RGZIDX01";

impl GzipIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// The total decompressed size: the recorded stream total when known,
    /// otherwise the extent covered by the seek points.  Every serialiser
    /// writes this into its header/trailer size field.
    pub fn effective_uncompressed_size(&self) -> u64 {
        if self.uncompressed_size != 0 {
            self.uncompressed_size
        } else {
            self.block_map.uncompressed_size()
        }
    }

    /// Adds a seek point together with its full window.
    pub fn add_seek_point(&mut self, point: SeekPoint, window: &[u8]) {
        self.window_map.insert(point.compressed_bit_offset, window);
        self.block_map.push(point);
    }

    /// Adds a seek point whose chunk is known to reference only the window
    /// bytes named by `usage`; the stored window is sparsified accordingly.
    pub fn add_seek_point_sparse(&mut self, point: SeekPoint, window: &[u8], usage: &[(u32, u32)]) {
        self.window_map
            .insert_sparse(point.compressed_bit_offset, window, usage);
        self.block_map.push(point);
    }

    /// Adds a seek point read from an *untrusted* index file: ordering is
    /// checked (never panics) and the window record, if any, is stored as-is.
    /// A `None` record leaves the point window-less — valid only for points
    /// at the start of a stream, where decoding needs no history.
    pub fn add_imported_point(
        &mut self,
        point: SeekPoint,
        record: Option<CompressedWindow>,
    ) -> Result<(), IndexError> {
        if let Some(record) = record {
            self.window_map
                .insert_compressed(point.compressed_bit_offset, record);
        }
        self.block_map.checked_push(point)
    }

    /// Serialises the index in the default (v3, compressed windows plus
    /// per-point CRC fragments) format.
    pub fn export(&self) -> Vec<u8> {
        self.export_as(IndexFormat::default())
    }

    /// Serialises the index in an explicit format.
    ///
    /// v1 reconstructs each raw window (zero-padding sparsified ones back to
    /// their original length, which decodes identically); v2 and v3 write the
    /// compressed records as-is, and v3 appends each point's CRC fragments
    /// when the checksum map holds them.  A window that fails its checksum on
    /// v1 reconstruction is exported as empty — this can only happen to
    /// records that were already corrupt when imported.
    pub fn export_as(&self, format: IndexFormat) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&format.version().to_le_bytes());
        out.extend_from_slice(&self.compressed_size.to_le_bytes());
        out.extend_from_slice(&self.uncompressed_size.to_le_bytes());
        out.extend_from_slice(&(self.block_map.len() as u64).to_le_bytes());
        for point in self.block_map.points() {
            out.extend_from_slice(&point.compressed_bit_offset.to_le_bytes());
            out.extend_from_slice(&point.uncompressed_offset.to_le_bytes());
            out.extend_from_slice(&point.uncompressed_size.to_le_bytes());
            let record = self.window_map.get_compressed(point.compressed_bit_offset);
            match format {
                IndexFormat::V1 => {
                    let window = record
                        .and_then(|r| r.decompress_padded().ok())
                        .unwrap_or_default();
                    out.extend_from_slice(&(window.len() as u32).to_le_bytes());
                    out.extend_from_slice(&window);
                }
                IndexFormat::V2 | IndexFormat::V3 => {
                    match record {
                        Some(record) => {
                            // v1-imported windows sit in the store verbatim
                            // (the import path skips compression to stay
                            // cheap); compress them here so a v1 -> v2/v3
                            // conversion still shrinks the file.
                            let record = match record.recompressed() {
                                Some(compressed) => Arc::new(compressed),
                                None => record,
                            };
                            out.push(record.flags);
                            out.extend_from_slice(&record.original_length.to_le_bytes());
                            out.extend_from_slice(&record.window_length.to_le_bytes());
                            out.extend_from_slice(&(record.payload.len() as u32).to_le_bytes());
                            out.extend_from_slice(&record.checksum.to_le_bytes());
                            out.extend_from_slice(&record.payload);
                        }
                        None => {
                            out.push(0u8);
                            out.extend_from_slice(&0u32.to_le_bytes()); // original_length
                            out.extend_from_slice(&0u32.to_le_bytes()); // window_length
                            out.extend_from_slice(&0u32.to_le_bytes()); // payload_length
                            out.extend_from_slice(&0u32.to_le_bytes()); // checksum
                        }
                    }
                    if format == IndexFormat::V3 {
                        match self.checksum_map.get(point.compressed_bit_offset) {
                            Some(checksums) => {
                                out.push(1u8);
                                out.extend_from_slice(&checksums.first_member.to_le_bytes());
                                out.extend_from_slice(
                                    &(checksums.fragments.len() as u32).to_le_bytes(),
                                );
                                for fragment in &checksums.fragments {
                                    out.extend_from_slice(&fragment.crc32.to_le_bytes());
                                    out.extend_from_slice(&fragment.length.to_le_bytes());
                                }
                            }
                            None => out.push(0u8),
                        }
                    }
                }
            }
        }
        let checksum = crc32(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Reconstructs an index previously produced by [`GzipIndex::export`] or
    /// [`GzipIndex::export_as`] — v1 (raw windows), v2 (compressed-window
    /// records) and v3 (v2 plus per-point CRC fragments) files are accepted.
    pub fn import(data: &[u8]) -> Result<Self, IndexError> {
        if data.len() < MAGIC.len() + 4 + 8 + 8 + 8 + 4 {
            return Err(IndexError::Truncated);
        }
        if &data[..8] != MAGIC {
            return Err(IndexError::BadMagic);
        }
        let stored_checksum = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        let computed = crc32(&data[..data.len() - 4]);
        if stored_checksum != computed {
            return Err(IndexError::ChecksumMismatch);
        }
        let mut cursor = 8usize;
        let read_u8 = |cursor: &mut usize| -> Result<u8, IndexError> {
            let byte = *data.get(*cursor).ok_or(IndexError::Truncated)?;
            *cursor += 1;
            Ok(byte)
        };
        let read_u32 = |cursor: &mut usize| -> Result<u32, IndexError> {
            let bytes = data
                .get(*cursor..*cursor + 4)
                .ok_or(IndexError::Truncated)?;
            *cursor += 4;
            Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
        };
        let read_u64 = |cursor: &mut usize| -> Result<u64, IndexError> {
            let bytes = data
                .get(*cursor..*cursor + 8)
                .ok_or(IndexError::Truncated)?;
            *cursor += 8;
            Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
        };

        let version = read_u32(&mut cursor)?;
        if !(1..=3).contains(&version) {
            return Err(IndexError::UnsupportedVersion(version));
        }
        let compressed_size = read_u64(&mut cursor)?;
        let uncompressed_size = read_u64(&mut cursor)?;
        let point_count = read_u64(&mut cursor)? as usize;
        // A point record is at least 28 (v1) / 41 (v2) / 42 (v3) bytes; a
        // count beyond what the remaining bytes can hold is corrupt or
        // hostile.
        let minimum_record = match version {
            1 => 28,
            2 => 41,
            _ => 42,
        };
        let remaining = data.len().saturating_sub(cursor + 4);
        if point_count > remaining / minimum_record {
            return Err(IndexError::PointCountTooLarge {
                count: point_count as u64,
            });
        }

        let mut index = GzipIndex {
            compressed_size,
            uncompressed_size,
            ..Default::default()
        };
        for _ in 0..point_count {
            let point = SeekPoint {
                compressed_bit_offset: read_u64(&mut cursor)?,
                uncompressed_offset: read_u64(&mut cursor)?,
                uncompressed_size: read_u64(&mut cursor)?,
            };
            if version == 1 {
                let window_length = read_u32(&mut cursor)? as usize;
                // Validate the untrusted length *before* using it: a corrupt
                // or hostile file must not trigger a 4 GiB window allocation.
                if window_length > WINDOW_SIZE {
                    return Err(IndexError::WindowTooLarge {
                        length: window_length as u64,
                    });
                }
                let window = data
                    .get(cursor..cursor + window_length)
                    .ok_or(IndexError::Truncated)?;
                cursor += window_length;
                // Store verbatim: compressing tens of thousands of windows
                // inline (and single-threaded — no pool is attached yet)
                // would turn import into a multi-second stall.  The v2
                // exporter recompresses verbatim records on the way out.
                index.window_map.insert_compressed(
                    point.compressed_bit_offset,
                    CompressedWindow::from_window_verbatim(window),
                );
                index.block_map.checked_push(point)?;
            } else {
                let record_flags = read_u8(&mut cursor)?;
                let original_length = read_u32(&mut cursor)?;
                let window_length = read_u32(&mut cursor)?;
                let payload_length = read_u32(&mut cursor)? as usize;
                let checksum = read_u32(&mut cursor)?;
                if window_length as usize > WINDOW_SIZE
                    || original_length as usize > WINDOW_SIZE
                    || payload_length > rgz_window::MAX_WINDOW_PAYLOAD
                {
                    return Err(IndexError::WindowTooLarge {
                        length: (window_length as u64)
                            .max(original_length as u64)
                            .max(payload_length as u64),
                    });
                }
                if record_flags & !flags::KNOWN != 0 {
                    return Err(IndexError::InvalidWindow);
                }
                let payload = data
                    .get(cursor..cursor + payload_length)
                    .ok_or(IndexError::Truncated)?
                    .to_vec();
                cursor += payload_length;
                let record = CompressedWindow {
                    flags: record_flags,
                    original_length,
                    window_length,
                    checksum,
                    payload,
                };
                record.validate().map_err(|error| match error {
                    WindowError::TooLarge { length } => IndexError::WindowTooLarge {
                        length: length as u64,
                    },
                    _ => IndexError::InvalidWindow,
                })?;
                index
                    .window_map
                    .insert_compressed(point.compressed_bit_offset, record);
                if version >= 3 {
                    match read_u8(&mut cursor)? {
                        0 => {}
                        1 => {
                            let first_member = read_u64(&mut cursor)?;
                            let fragment_count = read_u32(&mut cursor)? as usize;
                            // Each fragment is 12 bytes; a count beyond what
                            // the remaining bytes can hold is corrupt or
                            // hostile, and honouring it would mean a huge
                            // allocation.
                            let remaining = data.len().saturating_sub(cursor + 4);
                            if fragment_count > remaining / 12 {
                                return Err(IndexError::PointCountTooLarge {
                                    count: fragment_count as u64,
                                });
                            }
                            let mut fragments = Vec::with_capacity(fragment_count);
                            let mut covered = 0u64;
                            for _ in 0..fragment_count {
                                let crc32 = read_u32(&mut cursor)?;
                                let length = read_u64(&mut cursor)?;
                                covered = covered.checked_add(length).ok_or(
                                    IndexError::InvalidPoint("checksum fragment lengths overflow"),
                                )?;
                                fragments.push(CrcFragment { crc32, length });
                            }
                            // Fragments that do not cover the span exactly
                            // could never verify a decode of it.
                            if covered != point.uncompressed_size {
                                return Err(IndexError::InvalidPoint(
                                    "checksum fragments do not cover the seek point's span",
                                ));
                            }
                            index.checksum_map.insert(
                                point.compressed_bit_offset,
                                PointChecksums {
                                    first_member,
                                    fragments,
                                },
                            );
                        }
                        _ => {
                            return Err(IndexError::InvalidPoint("unknown checksum-presence flag"))
                        }
                    }
                }
                index.block_map.checked_push(point)?;
            }
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_index() -> GzipIndex {
        let mut index = GzipIndex::new();
        index.compressed_size = 1_000_000;
        index.uncompressed_size = 3_200_000;
        let mut uncompressed = 0u64;
        let mut compressed = 100u64;
        for i in 0..50u64 {
            let window: Vec<u8> = (0..((i as usize * 131) % WINDOW_SIZE))
                .map(|j| (j % 256) as u8)
                .collect();
            index.add_seek_point(
                SeekPoint {
                    compressed_bit_offset: compressed,
                    uncompressed_offset: uncompressed,
                    uncompressed_size: 64_000,
                },
                &window,
            );
            uncompressed += 64_000;
            compressed += 20_000 + i;
        }
        index
    }

    #[test]
    fn block_map_find_returns_covering_point() {
        let index = sample_index();
        let map = &index.block_map;
        assert_eq!(map.find(0).unwrap().uncompressed_offset, 0);
        assert_eq!(map.find(63_999).unwrap().uncompressed_offset, 0);
        assert_eq!(map.find(64_000).unwrap().uncompressed_offset, 64_000);
        assert_eq!(map.find(1_000_000).unwrap().uncompressed_offset, 960_000);
        assert_eq!(map.find(u64::MAX).unwrap().uncompressed_offset, 49 * 64_000);
        assert_eq!(map.uncompressed_size(), 50 * 64_000);
    }

    #[test]
    fn block_map_lookup_by_compressed_offset() {
        let index = sample_index();
        let point = index.block_map.points()[3].clone();
        assert_eq!(
            index
                .block_map
                .find_by_compressed_offset(point.compressed_bit_offset),
            Some(&point)
        );
        assert!(index.block_map.find_by_compressed_offset(1).is_none());
    }

    #[test]
    #[should_panic(expected = "seek points must be appended in order")]
    fn out_of_order_seek_points_panic() {
        let mut map = BlockMap::new();
        map.push(SeekPoint {
            compressed_bit_offset: 100,
            uncompressed_offset: 100,
            uncompressed_size: 10,
        });
        map.push(SeekPoint {
            compressed_bit_offset: 50,
            uncompressed_offset: 50,
            uncompressed_size: 10,
        });
    }

    #[test]
    fn window_map_keeps_only_the_last_32_kib() {
        let map = WindowMap::new();
        let big: Vec<u8> = (0..100_000).map(|i| (i % 256) as u8).collect();
        map.insert(42, &big);
        let stored = map.get(42).unwrap();
        assert_eq!(stored.len(), WINDOW_SIZE);
        assert_eq!(&stored[..], &big[big.len() - WINDOW_SIZE..]);
        assert!(map.contains(42));
        assert!(!map.contains(43));
    }

    #[test]
    fn window_map_stores_windows_compressed() {
        let map = WindowMap::new();
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 16) as u8).collect();
        map.insert(7, &window);
        let statistics = map.statistics();
        assert_eq!(statistics.windows, 1);
        assert_eq!(statistics.original_bytes, WINDOW_SIZE);
        assert!(
            statistics.stored_bytes < WINDOW_SIZE / 4,
            "window not compressed: {statistics:?}"
        );
        assert_eq!(map.get(7).unwrap().as_slice(), &window[..]);
    }

    #[test]
    fn export_import_round_trips_in_all_formats() {
        let index = sample_index();
        for format in [IndexFormat::V1, IndexFormat::V2, IndexFormat::V3] {
            let serialized = index.export_as(format);
            let restored = GzipIndex::import(&serialized).unwrap();
            assert_eq!(restored.compressed_size, index.compressed_size);
            assert_eq!(restored.uncompressed_size, index.uncompressed_size);
            assert_eq!(restored.block_map.points(), index.block_map.points());
            for point in index.block_map.points() {
                assert_eq!(
                    restored
                        .window_map
                        .get(point.compressed_bit_offset)
                        .as_deref(),
                    index.window_map.get(point.compressed_bit_offset).as_deref(),
                    "window mismatch in {format:?}"
                );
            }
        }
    }

    #[test]
    fn v2_export_is_much_smaller_than_v1_for_repetitive_windows() {
        let index = sample_index();
        let v1 = index.export_as(IndexFormat::V1);
        let v2 = index.export_as(IndexFormat::V2);
        assert!(
            v2.len() * 4 <= v1.len(),
            "v2 ({}) should be at least 4x smaller than v1 ({})",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v1_import_is_verbatim_and_v2_reexport_still_compresses() {
        let index = sample_index();
        let from_v1 = GzipIndex::import(&index.export_as(IndexFormat::V1)).unwrap();
        // Import stores windows verbatim (no per-window compression stall).
        let statistics = from_v1.window_map.statistics();
        assert_eq!(statistics.stored_bytes, statistics.original_bytes);
        // ...but converting to v2 compresses on the way out.
        let v2 = from_v1.export_as(IndexFormat::V2);
        assert!(
            v2.len() * 4 <= index.export_as(IndexFormat::V1).len(),
            "v1 -> v2 conversion did not shrink the index"
        );
        let from_v2 = GzipIndex::import(&v2).unwrap();
        for point in index.block_map.points() {
            assert_eq!(
                from_v2
                    .window_map
                    .get(point.compressed_bit_offset)
                    .as_deref(),
                index.window_map.get(point.compressed_bit_offset).as_deref()
            );
        }
    }

    #[test]
    fn import_rejects_corruption() {
        let index = sample_index();
        let serialized = index.export_as(IndexFormat::V1);
        assert_eq!(GzipIndex::import(&[]).unwrap_err(), IndexError::Truncated);
        assert_eq!(
            GzipIndex::import(&serialized[..20]).unwrap_err(),
            IndexError::Truncated
        );
        let mut bad_magic = serialized.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            GzipIndex::import(&bad_magic).unwrap_err(),
            IndexError::BadMagic
        );
        let mut flipped = serialized.clone();
        let position = flipped.len() / 2;
        flipped[position] ^= 0xFF;
        assert_eq!(
            GzipIndex::import(&flipped).unwrap_err(),
            IndexError::ChecksumMismatch
        );
        let mut bad_version = serialized.clone();
        bad_version[8] = 99;
        // Fixing the checksum is required for the version error to surface.
        let body_length = bad_version.len() - 4;
        let checksum = rgz_checksum::crc32(&bad_version[..body_length]);
        bad_version[body_length..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            GzipIndex::import(&bad_version).unwrap_err(),
            IndexError::UnsupportedVersion(99)
        );
    }

    /// Patches the byte at `position`, fixes the trailing CRC, and returns
    /// the import result — for crafting hostile-but-checksummed files.
    fn import_with_patch(
        mut serialized: Vec<u8>,
        position: usize,
        patch: &[u8],
    ) -> Result<GzipIndex, IndexError> {
        serialized[position..position + patch.len()].copy_from_slice(patch);
        let body_length = serialized.len() - 4;
        let checksum = rgz_checksum::crc32(&serialized[..body_length]);
        serialized[body_length..].copy_from_slice(&checksum.to_le_bytes());
        GzipIndex::import(&serialized)
    }

    #[test]
    fn v1_import_rejects_oversized_window_length_before_allocating() {
        let mut index = GzipIndex::new();
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 8,
                uncompressed_offset: 0,
                uncompressed_size: 100,
            },
            &[1, 2, 3, 4],
        );
        let serialized = index.export_as(IndexFormat::V1);
        // The window length field of the single point lives right after the
        // header (36 bytes) and the three u64 offsets (24 bytes).
        let length_position = 36 + 24;
        assert_eq!(
            u32::from_le_bytes(
                serialized[length_position..length_position + 4]
                    .try_into()
                    .unwrap()
            ),
            4
        );
        let result = import_with_patch(serialized, length_position, &u32::MAX.to_le_bytes());
        assert_eq!(
            result.unwrap_err(),
            IndexError::WindowTooLarge {
                length: u32::MAX as u64
            }
        );
    }

    #[test]
    fn v2_import_rejects_hostile_lengths_and_unknown_flags() {
        let mut index = GzipIndex::new();
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 8,
                uncompressed_offset: 0,
                uncompressed_size: 100,
            },
            &[1, 2, 3, 4],
        );
        let serialized = index.export_as(IndexFormat::V2);
        let record_position = 36 + 24; // flags byte of the first record

        // Unknown flag bits are rejected.
        assert_eq!(
            import_with_patch(serialized.clone(), record_position, &[0x80]).unwrap_err(),
            IndexError::InvalidWindow
        );
        // Oversized window_length is rejected before any allocation.
        assert!(matches!(
            import_with_patch(
                serialized.clone(),
                record_position + 1 + 4,
                &u32::MAX.to_le_bytes()
            )
            .unwrap_err(),
            IndexError::WindowTooLarge { .. }
        ));
        // Oversized payload_length likewise.
        assert!(matches!(
            import_with_patch(
                serialized,
                record_position + 1 + 4 + 4,
                &u32::MAX.to_le_bytes()
            )
            .unwrap_err(),
            IndexError::WindowTooLarge { .. }
        ));
    }

    #[test]
    fn sparse_seek_points_survive_both_formats() {
        let mut index = GzipIndex::new();
        let window: Vec<u8> = (0..WINDOW_SIZE).map(|i| (i % 255) as u8).collect();
        // The chunk references two scattered runs of its window.
        let usage = vec![(1000u32, 10u32), ((WINDOW_SIZE - 20) as u32, 20u32)];
        index.add_seek_point_sparse(
            SeekPoint {
                compressed_bit_offset: 64,
                uncompressed_offset: 0,
                uncompressed_size: 5000,
            },
            &window,
            &usage,
        );
        let stored = index.window_map.get(64).unwrap();
        assert_eq!(stored.len(), WINDOW_SIZE - 1000);
        assert_eq!(&stored[..10], &window[1000..1010]);
        assert_eq!(&stored[stored.len() - 20..], &window[WINDOW_SIZE - 20..]);

        for format in [IndexFormat::V1, IndexFormat::V2, IndexFormat::V3] {
            let restored = GzipIndex::import(&index.export_as(format)).unwrap();
            let restored_window = restored.window_map.get(64).unwrap();
            // v1 pads back to the original length; v2/v3 keep the masked
            // shape.
            let expected_len = match format {
                IndexFormat::V1 => WINDOW_SIZE,
                IndexFormat::V2 | IndexFormat::V3 => WINDOW_SIZE - 1000,
            };
            assert_eq!(restored_window.len(), expected_len);
            let tail = &restored_window[restored_window.len() - 20..];
            assert_eq!(tail, &window[WINDOW_SIZE - 20..]);
        }
    }

    #[test]
    fn index_format_parses_from_cli_strings() {
        assert_eq!("v1".parse::<IndexFormat>().unwrap(), IndexFormat::V1);
        assert_eq!("v2".parse::<IndexFormat>().unwrap(), IndexFormat::V2);
        assert_eq!("2".parse::<IndexFormat>().unwrap(), IndexFormat::V2);
        assert_eq!("v3".parse::<IndexFormat>().unwrap(), IndexFormat::V3);
        assert_eq!("3".parse::<IndexFormat>().unwrap(), IndexFormat::V3);
        assert!("v4".parse::<IndexFormat>().is_err());
        assert_eq!(IndexFormat::default(), IndexFormat::V3);
    }

    /// The sample index with CRC fragments attached to every other point, to
    /// exercise the both-present-and-absent paths of the v3 record.
    fn sample_index_with_checksums() -> GzipIndex {
        let index = sample_index();
        for (i, point) in index.block_map.points().iter().enumerate() {
            if i % 2 == 0 {
                index.checksum_map.insert(
                    point.compressed_bit_offset,
                    PointChecksums::from_fragments(
                        i as u64 * 3,
                        [
                            (0xDEAD_0000 + i as u32, 24_000),
                            (0xBEEF_0000 + i as u32, 40_000),
                        ],
                    ),
                );
            }
        }
        index
    }

    #[test]
    fn v3_round_trips_checksum_fragments_and_v2_drops_them() {
        let index = sample_index_with_checksums();
        let restored = GzipIndex::import(&index.export_as(IndexFormat::V3)).unwrap();
        assert_eq!(restored.checksum_map.len(), index.checksum_map.len());
        for point in index.block_map.points() {
            assert_eq!(
                restored.checksum_map.get(point.compressed_bit_offset),
                index.checksum_map.get(point.compressed_bit_offset),
                "fragments lost or changed for point at bit {}",
                point.compressed_bit_offset
            );
        }
        // The same index exported as v2 (or v1) simply has no fragments.
        let as_v2 = GzipIndex::import(&index.export_as(IndexFormat::V2)).unwrap();
        assert!(as_v2.checksum_map.is_empty());
        let as_v1 = GzipIndex::import(&index.export_as(IndexFormat::V1)).unwrap();
        assert!(as_v1.checksum_map.is_empty());
    }

    #[test]
    fn from_fragments_normalises_trailing_empty_pieces() {
        let checksums =
            PointChecksums::from_fragments(7, [(1, 10), (2, 0), (3, 5), (4, 0), (0, 0)]);
        assert_eq!(checksums.first_member, 7);
        assert_eq!(
            checksums.fragments,
            vec![
                CrcFragment {
                    crc32: 1,
                    length: 10
                },
                CrcFragment {
                    crc32: 2,
                    length: 0
                },
                CrcFragment {
                    crc32: 3,
                    length: 5
                },
            ]
        );
    }

    #[test]
    fn v3_import_rejects_hostile_checksum_records() {
        let mut index = GzipIndex::new();
        index.add_seek_point(
            SeekPoint {
                compressed_bit_offset: 8,
                uncompressed_offset: 0,
                uncompressed_size: 100,
            },
            &[1, 2, 3, 4],
        );
        index.checksum_map.insert(
            8,
            PointChecksums::from_fragments(0, [(0x1234, 60), (0x5678, 40)]),
        );
        let serialized = index.export_as(IndexFormat::V3);
        // Layout: header (36) + three u64 offsets (24) + v2 window record
        // (17 + payload) + presence byte + first_member u64 + count u32.
        let record_position = 36 + 24;
        let payload_length = u32::from_le_bytes(
            serialized[record_position + 1 + 4 + 4..record_position + 1 + 4 + 4 + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        let presence_position = record_position + 17 + payload_length;
        assert_eq!(serialized[presence_position], 1);
        let count_position = presence_position + 1 + 8;
        assert_eq!(
            u32::from_le_bytes(
                serialized[count_position..count_position + 4]
                    .try_into()
                    .unwrap()
            ),
            2
        );

        // An unknown presence flag is rejected.
        assert_eq!(
            import_with_patch(serialized.clone(), presence_position, &[9]).unwrap_err(),
            IndexError::InvalidPoint("unknown checksum-presence flag")
        );
        // An oversized fragment count is rejected before any allocation.
        assert_eq!(
            import_with_patch(serialized.clone(), count_position, &u32::MAX.to_le_bytes())
                .unwrap_err(),
            IndexError::PointCountTooLarge {
                count: u32::MAX as u64
            }
        );
        // Fragment lengths that do not sum to the point's span are rejected.
        let first_length_position = count_position + 4 + 4;
        assert_eq!(
            import_with_patch(
                serialized.clone(),
                first_length_position,
                &61u64.to_le_bytes()
            )
            .unwrap_err(),
            IndexError::InvalidPoint("checksum fragments do not cover the seek point's span")
        );
        // Sanity: the unpatched file imports and carries the fragments.
        let restored = GzipIndex::import(&serialized).unwrap();
        assert_eq!(
            restored.checksum_map.get(8).unwrap().fragments,
            vec![
                CrcFragment {
                    crc32: 0x1234,
                    length: 60
                },
                CrcFragment {
                    crc32: 0x5678,
                    length: 40
                },
            ]
        );
    }

    proptest! {
        // Every generated window is compressed on insertion, so keep the
        // case count moderate to stay fast in debug builds.
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn export_import_preserves_arbitrary_indexes(
            points in proptest::collection::vec((0u64..1 << 40, 1u64..1 << 20), 0..40),
            window_seed in any::<u8>(),
        ) {
            let mut index = GzipIndex::new();
            let mut compressed = 0u64;
            let mut uncompressed = 0u64;
            for (i, &(compressed_step, size)) in points.iter().enumerate() {
                compressed += compressed_step % 100_000 + 1;
                let window: Vec<u8> = (0..(i * 37) % 1000).map(|j| (j as u8) ^ window_seed).collect();
                index.add_seek_point(
                    SeekPoint {
                        compressed_bit_offset: compressed,
                        uncompressed_offset: uncompressed,
                        uncompressed_size: size,
                    },
                    &window,
                );
                uncompressed += size;
            }
            index.uncompressed_size = uncompressed;
            let restored = GzipIndex::import(&index.export()).unwrap();
            prop_assert_eq!(restored.block_map.points(), index.block_map.points());
            prop_assert_eq!(restored.uncompressed_size, index.uncompressed_size);
        }

        /// The satellite round-trip: random seek points with random window
        /// contents and lengths (including empty windows), exported as v1,
        /// imported, re-exported as v2, imported again — windows must be
        /// byte-identical at every hop, and truncating the v2 file anywhere
        /// must error rather than panic.
        #[test]
        fn v1_to_v2_round_trip_preserves_windows(
            windows in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..2000),
                1..12,
            ),
            truncate_seed in 0usize..1_000_000,
        ) {
            let mut index = GzipIndex::new();
            let mut compressed = 8u64;
            let mut uncompressed = 0u64;
            for window in &windows {
                index.add_seek_point(
                    SeekPoint {
                        compressed_bit_offset: compressed,
                        uncompressed_offset: uncompressed,
                        uncompressed_size: 4096,
                    },
                    window,
                );
                compressed += 50_000;
                uncompressed += 4096;
            }
            index.uncompressed_size = uncompressed;

            let v1 = index.export_as(IndexFormat::V1);
            let from_v1 = GzipIndex::import(&v1).unwrap();
            let v2 = from_v1.export_as(IndexFormat::V2);
            let from_v2 = GzipIndex::import(&v2).unwrap();

            prop_assert_eq!(from_v2.block_map.points(), index.block_map.points());
            for (point, window) in index.block_map.points().iter().zip(&windows) {
                let restored = from_v2
                    .window_map
                    .get(point.compressed_bit_offset)
                    .expect("window lost in translation");
                prop_assert_eq!(&restored[..], &window[..]);
            }

            // A truncated v2 file must fail cleanly (checksum or length).
            let cut = 1 + truncate_seed % (v2.len() - 1);
            prop_assert!(GzipIndex::import(&v2[..cut]).is_err());
        }
    }
}
