//! Index-driven prefetch planning.
//!
//! Without an index the prefetcher can only *guess* chunk boundaries at
//! uniform compressed offsets (`guess * chunk_size`), and every guess that
//! does not coincide with a real DEFLATE block start costs a wasted
//! speculative decode.  Once a seek-point table exists — built by the first
//! pass or imported from a gztool / indexed_gzip / native index file — the
//! boundaries are *known*, so prefetch ranges can be aligned to real chunks:
//! each prefetched unit is exactly one seek-point span, never a misaligned
//! guess.
//!
//! [`IndexAlignedPlan`] wraps any [`FetchingStrategy`] and translates
//! between uncompressed byte offsets (what the reader serves) and chunk
//! indexes (what strategies reason about).  The strategy sees one access per
//! chunk, its prefetch answer is clipped to the table, and every returned
//! index maps back to an exact seek point.

use crate::strategy::{FetchNextAdaptive, FetchingStrategy};

/// A prefetch plan aligned to the real chunk boundaries of a seek-point
/// table.
pub struct IndexAlignedPlan {
    /// Uncompressed start offset of each chunk, ascending.
    boundaries: Vec<u64>,
    /// End of the last chunk (total uncompressed size).
    end: u64,
    strategy: Box<dyn FetchingStrategy>,
}

impl std::fmt::Debug for IndexAlignedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexAlignedPlan")
            .field("chunks", &self.boundaries.len())
            .field("end", &self.end)
            .finish()
    }
}

impl IndexAlignedPlan {
    /// Creates a plan over ascending uncompressed chunk-start offsets, with
    /// the default adaptive strategy.
    pub fn new(boundaries: Vec<u64>, end: u64) -> Self {
        Self::with_strategy(boundaries, end, Box::new(FetchNextAdaptive::default()))
    }

    /// Creates a plan with an explicit strategy.
    pub fn with_strategy(
        boundaries: Vec<u64>,
        end: u64,
        strategy: Box<dyn FetchingStrategy>,
    ) -> Self {
        debug_assert!(boundaries.windows(2).all(|pair| pair[0] <= pair[1]));
        Self {
            boundaries,
            end,
            strategy,
        }
    }

    /// Number of chunks in the table.
    pub fn len(&self) -> usize {
        self.boundaries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// The chunk index covering an uncompressed offset, if any.
    pub fn chunk_of(&self, offset: u64) -> Option<usize> {
        if self.boundaries.is_empty() || offset >= self.end.max(*self.boundaries.last()?) {
            return None;
        }
        let position = self.boundaries.partition_point(|&start| start <= offset);
        position.checked_sub(1)
    }

    /// Records an access at an uncompressed offset, returning the covering
    /// chunk index.
    pub fn record_access(&self, offset: u64) -> Option<usize> {
        let index = self.chunk_of(offset)?;
        self.strategy.on_access(index);
        Some(index)
    }

    /// Chunk indexes worth prefetching, every one of them a real seek
    /// point — clipped to the table, so no decode is ever issued for a
    /// boundary that does not exist.
    pub fn prefetch(&self, degree: usize) -> Vec<usize> {
        let mut indexes = self.strategy.prefetch(degree);
        indexes.retain(|&index| index < self.boundaries.len());
        indexes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a BGZF-style *skewed* chunk table: many small chunks (BGZF
    /// members are ~64 KiB decompressed) followed by a few huge ones, so
    /// uniform guessing is maximally wrong.
    fn skewed_boundaries() -> (Vec<u64>, u64) {
        let mut boundaries = Vec::new();
        let mut offset = 0u64;
        for _ in 0..48 {
            boundaries.push(offset);
            offset += 17_000; // small, misaligned spans
        }
        for _ in 0..8 {
            boundaries.push(offset);
            offset += 900_000; // huge spans
        }
        (boundaries, offset)
    }

    #[test]
    fn maps_offsets_to_chunks_and_back() {
        let (boundaries, end) = skewed_boundaries();
        let plan = IndexAlignedPlan::new(boundaries.clone(), end);
        assert_eq!(plan.len(), 56);
        assert_eq!(plan.chunk_of(0), Some(0));
        assert_eq!(plan.chunk_of(16_999), Some(0));
        assert_eq!(plan.chunk_of(17_000), Some(1));
        assert_eq!(plan.chunk_of(end - 1), Some(55));
        assert_eq!(plan.chunk_of(end), None);
    }

    #[test]
    fn prefetch_is_clipped_to_the_table() {
        let (boundaries, end) = skewed_boundaries();
        let plan = IndexAlignedPlan::new(boundaries, end);
        plan.record_access(end - 10);
        assert!(plan.prefetch(16).is_empty(), "no chunks past the last one");
        plan.record_access(0);
        let prefetch = plan.prefetch(16);
        assert!(!prefetch.is_empty());
        assert!(prefetch.iter().all(|&i| i < plan.len()));
    }

    /// The satellite claim, measured: on a skewed (BGZF-style) corpus,
    /// index-aligned prefetching issues *zero* wasted decodes, while the
    /// uniform-guess model wastes a large fraction of its work.
    ///
    /// "Wasted" means a prefetched unit that does not start at any real
    /// chunk boundary (speculative model: the guessed compressed offset
    /// falls inside a chunk, so its decode is discarded when the real
    /// boundary turns out elsewhere) or that was already covered by an
    /// earlier prefetch.
    #[test]
    fn aligned_prefetch_wastes_no_decodes_on_a_skewed_corpus() {
        let (boundaries, end) = skewed_boundaries();
        // Model the speculative guesser: prefetch at uniform byte offsets.
        let guess_size = 64_000u64; // close to the average span, best case
        let mut wasted_guesses = 0usize;
        let mut useful_guesses = std::collections::HashSet::new();
        let mut guessed_offsets = std::collections::HashSet::new();
        // Sequential pass: after serving the chunk at `offset`, guess the
        // next few uniform boundaries — exactly what `issue_prefetches`
        // does without an index.
        let mut offset = 0u64;
        while offset < end {
            let current_guess = offset / guess_size;
            for ahead in 1..=4u64 {
                let guessed = (current_guess + ahead) * guess_size;
                if guessed >= end || !guessed_offsets.insert(guessed) {
                    continue;
                }
                if boundaries.binary_search(&guessed).is_ok() {
                    useful_guesses.insert(guessed);
                } else {
                    wasted_guesses += 1;
                }
            }
            offset += guess_size;
        }

        // The aligned plan walking the same sequential pass.
        let plan = IndexAlignedPlan::new(boundaries.clone(), end);
        let mut issued = std::collections::HashSet::new();
        let mut aligned_wasted = 0usize;
        for &start in &boundaries {
            plan.record_access(start);
            for index in plan.prefetch(4) {
                if !issued.insert(index) {
                    continue; // already in flight / cached, filtered out
                }
                // A prefetched index is wasted iff it names no real chunk.
                if index >= boundaries.len() {
                    aligned_wasted += 1;
                }
            }
        }

        assert_eq!(aligned_wasted, 0, "aligned prefetching never misses");
        // Every chunk gets prefetched (except chunk 0, which is accessed
        // first).
        assert!(issued.len() >= boundaries.len() - 1);
        assert!(
            wasted_guesses > useful_guesses.len(),
            "the skewed corpus must defeat uniform guessing \
             ({wasted_guesses} wasted vs {} useful)",
            useful_guesses.len()
        );
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = IndexAlignedPlan::new(Vec::new(), 0);
        assert!(plan.is_empty());
        assert_eq!(plan.chunk_of(0), None);
        assert_eq!(plan.record_access(123), None);
        assert!(plan.prefetch(8).is_empty());
    }
}
