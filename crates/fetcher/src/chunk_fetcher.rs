//! The generic chunk fetcher: cache + prefetch cache + thread pool +
//! prefetching strategy (the `ChunkFetcher` class of Figure 5).
//!
//! Chunks are identified by a dense index (0, 1, 2, …).  Accessing a chunk
//! returns it from one of the two caches or computes it synchronously on the
//! pool; every access also asks the [`FetchingStrategy`] which chunks to
//! prefetch and dispatches those computations in the background, keeping
//! their results in a *separate* prefetch cache so speculative work cannot
//! evict explicitly accessed data (§3.2).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cache::Cache;
use crate::strategy::FetchingStrategy;
use crate::thread_pool::{TaskHandle, ThreadPool};

/// Configuration of a [`ChunkFetcher`].
#[derive(Debug, Clone)]
pub struct ChunkFetcherConfig {
    /// Number of worker threads.
    pub parallelization: usize,
    /// Capacity of the cache for explicitly accessed chunks.  The paper uses
    /// 1 for plain sequential decompression.
    pub access_cache_size: usize,
    /// Capacity of the prefetch cache; defaults to twice the parallelization.
    pub prefetch_cache_size: Option<usize>,
}

impl Default for ChunkFetcherConfig {
    fn default() -> Self {
        Self {
            parallelization: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            access_cache_size: 1,
            prefetch_cache_size: None,
        }
    }
}

/// Counters describing fetcher behaviour.
#[derive(Debug, Default, Clone, Copy)]
pub struct FetchStatistics {
    /// Total number of `get` calls.
    pub accesses: u64,
    /// Accesses satisfied from the access cache.
    pub access_cache_hits: u64,
    /// Accesses satisfied from the prefetch cache or an in-flight prefetch.
    pub prefetch_hits: u64,
    /// Accesses that had to compute the chunk on demand.
    pub on_demand: u64,
    /// Prefetch tasks dispatched.
    pub prefetches_issued: u64,
}

struct FetcherState<T, E> {
    access_cache: Cache<usize, T>,
    prefetch_cache: Cache<usize, T>,
    in_flight: HashMap<usize, TaskHandle<Result<T, E>>>,
    statistics: FetchStatistics,
}

/// Generic cache-and-prefetch chunk fetcher.
pub struct ChunkFetcher<T, E, F>
where
    F: Fn(usize) -> Result<T, E> + Send + Sync + 'static,
{
    pool: ThreadPool,
    strategy: Arc<dyn FetchingStrategy>,
    fetch: Arc<F>,
    state: Mutex<FetcherState<T, E>>,
    prefetch_degree: usize,
}

impl<T, E, F> ChunkFetcher<T, E, F>
where
    T: Send + Sync + 'static,
    E: Send + Sync + 'static,
    F: Fn(usize) -> Result<T, E> + Send + Sync + 'static,
{
    /// Creates a fetcher that computes chunk `index` by calling `fetch(index)`
    /// on the pool.
    pub fn new(config: ChunkFetcherConfig, strategy: Arc<dyn FetchingStrategy>, fetch: F) -> Self {
        let parallelization = config.parallelization.max(1);
        let prefetch_cache_size = config
            .prefetch_cache_size
            .unwrap_or(parallelization * 2)
            .max(1);
        Self {
            pool: ThreadPool::new(parallelization),
            strategy,
            fetch: Arc::new(fetch),
            state: Mutex::new(FetcherState {
                access_cache: Cache::new(config.access_cache_size.max(1)),
                prefetch_cache: Cache::new(prefetch_cache_size),
                in_flight: HashMap::new(),
                statistics: FetchStatistics::default(),
            }),
            prefetch_degree: parallelization * 2,
        }
    }

    /// Number of worker threads.
    pub fn parallelization(&self) -> usize {
        self.pool.size()
    }

    /// Current statistics.
    pub fn statistics(&self) -> FetchStatistics {
        self.state.lock().statistics
    }

    /// Returns chunk `index`, computing it if necessary, and triggers
    /// prefetching.  `total_chunks` bounds the indexes worth prefetching.
    pub fn get(&self, index: usize, total_chunks: usize) -> Result<Arc<T>, E> {
        self.strategy.on_access(index);

        // Fast path: caches and finished prefetches.
        let cached = {
            let mut state = self.state.lock();
            state.statistics.accesses += 1;
            if let Some(value) = state.access_cache.get(&index) {
                state.statistics.access_cache_hits += 1;
                Some(Ok(value))
            } else if let Some(value) = state.prefetch_cache.get(&index) {
                state.statistics.prefetch_hits += 1;
                let promoted = value.clone();
                state.access_cache.insert(index, promoted);
                Some(Ok(value))
            } else if let Some(handle) = state.in_flight.remove(&index) {
                state.statistics.prefetch_hits += 1;
                // Drop the lock while waiting for the in-flight task.
                drop(state);
                let result = handle.wait();
                Some(self.finish_access(index, result))
            } else {
                None
            }
        };
        let result = match cached {
            Some(result) => result,
            None => {
                // On-demand computation on the calling thread: the worker
                // threads are reserved for prefetching.
                {
                    let mut state = self.state.lock();
                    state.statistics.on_demand += 1;
                }
                let computed = (self.fetch)(index);
                self.finish_access(index, computed)
            }
        };

        self.issue_prefetches(total_chunks);
        result
    }

    fn finish_access(&self, index: usize, result: Result<T, E>) -> Result<Arc<T>, E> {
        match result {
            Ok(value) => {
                let value = Arc::new(value);
                let mut state = self.state.lock();
                state.access_cache.insert(index, value.clone());
                Ok(value)
            }
            Err(error) => Err(error),
        }
    }

    fn issue_prefetches(&self, total_chunks: usize) {
        let wanted = self.strategy.prefetch(self.prefetch_degree);
        let mut state = self.state.lock();
        // Harvest finished prefetch tasks so their slots free up.
        let finished: Vec<usize> = state
            .in_flight
            .iter()
            .filter(|(_, handle)| handle.is_finished())
            .map(|(&index, _)| index)
            .collect();
        for index in finished {
            if let Some(handle) = state.in_flight.remove(&index) {
                if let Some(Ok(Ok(value))) = handle.try_wait() {
                    state.prefetch_cache.insert(index, Arc::new(value));
                }
                // Failed prefetches are dropped; an explicit access will
                // retry and surface the error.
            }
        }
        let capacity = state.prefetch_cache.capacity();
        for index in wanted {
            if index >= total_chunks
                || state.in_flight.len() >= capacity
                || state.prefetch_cache.contains(&index)
                || state.access_cache.contains(&index)
                || state.in_flight.contains_key(&index)
            {
                continue;
            }
            let fetch = self.fetch.clone();
            state.statistics.prefetches_issued += 1;
            state
                .in_flight
                .insert(index, self.pool.submit(move || fetch(index)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FetchNextAdaptive, FetchNextFixed};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn make_fetcher(
        parallelization: usize,
        counter: Arc<AtomicUsize>,
    ) -> ChunkFetcher<u64, String, impl Fn(usize) -> Result<u64, String> + Send + Sync + 'static>
    {
        ChunkFetcher::new(
            ChunkFetcherConfig {
                parallelization,
                access_cache_size: 2,
                prefetch_cache_size: None,
            },
            Arc::new(FetchNextAdaptive::default()),
            move |index| {
                counter.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
                if index == 9999 {
                    Err("boom".to_string())
                } else {
                    Ok(index as u64 * 10)
                }
            },
        )
    }

    #[test]
    fn sequential_access_returns_correct_values() {
        let counter = Arc::new(AtomicUsize::new(0));
        let fetcher = make_fetcher(4, counter);
        for index in 0..40 {
            assert_eq!(*fetcher.get(index, 40).unwrap(), index as u64 * 10);
        }
        let statistics = fetcher.statistics();
        assert_eq!(statistics.accesses, 40);
        assert!(
            statistics.prefetch_hits + statistics.on_demand + statistics.access_cache_hits == 40
        );
        assert!(statistics.prefetch_hits > 10, "{statistics:?}");
    }

    #[test]
    fn repeated_access_hits_the_access_cache() {
        let counter = Arc::new(AtomicUsize::new(0));
        let fetcher = make_fetcher(2, counter.clone());
        fetcher.get(5, 100).unwrap();
        let computed_after_first = counter.load(Ordering::SeqCst);
        for _ in 0..10 {
            fetcher.get(5, 100).unwrap();
        }
        assert!(fetcher.statistics().access_cache_hits >= 10);
        // Re-accessing the same chunk never recomputes it.
        assert!(counter.load(Ordering::SeqCst) >= computed_after_first);
        let recomputations_of_5 = fetcher.statistics().on_demand;
        assert_eq!(recomputations_of_5, 1);
    }

    #[test]
    fn random_access_still_returns_correct_data() {
        let counter = Arc::new(AtomicUsize::new(0));
        let fetcher = make_fetcher(4, counter);
        let pattern = [17usize, 3, 55, 4, 5, 6, 2, 90, 91, 0];
        for &index in &pattern {
            assert_eq!(*fetcher.get(index, 100).unwrap(), index as u64 * 10);
        }
    }

    #[test]
    fn errors_are_propagated_for_explicit_accesses() {
        let counter = Arc::new(AtomicUsize::new(0));
        let fetcher = make_fetcher(2, counter);
        assert_eq!(fetcher.get(9999, 10000).unwrap_err(), "boom");
        // The fetcher keeps working afterwards.
        assert_eq!(*fetcher.get(1, 10000).unwrap(), 10);
    }

    #[test]
    fn prefetching_never_exceeds_total_chunks() {
        let counter = Arc::new(AtomicUsize::new(0));
        let fetcher = make_fetcher(8, counter.clone());
        for index in 0..5 {
            fetcher.get(index, 5).unwrap();
        }
        // Give stray prefetch tasks a moment to run, then verify none fetched
        // beyond the last chunk.
        std::thread::sleep(Duration::from_millis(20));
        assert!(counter.load(Ordering::SeqCst) <= 5);
    }

    #[test]
    fn fixed_strategy_works_too() {
        let computed = Arc::new(AtomicUsize::new(0));
        let computed_clone = computed.clone();
        let fetcher = ChunkFetcher::new(
            ChunkFetcherConfig {
                parallelization: 2,
                access_cache_size: 1,
                prefetch_cache_size: Some(4),
            },
            Arc::new(FetchNextFixed::default()),
            move |index: usize| {
                computed_clone.fetch_add(1, Ordering::SeqCst);
                Ok::<usize, ()>(index + 1)
            },
        );
        for index in 0..16 {
            assert_eq!(*fetcher.get(index, 16).unwrap(), index + 1);
        }
        assert!(fetcher.statistics().prefetches_issued > 0);
    }
}
