//! A fixed-size thread pool with joinable task handles.
//!
//! The paper's architecture dispatches chunk decompression and marker
//! replacement as tasks to a shared pool (the `ThreadPool` / `JoiningThread`
//! classes in Figure 5).  This implementation uses a crossbeam MPMC channel
//! as the work queue and a small one-shot channel per task for the result.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use rgz_metrics::{exponential_buckets, Counter, Gauge, Histogram, MetricsRegistry};
use rgz_trace::{EventMeta, Outcome, Stage, TraceSink};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Point-in-time pool occupancy, readable whether or not a metrics registry
/// is attached (the counters below are always maintained; the registry
/// gauges mirror them when one is wired in).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStatistics {
    /// Tasks submitted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Tasks currently executing on a worker.
    pub tasks_inflight: u64,
    /// Total tasks ever submitted to this pool.
    pub tasks_submitted: u64,
}

/// Always-on occupancy counters plus the optional registry mirrors.
struct PoolObservers {
    queued: AtomicI64,
    inflight: AtomicI64,
    submitted: AtomicU64,
    queue_depth_gauge: Gauge,
    inflight_gauge: Gauge,
    tasks_total: Counter,
    task_wait_seconds: Histogram,
    metrics: Arc<MetricsRegistry>,
}

impl PoolObservers {
    fn new(metrics: Arc<MetricsRegistry>) -> Self {
        Self {
            queued: AtomicI64::new(0),
            inflight: AtomicI64::new(0),
            submitted: AtomicU64::new(0),
            queue_depth_gauge: metrics.gauge(
                "rgz_pool_queue_depth",
                "Tasks submitted to the worker pool but not yet started.",
            ),
            inflight_gauge: metrics.gauge(
                "rgz_pool_tasks_inflight",
                "Tasks currently executing on a pool worker.",
            ),
            tasks_total: metrics.counter(
                "rgz_pool_tasks_total",
                "Total tasks submitted to the worker pool.",
            ),
            task_wait_seconds: metrics.histogram(
                "rgz_pool_task_wait_seconds",
                "Time a task spent queued before a worker picked it up.",
                &exponential_buckets(0.000_05, 4.0, 10),
            ),
            metrics,
        }
    }
}

/// Handle to a value being computed on the pool.
pub struct TaskHandle<T> {
    receiver: Receiver<std::thread::Result<T>>,
}

impl<T> TaskHandle<T> {
    /// Blocks until the task finishes and returns its result.
    ///
    /// Panics if the task itself panicked (propagating the panic payload),
    /// mirroring `std::thread::JoinHandle::join().unwrap()` semantics.
    pub fn wait(self) -> T {
        match self.receiver.recv() {
            Ok(Ok(value)) => value,
            Ok(Err(panic)) => std::panic::resume_unwind(panic),
            Err(_) => panic!("thread pool dropped the task without running it"),
        }
    }

    /// Returns the result if the task already finished.
    pub fn try_wait(&self) -> Option<std::thread::Result<T>> {
        self.receiver.try_recv().ok()
    }

    /// Whether the task has finished (successfully or by panicking).
    pub fn is_finished(&self) -> bool {
        !self.receiver.is_empty()
    }
}

/// A fixed-size worker pool.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    trace: Arc<TraceSink>,
    observers: Arc<PoolObservers>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns `size` worker threads (at least one).
    pub fn new(size: usize) -> Self {
        Self::new_traced(size, TraceSink::shared_disabled())
    }

    /// Spawns `size` worker threads that report queue-wait spans to `trace`.
    pub fn new_traced(size: usize, trace: Arc<TraceSink>) -> Self {
        Self::new_observed(size, trace, MetricsRegistry::shared_disabled())
    }

    /// Spawns `size` worker threads reporting to both `trace` and the live
    /// metrics registry (queue depth / inflight gauges, task-wait histogram).
    pub fn new_observed(size: usize, trace: Arc<TraceSink>, metrics: Arc<MetricsRegistry>) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let workers = (0..size)
            .map(|index| {
                let receiver: Receiver<Job> = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("rgz-worker-{index}"))
                    .spawn(move || {
                        while let Ok(job) = receiver.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            trace,
            observers: Arc::new(PoolObservers::new(metrics)),
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Current queue depth / inflight / submitted counts.
    pub fn statistics(&self) -> PoolStatistics {
        PoolStatistics {
            queue_depth: self.observers.queued.load(Ordering::Relaxed).max(0) as u64,
            tasks_inflight: self.observers.inflight.load(Ordering::Relaxed).max(0) as u64,
            tasks_submitted: self.observers.submitted.load(Ordering::Relaxed),
        }
    }

    /// The metrics registry the pool reports to (the shared disabled one
    /// unless the pool was built with [`ThreadPool::new_observed`]).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.observers.metrics
    }

    /// The sink queue-wait spans are reported to (shared disabled sink when
    /// the pool was built with [`ThreadPool::new`]).
    pub fn trace(&self) -> &Arc<TraceSink> {
        &self.trace
    }

    /// Submits a closure and returns a handle to its result.
    pub fn submit<T, F>(&self, task: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (result_sender, result_receiver) = unbounded();
        // Capture the submit timestamp so the worker can record how long the
        // task sat in the queue; `None` (sink disabled) skips the span.
        let submitted_us = self.trace.is_enabled().then(|| self.trace.now_us());
        // Same idea for the metrics histogram: no `Instant::now` unless the
        // registry is live.
        let submitted_at = self.observers.metrics.is_enabled().then(Instant::now);
        let trace = Arc::clone(&self.trace);
        let observers = Arc::clone(&self.observers);
        observers.queued.fetch_add(1, Ordering::Relaxed);
        observers.submitted.fetch_add(1, Ordering::Relaxed);
        observers.queue_depth_gauge.inc();
        observers.tasks_total.inc();
        let job: Job = Box::new(move || {
            observers.queued.fetch_sub(1, Ordering::Relaxed);
            observers.inflight.fetch_add(1, Ordering::Relaxed);
            observers.queue_depth_gauge.dec();
            observers.inflight_gauge.inc();
            if let Some(submitted_at) = submitted_at {
                observers
                    .task_wait_seconds
                    .observe(submitted_at.elapsed().as_secs_f64());
            }
            if let Some(submitted_us) = submitted_us {
                trace.record_span_since(
                    Stage::TaskWait,
                    submitted_us,
                    EventMeta::default(),
                    Outcome::Ok,
                );
            }
            let outcome = catch_unwind(AssertUnwindSafe(task));
            observers.inflight.fetch_sub(1, Ordering::Relaxed);
            observers.inflight_gauge.dec();
            // The receiver may have been dropped if the caller lost interest;
            // that is fine, the work is simply discarded.
            let _ = result_sender.send(outcome);
        });
        self.sender
            .as_ref()
            .expect("thread pool already shut down")
            .send(job)
            .expect("worker threads terminated unexpectedly");
        TaskHandle {
            receiver: result_receiver,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes the workers exit their receive loop.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn runs_tasks_and_returns_results() {
        let pool = ThreadPool::new(4);
        let handles: Vec<TaskHandle<usize>> =
            (0..100).map(|i| pool.submit(move || i * i)).collect();
        let results: Vec<usize> = handles.into_iter().map(TaskHandle::wait).collect();
        assert_eq!(results, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_actually_run_in_parallel() {
        let pool = ThreadPool::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let running = running.clone();
                let peak = peak.clone();
                pool.submit(move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    running.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for handle in handles {
            handle.wait();
        }
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "no observable parallelism"
        );
    }

    #[test]
    fn zero_size_is_clamped_to_one_worker() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.submit(|| 7u32).wait(), 7);
    }

    #[test]
    fn panicking_tasks_propagate_on_wait() {
        let pool = ThreadPool::new(2);
        let handle = pool.submit(|| -> u32 { panic!("task exploded") });
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| handle.wait()));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        assert_eq!(pool.submit(|| 1 + 1).wait(), 2);
    }

    #[test]
    fn is_finished_and_try_wait() {
        let pool = ThreadPool::new(1);
        let handle = pool.submit(|| {
            std::thread::sleep(Duration::from_millis(50));
            42
        });
        assert!(handle.try_wait().is_none() || handle.is_finished());
        assert_eq!(handle.wait(), 42);
    }

    #[test]
    fn traced_pool_records_queue_wait_spans() {
        let trace = Arc::new(rgz_trace::TraceSink::new_enabled());
        let pool = ThreadPool::new_traced(2, Arc::clone(&trace));
        let handles: Vec<_> = (0..10).map(|i| pool.submit(move || i)).collect();
        for handle in handles {
            handle.wait();
        }
        let waits: usize = trace
            .snapshot()
            .iter()
            .flat_map(|track| track.events.iter())
            .filter(|event| {
                matches!(
                    event.kind,
                    rgz_trace::EventKind::Span {
                        stage: rgz_trace::Stage::TaskWait,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(waits, 10, "one queue-wait span per submitted task");
    }

    #[test]
    fn untraced_pool_records_nothing() {
        let pool = ThreadPool::new(2);
        assert!(!pool.trace().is_enabled());
        for handle in (0..4).map(|i| pool.submit(move || i)).collect::<Vec<_>>() {
            handle.wait();
        }
        assert_eq!(pool.trace().event_count(), 0);
    }

    #[test]
    fn pool_statistics_track_queue_and_inflight() {
        let registry = Arc::new(rgz_metrics::MetricsRegistry::new_enabled());
        let pool = ThreadPool::new_observed(
            1,
            rgz_trace::TraceSink::shared_disabled(),
            Arc::clone(&registry),
        );
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let blocker = pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        started_rx.recv().unwrap();
        // One task running, queue another two behind it on the single worker.
        let queued: Vec<_> = (0..2).map(|i| pool.submit(move || i)).collect();
        let stats = pool.statistics();
        assert_eq!(stats.tasks_inflight, 1);
        assert_eq!(stats.queue_depth, 2);
        assert_eq!(stats.tasks_submitted, 3);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.gauge("rgz_pool_tasks_inflight", &[]), Some(1));
        assert_eq!(snapshot.gauge("rgz_pool_queue_depth", &[]), Some(2));
        assert_eq!(snapshot.counter("rgz_pool_tasks_total", &[]), Some(3));
        block_tx.send(()).unwrap();
        blocker.wait();
        for handle in queued {
            handle.wait();
        }
        let stats = pool.statistics();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.tasks_inflight, 0);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.gauge("rgz_pool_queue_depth", &[]), Some(0));
        assert_eq!(snapshot.gauge("rgz_pool_tasks_inflight", &[]), Some(0));
        assert_eq!(
            snapshot
                .histogram("rgz_pool_task_wait_seconds", &[])
                .unwrap()
                .count,
            3
        );
    }

    #[test]
    fn dropping_the_pool_joins_all_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let counter = counter.clone();
                // Fire-and-forget: handles are dropped immediately.
                let _ = pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // All submitted tasks ran before drop returned.
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }
}
