//! The cache-and-prefetch machinery (§3.1–§3.2, Figure 5).
//!
//! * [`ThreadPool`] — a fixed-size worker pool with joinable task handles.
//! * [`Cache`] — a keyed cache parameterised by a [`CacheStrategy`]
//!   (eviction policy); [`LeastRecentlyUsed`] is the default.
//! * [`FetchingStrategy`] — decides which chunk indexes to prefetch based on
//!   the recent access history (`FetchNextFixed`, `FetchNextAdaptive`,
//!   `FetchNextMultiStream`).
//! * [`ChunkFetcher`] — ties the three together: on every access it returns
//!   the cached chunk or computes it on the pool, and asynchronously
//!   prefetches the chunks the strategy predicts, into a *separate* prefetch
//!   cache so speculative work cannot evict explicitly accessed chunks.

pub mod cache;
pub mod chunk_fetcher;
pub mod plan;
pub mod strategy;
pub mod thread_pool;

pub use cache::{Cache, CacheStatistics, CacheStrategy, LeastRecentlyUsed};
pub use chunk_fetcher::{ChunkFetcher, ChunkFetcherConfig, FetchStatistics};
pub use plan::IndexAlignedPlan;
pub use strategy::{FetchNextAdaptive, FetchNextFixed, FetchNextMultiStream, FetchingStrategy};
pub use thread_pool::{PoolStatistics, TaskHandle, ThreadPool};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn end_to_end_prefetching_pipeline() {
        // A fetcher whose "decompression" doubles the index; verify that
        // sequential access triggers prefetching and never returns wrong data.
        let computed = Arc::new(AtomicUsize::new(0));
        let computed_clone = computed.clone();
        let fetcher = ChunkFetcher::new(
            ChunkFetcherConfig {
                parallelization: 4,
                ..Default::default()
            },
            Arc::new(FetchNextAdaptive::default()),
            move |index: usize| {
                computed_clone.fetch_add(1, Ordering::Relaxed);
                Ok::<usize, String>(index * 2)
            },
        );
        for index in 0..64usize {
            let value = fetcher.get(index, 64).unwrap();
            assert_eq!(*value, index * 2);
        }
        let statistics = fetcher.statistics();
        assert_eq!(statistics.accesses, 64);
        assert!(statistics.prefetch_hits > 0, "prefetching never hit");
        // Prefetching may compute chunks beyond the highest accessed index and
        // may recompute a chunk whose prefetched result was evicted before it
        // was accessed (timing dependent), but the total work must stay within
        // a small constant factor of the 64 useful chunks.
        assert!(computed.load(Ordering::Relaxed) >= 64);
        assert!(computed.load(Ordering::Relaxed) <= 64 * 2);
    }
}
