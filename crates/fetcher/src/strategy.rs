//! Prefetching strategies (§3.2).
//!
//! The strategy is consulted with the history of recently accessed chunk
//! indexes and answers with the chunk indexes worth prefetching.  It does not
//! keep track of what is already cached — the [`crate::ChunkFetcher`] filters
//! out chunks that are cached or already in flight, exactly as the paper
//! describes.

/// Interface of a prefetching strategy.
pub trait FetchingStrategy: Send + Sync {
    /// Records an access to a chunk index.
    fn on_access(&self, index: usize);

    /// Returns the chunk indexes to prefetch, given the maximum prefetch
    /// degree (usually twice the parallelization).
    fn prefetch(&self, degree: usize) -> Vec<usize>;
}

/// Always prefetches the `degree` chunks following the last access.
#[derive(Debug, Default)]
pub struct FetchNextFixed {
    last: parking_lot::Mutex<Option<usize>>,
}

impl FetchingStrategy for FetchNextFixed {
    fn on_access(&self, index: usize) {
        *self.last.lock() = Some(index);
    }

    fn prefetch(&self, degree: usize) -> Vec<usize> {
        match *self.last.lock() {
            Some(last) => (1..=degree).map(|i| last + i).collect(),
            None => Vec::new(),
        }
    }
}

/// Exponentially growing prefetch degree for sequential access patterns.
///
/// The first access to a chunk already prefetches at full degree so that
/// "decompression starts fully parallel" (§3.2); afterwards the degree
/// doubles with every consecutive sequential access and collapses to one on
/// a random access.
#[derive(Debug)]
pub struct FetchNextAdaptive {
    state: parking_lot::Mutex<AdaptiveState>,
}

#[derive(Debug, Default)]
struct AdaptiveState {
    last: Option<usize>,
    consecutive: u32,
}

impl Default for FetchNextAdaptive {
    fn default() -> Self {
        Self {
            state: parking_lot::Mutex::new(AdaptiveState::default()),
        }
    }
}

impl FetchingStrategy for FetchNextAdaptive {
    fn on_access(&self, index: usize) {
        let mut state = self.state.lock();
        state.consecutive = match state.last {
            // First access: assume a full sequential read is starting.
            None => u32::MAX,
            Some(last) if index == last + 1 || index == last => state.consecutive.saturating_add(1),
            Some(_) => 0,
        };
        state.last = Some(index);
    }

    fn prefetch(&self, degree: usize) -> Vec<usize> {
        let state = self.state.lock();
        let Some(last) = state.last else {
            return Vec::new();
        };
        let count = if state.consecutive == u32::MAX {
            degree
        } else {
            (1usize << state.consecutive.min(16)).min(degree)
        };
        (1..=count).map(|i| last + i).collect()
    }
}

/// Tracks several interleaved sequential streams (e.g. two files of a TAR
/// archive read concurrently) and prefetches ahead of each of them.
#[derive(Debug)]
pub struct FetchNextMultiStream {
    streams: parking_lot::Mutex<Vec<usize>>,
    /// Maximum number of concurrent streams tracked.
    max_streams: usize,
}

impl Default for FetchNextMultiStream {
    fn default() -> Self {
        Self {
            streams: parking_lot::Mutex::new(Vec::new()),
            max_streams: 16,
        }
    }
}

impl FetchNextMultiStream {
    /// Creates a strategy tracking at most `max_streams` concurrent streams.
    pub fn new(max_streams: usize) -> Self {
        Self {
            streams: parking_lot::Mutex::new(Vec::new()),
            max_streams: max_streams.max(1),
        }
    }
}

impl FetchingStrategy for FetchNextMultiStream {
    fn on_access(&self, index: usize) {
        let mut streams = self.streams.lock();
        // An access extends the stream whose head is immediately before it.
        if let Some(position) = streams
            .iter()
            .position(|&head| index == head + 1 || index == head)
        {
            streams[position] = index;
            return;
        }
        if streams.len() == self.max_streams {
            streams.remove(0);
        }
        streams.push(index);
    }

    fn prefetch(&self, degree: usize) -> Vec<usize> {
        let streams = self.streams.lock();
        if streams.is_empty() {
            return Vec::new();
        }
        let per_stream = (degree / streams.len()).max(1);
        let mut result = Vec::with_capacity(degree);
        for &head in streams.iter() {
            for i in 1..=per_stream {
                if result.len() == degree {
                    break;
                }
                result.push(head + i);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_strategy_prefetches_a_constant_window() {
        let strategy = FetchNextFixed::default();
        assert!(strategy.prefetch(4).is_empty());
        strategy.on_access(10);
        assert_eq!(strategy.prefetch(4), vec![11, 12, 13, 14]);
        strategy.on_access(3);
        assert_eq!(strategy.prefetch(2), vec![4, 5]);
    }

    #[test]
    fn adaptive_strategy_starts_at_full_degree() {
        let strategy = FetchNextAdaptive::default();
        strategy.on_access(0);
        assert_eq!(strategy.prefetch(8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn adaptive_strategy_grows_and_collapses() {
        let strategy = FetchNextAdaptive::default();
        strategy.on_access(0);
        // A random (non-sequential) access collapses the window.
        strategy.on_access(100);
        assert_eq!(strategy.prefetch(16), vec![101]);
        strategy.on_access(101);
        assert_eq!(strategy.prefetch(16), vec![102, 103]);
        strategy.on_access(102);
        assert_eq!(strategy.prefetch(16), vec![103, 104, 105, 106]);
        strategy.on_access(103);
        assert_eq!(strategy.prefetch(16).len(), 8);
        strategy.on_access(104);
        assert_eq!(strategy.prefetch(16).len(), 16);
        // Degree is capped by the argument.
        strategy.on_access(105);
        assert_eq!(strategy.prefetch(16).len(), 16);
    }

    #[test]
    fn adaptive_strategy_tolerates_repeated_access_to_same_chunk() {
        let strategy = FetchNextAdaptive::default();
        strategy.on_access(5);
        strategy.on_access(5);
        let prefetch = strategy.prefetch(8);
        assert!(prefetch.starts_with(&[6]));
    }

    #[test]
    fn multi_stream_strategy_tracks_independent_readers() {
        let strategy = FetchNextMultiStream::default();
        strategy.on_access(0);
        strategy.on_access(1000);
        strategy.on_access(1);
        strategy.on_access(1001);
        let prefetch = strategy.prefetch(8);
        assert!(prefetch.contains(&2), "{prefetch:?}");
        assert!(prefetch.contains(&1002), "{prefetch:?}");
        assert!(prefetch.len() <= 8);
    }

    #[test]
    fn multi_stream_strategy_caps_stream_count() {
        let strategy = FetchNextMultiStream::new(2);
        strategy.on_access(0);
        strategy.on_access(100);
        strategy.on_access(200);
        let prefetch = strategy.prefetch(4);
        // Stream "0" was evicted; only 100 and 200 remain.
        assert!(!prefetch.contains(&1));
        assert!(prefetch.contains(&101));
        assert!(prefetch.contains(&201));
    }
}
