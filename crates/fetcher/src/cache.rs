//! A keyed cache with pluggable eviction strategy (the `Cache`,
//! `CacheStrategy` and `LeastRecentlyUsed` classes of Figure 5).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Eviction policy interface: informed about touches and insertions, asked
/// which key to evict when the cache is full.
pub trait CacheStrategy<K>: Send {
    /// A key was accessed.
    fn touch(&mut self, key: &K);
    /// A key was inserted.
    fn insert(&mut self, key: K);
    /// A key was removed externally.
    fn remove(&mut self, key: &K);
    /// Chooses the key to evict.
    fn evict(&mut self) -> Option<K>;
}

/// Least-recently-used eviction.
#[derive(Debug)]
pub struct LeastRecentlyUsed<K> {
    /// Keys ordered from least to most recently used.
    order: Vec<K>,
}

impl<K> Default for LeastRecentlyUsed<K> {
    fn default() -> Self {
        Self { order: Vec::new() }
    }
}

impl<K: Eq + Clone> CacheStrategy<K> for LeastRecentlyUsed<K>
where
    K: Send,
{
    fn touch(&mut self, key: &K) {
        if let Some(position) = self.order.iter().position(|k| k == key) {
            let key = self.order.remove(position);
            self.order.push(key);
        }
    }

    fn insert(&mut self, key: K) {
        if let Some(position) = self.order.iter().position(|k| *k == key) {
            self.order.remove(position);
        }
        self.order.push(key);
    }

    fn remove(&mut self, key: &K) {
        if let Some(position) = self.order.iter().position(|k| k == key) {
            self.order.remove(position);
        }
    }

    fn evict(&mut self) -> Option<K> {
        if self.order.is_empty() {
            None
        } else {
            Some(self.order.remove(0))
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatistics {
    /// Number of `get` calls that found the key.
    pub hits: u64,
    /// Number of `get` calls that missed.
    pub misses: u64,
    /// Number of evictions performed.
    pub evictions: u64,
}

/// A bounded cache holding `Arc<V>` values.
pub struct Cache<K, V, S = LeastRecentlyUsed<K>> {
    capacity: usize,
    entries: HashMap<K, Arc<V>>,
    strategy: S,
    statistics: CacheStatistics,
}

impl<K: std::fmt::Debug, V, S> std::fmt::Debug for Cache<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .field("statistics", &self.statistics)
            .finish()
    }
}

impl<K, V> Cache<K, V, LeastRecentlyUsed<K>>
where
    K: Eq + Hash + Clone + Send,
{
    /// Creates an LRU cache with the given capacity (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_strategy(capacity, LeastRecentlyUsed::default())
    }
}

impl<K, V, S> Cache<K, V, S>
where
    K: Eq + Hash + Clone + Send,
    S: CacheStrategy<K>,
{
    /// Creates a cache with an explicit eviction strategy.
    pub fn with_strategy(capacity: usize, strategy: S) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            strategy,
            statistics: CacheStatistics::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics.
    pub fn statistics(&self) -> CacheStatistics {
        self.statistics
    }

    /// Looks up a key, marking it as recently used.
    pub fn get(&mut self, key: &K) -> Option<Arc<V>> {
        match self.entries.get(key) {
            Some(value) => {
                self.statistics.hits += 1;
                self.strategy.touch(key);
                Some(value.clone())
            }
            None => {
                self.statistics.misses += 1;
                None
            }
        }
    }

    /// Looks up a key without affecting eviction order or statistics.
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        self.entries.get(key).cloned()
    }

    /// Whether a key is present (does not affect statistics).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts a value, evicting as necessary.
    pub fn insert(&mut self, key: K, value: Arc<V>) {
        if self.entries.contains_key(&key) {
            self.entries.insert(key.clone(), value);
            self.strategy.touch(&key);
            return;
        }
        while self.entries.len() >= self.capacity {
            match self.strategy.evict() {
                Some(evicted) => {
                    self.entries.remove(&evicted);
                    self.statistics.evictions += 1;
                }
                None => break,
            }
        }
        self.strategy.insert(key.clone());
        self.entries.insert(key, value);
    }

    /// Removes a key.
    pub fn remove(&mut self, key: &K) -> Option<Arc<V>> {
        self.strategy.remove(key);
        self.entries.remove(key)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        let keys: Vec<K> = self.entries.keys().cloned().collect();
        for key in &keys {
            self.strategy.remove(key);
        }
        self.entries.clear();
    }

    /// Iterates over the currently cached keys (in arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get_and_capacity() {
        let mut cache: Cache<u64, String> = Cache::new(2);
        cache.insert(1, Arc::new("one".into()));
        cache.insert(2, Arc::new("two".into()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1).as_deref().map(String::as_str), Some("one"));
        cache.insert(3, Arc::new("three".into()));
        assert_eq!(cache.len(), 2);
        // 2 was the least recently used (1 was touched by the get).
        assert!(cache.contains(&1));
        assert!(!cache.contains(&2));
        assert!(cache.contains(&3));
        assert_eq!(cache.statistics().evictions, 1);
    }

    #[test]
    fn lru_order_follows_touches() {
        let mut cache: Cache<u32, u32> = Cache::new(3);
        for i in 0..3 {
            cache.insert(i, Arc::new(i));
        }
        cache.get(&0);
        cache.get(&1);
        cache.insert(3, Arc::new(3)); // evicts 2
        assert!(!cache.contains(&2));
        cache.insert(4, Arc::new(4)); // evicts 0
        assert!(!cache.contains(&0));
        assert!(cache.contains(&1) && cache.contains(&3) && cache.contains(&4));
    }

    #[test]
    fn reinserting_updates_value_without_eviction() {
        let mut cache: Cache<u32, u32> = Cache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        cache.insert(1, Arc::new(11));
        assert_eq!(cache.len(), 2);
        assert_eq!(*cache.get(&1).unwrap(), 11);
        assert_eq!(cache.statistics().evictions, 0);
    }

    #[test]
    fn statistics_count_hits_and_misses() {
        let mut cache: Cache<u32, u32> = Cache::new(4);
        cache.insert(1, Arc::new(1));
        cache.get(&1);
        cache.get(&2);
        cache.get(&1);
        let statistics = cache.statistics();
        assert_eq!(statistics.hits, 2);
        assert_eq!(statistics.misses, 1);
        // peek affects neither.
        cache.peek(&2);
        assert_eq!(cache.statistics(), statistics);
    }

    #[test]
    fn remove_and_clear() {
        let mut cache: Cache<u32, u32> = Cache::new(4);
        for i in 0..4 {
            cache.insert(i, Arc::new(i));
        }
        assert_eq!(cache.remove(&2).map(|v| *v), Some(2));
        assert_eq!(cache.remove(&2), None);
        cache.clear();
        assert!(cache.is_empty());
        // The strategy state must be consistent: inserting after clear works.
        for i in 10..20 {
            cache.insert(i, Arc::new(i));
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn capacity_of_zero_is_clamped_to_one() {
        let mut cache: Cache<u32, u32> = Cache::new(0);
        cache.insert(1, Arc::new(1));
        cache.insert(2, Arc::new(2));
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&2));
    }
}
