//! Criterion micro-benchmark for Figure 7 (BitReader bandwidth per
//! bits-per-read).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rgz_bitio::BitReader;

fn bench_bitreader(c: &mut Criterion) {
    let data = rgz_datagen::base64_random(1 << 20, 7);
    let mut group = c.benchmark_group("bitreader_read");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for bits in [1u32, 2, 4, 8, 13, 16, 24, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut reader = BitReader::new(&data);
                let mut checksum = 0u64;
                while reader.remaining_bits() >= bits as u64 {
                    checksum = checksum.wrapping_add(reader.read(bits).unwrap());
                }
                checksum
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bitreader
}
criterion_main!(benches);
