//! Criterion micro-benchmarks for Table 2 (block finders, marker replacement).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rgz_blockfinder::{
    BlockFinder, CustomParseFinder, DynamicBlockFinder, UncompressedBlockFinder,
};
use rgz_deflate::{replace_markers, MARKER_BASE};

fn scan(finder: &dyn BlockFinder, data: &[u8]) -> u64 {
    let mut count = 0u64;
    let mut offset = 0u64;
    while let Some(found) = finder.find_next(data, offset) {
        count += 1;
        offset = found + 1;
    }
    count
}

fn bench_components(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let random: Vec<u8> = (0..1 << 20).map(|_| rng.gen()).collect();

    let mut group = c.benchmark_group("block_finders");
    group.throughput(Throughput::Bytes(random.len() as u64));
    group.sample_size(10);
    group.bench_function("dbf_custom_parse", |b| {
        b.iter(|| scan(&CustomParseFinder, &random))
    });
    group.bench_function("dbf_rapidgzip", |b| {
        b.iter(|| scan(&DynamicBlockFinder::new(), &random))
    });
    group.bench_function("nbf", |b| {
        b.iter(|| scan(&UncompressedBlockFinder::new(), &random))
    });
    group.finish();

    let window: Vec<u8> = (0..32 * 1024).map(|i| (i % 251) as u8).collect();
    let symbols: Vec<u16> = (0..4 << 20)
        .map(|i| {
            if i % 5 == 0 {
                MARKER_BASE + (i % 32768) as u16
            } else {
                (i % 256) as u16
            }
        })
        .collect();
    let mut group = c.benchmark_group("marker_replacement");
    group.throughput(Throughput::Bytes(symbols.len() as u64));
    group.sample_size(20);
    group.bench_function("replace_markers", |b| {
        b.iter(|| replace_markers(&symbols, &window).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
