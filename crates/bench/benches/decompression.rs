//! Criterion end-to-end decompression benchmark (a small-scale companion to
//! Figures 9 and 10): serial gzip vs. rapidgzip without and with an index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_io::SharedFileReader;

fn bench_decompression(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let data = rgz_datagen::silesia_like(8 << 20, 77);
    let compressed = rgz_gzip::GzipWriter::default().compress_pigz_like(&data, 128 * 1024);
    let shared = SharedFileReader::from_bytes(compressed.clone());

    let mut group = c.benchmark_group("decompression");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);

    group.bench_function("gzip_serial", |b| {
        b.iter(|| rgz_gzip::decompress(&compressed).unwrap())
    });

    for &threads in &[1usize, cores.min(4), cores] {
        let options = ParallelGzipReaderOptions {
            parallelization: threads,
            chunk_size: 512 * 1024,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("rapidgzip_no_index", threads),
            &options,
            |b, options| {
                b.iter(|| {
                    let mut reader =
                        ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
                    reader.decompress_all().unwrap()
                })
            },
        );
        let mut builder = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
        let index = builder.build_full_index().unwrap();
        group.bench_with_input(
            BenchmarkId::new("rapidgzip_index", threads),
            &(options, index),
            |b, (options, index)| {
                b.iter(|| {
                    let mut reader = ParallelGzipReader::with_index(
                        shared.clone(),
                        options.clone(),
                        index.clone(),
                    )
                    .unwrap();
                    reader.decompress_all().unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decompression);
criterion_main!(benches);
