//! Table 1: empirical filter frequencies of the Dynamic Block finder on
//! random data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rgz_bench::*;
use rgz_blockfinder::{DynamicBlockFinder, FilterStatistics};

fn main() {
    print_header(
        "Table 1 — Dynamic Block finder filter frequencies",
        "counts are normalised per 10^12 tested positions for comparison with the paper",
    );
    let megabytes = scaled(64, 8);
    let mut rng = StdRng::seed_from_u64(0x7AB1E);
    let data: Vec<u8> = (0..megabytes * 1024 * 1024).map(|_| rng.gen()).collect();

    let finder = DynamicBlockFinder::new();
    let mut statistics = FilterStatistics::default();
    let (_, duration) = time(|| {
        let mut offset = 0u64;
        while let Some(found) = finder.find_next_with_statistics(&data, offset, &mut statistics) {
            offset = found + 1;
        }
    });
    let tested = statistics.tested_positions.max(1);
    println!(
        "# tested {} positions in {:.2} s ({:.1} MB/s)",
        tested,
        duration.as_secs_f64(),
        bandwidth_mb_per_s(data.len(), duration)
    );
    println!(
        "{:<32} {:>16} {:>20}",
        "filter", "count", "per 1e12 positions"
    );
    for (label, count) in statistics.rows() {
        let normalised = count as f64 * 1e12 / tested as f64;
        println!("{label:<32} {count:>16} {normalised:>20.1}");
    }
}
