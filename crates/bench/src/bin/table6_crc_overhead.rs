//! Table 6: checksum verification overhead — verified vs. unverified
//! parallel decompression throughput.
//!
//! The verification pipeline hashes every chunk's decompressed bytes on the
//! worker thread that produced them and folds the per-chunk CRC-32 fragments
//! with `crc32_combine` on the orchestrator (an O(log n) GF(2) product per
//! fragment).  Because hashing parallelizes with decoding, the expected
//! overhead is a few percent — this harness quantifies it per corpus.

use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions, VerificationMode};
use rgz_gzip::GzipWriter;
use rgz_io::SharedFileReader;

fn main() {
    print_header(
        "Table 6 — CRC-32 verification overhead",
        "parallel decompression bandwidth with --verify (default) vs. --no-verify",
    );
    let total = scaled(64 << 20, 8 << 20);
    let chunk_size = scaled(4 << 20, 256 << 10);
    let corpora: Vec<(&str, Vec<u8>)> = vec![
        ("base64", rgz_datagen::base64_random(total, 61)),
        ("fastq", rgz_datagen::fastq_of_size(total, 62)),
        ("silesia", rgz_datagen::silesia_like(total, 63)),
    ];

    println!(
        "{:<10} {:>14} {:>14} {:>9} {:>9}",
        "corpus", "off MB/s", "full MB/s", "overhead", "members"
    );
    for (name, data) in corpora {
        let compressed = GzipWriter::default().compress(&data);
        let shared = SharedFileReader::from_bytes(compressed);

        let mut bandwidths = [0.0f64; 2];
        let mut members_verified = 0u64;
        for (index, verification) in [VerificationMode::Off, VerificationMode::Full]
            .into_iter()
            .enumerate()
        {
            let options = ParallelGzipReaderOptions {
                parallelization: available_cores(),
                chunk_size,
                verification,
                ..Default::default()
            };
            let (reader, duration) = best_of(|| {
                let mut reader = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
                let restored = reader.decompress_all().unwrap();
                assert_eq!(restored.len(), data.len());
                reader
            });
            bandwidths[index] = bandwidth_mb_per_s(data.len(), duration);
            if verification == VerificationMode::Full {
                members_verified = reader.verification_statistics().members_verified;
                assert!(members_verified > 0, "verification pipeline never ran");
            }
        }
        let overhead = (bandwidths[0] / bandwidths[1] - 1.0) * 100.0;
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>8.1}% {:>9}",
            name, bandwidths[0], bandwidths[1], overhead, members_verified
        );
    }
}
