//! Figure 7: BitReader bandwidth as a function of bits per read call.

use rgz_bench::*;
use rgz_bitio::BitReader;

fn main() {
    print_header(
        "Figure 7 — BitReader bandwidth vs. bits per read",
        "single-threaded; higher bits-per-call amortise the refill cost",
    );
    let size = scaled(8 * 1024 * 1024, 1024 * 1024);
    println!("{:>12} {:>16}", "bits/read", "bandwidth MB/s");
    for bits in 1..=30u32 {
        // Scale the data with bits-per-read for roughly equal runtimes, as in
        // the paper.
        let data = rgz_datagen::base64_random(size * bits as usize / 8, bits as u64);
        let (_, duration) = best_of(|| {
            let mut reader = BitReader::new(&data);
            let mut checksum = 0u64;
            while reader.remaining_bits() >= bits as u64 {
                checksum = checksum.wrapping_add(reader.read(bits).unwrap());
            }
            checksum
        });
        println!(
            "{:>12} {:>16.1}",
            bits,
            bandwidth_mb_per_s(data.len(), duration)
        );
    }
}
