//! Figure 7: BitReader bandwidth as a function of bits per read call.
//!
//! Two curves: the checked `read()` path (one refill + bounds check per
//! call, as the paper measures) and the batched fast path
//! (`fill_buffer` once, then `peek_cached`/`consume_cached` until the buffer
//! runs low — the access pattern of the multi-symbol inflate loop).

use rgz_bench::*;
use rgz_bitio::BitReader;

fn main() {
    let json = json_mode();
    let mut report = JsonReport::new("fig07_bitreader");
    if !json {
        print_header(
            "Figure 7 — BitReader bandwidth vs. bits per read",
            "single-threaded; higher bits-per-call amortise the refill cost",
        );
        println!(
            "{:>12} {:>16} {:>16}",
            "bits/read", "read MB/s", "batched MB/s"
        );
    }
    let size = scaled(8 * 1024 * 1024, 1024 * 1024);
    for bits in 1..=30u32 {
        // Scale the data with bits-per-read for roughly equal runtimes, as in
        // the paper.
        let data = rgz_datagen::base64_random(size * bits as usize / 8, bits as u64);
        let (_, duration) = best_of(|| {
            let mut reader = BitReader::new(&data);
            let mut checksum = 0u64;
            while reader.remaining_bits() >= bits as u64 {
                checksum = checksum.wrapping_add(reader.read(bits).unwrap());
            }
            checksum
        });
        let read_bandwidth = bandwidth_mb_per_s(data.len(), duration);

        let (_, duration) = best_of(|| {
            let mut reader = BitReader::new(&data);
            let mut checksum = 0u64;
            loop {
                reader.fill_buffer();
                if reader.cached_bits() < bits {
                    break;
                }
                while reader.cached_bits() >= bits {
                    checksum = checksum.wrapping_add(reader.peek_cached(bits));
                    reader.consume_cached(bits);
                }
            }
            checksum
        });
        let batched_bandwidth = bandwidth_mb_per_s(data.len(), duration);

        if !json {
            println!("{bits:>12} {read_bandwidth:>16.1} {batched_bandwidth:>16.1}");
        }
        // Only a few representative widths go into the regression file; the
        // full curve stays for the figure.
        if matches!(bits, 1 | 5 | 13 | 24 | 30) {
            report.record(&format!("read_{bits}bit_mb_s"), read_bandwidth);
            report.record(&format!("batched_{bits}bit_mb_s"), batched_bandwidth);
            report.record(
                &format!("batched_speedup_{bits}bit"),
                batched_bandwidth / read_bandwidth,
            );
        }
    }
    if json {
        report.emit();
    }
}
