//! Table 8: the parallel write path — compression bandwidth, scaling, and
//! the round-trip compression ratio.
//!
//! Measures `rgz_compress` over the two CI corpora (silesia-like text and
//! base64) at the default and fast levels, in pigz and BGZF layouts, plus a
//! single-threaded control run.  Every timed stream is decoded back and
//! byte-compared before its ratio is reported, so `compress_roundtrip_ratio`
//! only ever describes output the reader stack actually accepts.
//!
//! `--json` emits one [`rgz_bench::JsonReport`] line; `perf_compare` gates
//! `compress_roundtrip_ratio` (the silesia default-level ratio, hardware
//! independent) and the absolute `compress_silesia_mb_s` floor, catching
//! both "the compressor stopped compressing" and "the compressor fell off a
//! performance cliff".

use std::time::Duration;

use rgz_bench::*;
use rgz_compress::{
    CompressionLevel, ContainerFormat, ParallelCompressor, ParallelCompressorOptions,
};

fn options(
    level: CompressionLevel,
    container: ContainerFormat,
    parallelization: usize,
) -> ParallelCompressorOptions {
    ParallelCompressorOptions {
        level,
        container,
        chunk_size: 128 << 10,
        member_size: 2 << 20,
        parallelization,
        ..Default::default()
    }
}

/// Best-of-N timed compression; the output of the last run is returned for
/// the round-trip check and ratio.
fn timed_compress(
    data: &std::sync::Arc<[u8]>,
    options: ParallelCompressorOptions,
    repetitions: usize,
) -> (Duration, Vec<u8>) {
    let compressor = ParallelCompressor::new(options);
    let mut best = Duration::MAX;
    let mut bytes = Vec::new();
    for _ in 0..repetitions {
        let start = std::time::Instant::now();
        let stream = compressor.compress_shared(std::sync::Arc::clone(data));
        best = best.min(start.elapsed());
        bytes = stream.bytes;
    }
    (best, bytes)
}

fn main() {
    let json = json_mode();
    let mut report = JsonReport::new("table8_compress");
    if !json {
        print_header(
            "Table 8 — parallel compression (pigz/BGZF write path)",
            "bandwidth and round-trip ratio; every stream is decoded back before reporting",
        );
        println!(
            "{:<26} {:>10} {:>10} {:>8}",
            "configuration", "MB/s", "out KiB", "ratio"
        );
    }

    let total = scaled(32 << 20, 4 << 20);
    let repetitions = scaled(3, 2);
    let silesia: std::sync::Arc<[u8]> = rgz_datagen::silesia_like(total, 81).into();
    let base64: std::sync::Arc<[u8]> = rgz_datagen::base64_random(total, 82).into();
    let input_mb = total as f64 / 1e6;

    let row =
        |name: &str, data: &std::sync::Arc<[u8]>, opts: ParallelCompressorOptions| -> (f64, f64) {
            let (elapsed, bytes) = timed_compress(data, opts, repetitions);
            assert_eq!(
                rgz_gzip::decompress(&bytes).expect("bench output must decode"),
                data[..],
                "{name}: round trip"
            );
            let mb_s = input_mb / elapsed.as_secs_f64().max(1e-9);
            let ratio = data.len() as f64 / (bytes.len() as f64).max(1.0);
            if !json {
                println!(
                    "{:<26} {:>10.1} {:>10} {:>8.2}",
                    name,
                    mb_s,
                    bytes.len() >> 10,
                    ratio
                );
            }
            (mb_s, ratio)
        };

    let cores = available_cores();
    let (parallel_mb_s, silesia_ratio) = row(
        "silesia default pigz",
        &silesia,
        options(CompressionLevel::Default, ContainerFormat::Pigz, cores),
    );
    report.record("compress_silesia_mb_s", parallel_mb_s);
    let (fast_mb_s, _) = row(
        "silesia fast pigz",
        &silesia,
        options(CompressionLevel::Fast, ContainerFormat::Pigz, cores),
    );
    report.record("compress_silesia_fast_mb_s", fast_mb_s);
    let (bgzf_mb_s, _) = row(
        "silesia default bgzf",
        &silesia,
        options(CompressionLevel::Default, ContainerFormat::Bgzf, cores),
    );
    report.record("compress_bgzf_mb_s", bgzf_mb_s);
    let (base64_mb_s, _) = row(
        "base64 default pigz",
        &base64,
        options(CompressionLevel::Default, ContainerFormat::Pigz, cores),
    );
    report.record("compress_base64_mb_s", base64_mb_s);

    // Single-threaded control for the hardware-independent scaling ratio.
    let (serial_mb_s, _) = row(
        "silesia default 1-thread",
        &silesia,
        options(CompressionLevel::Default, ContainerFormat::Pigz, 1),
    );
    let speedup = parallel_mb_s / serial_mb_s.max(1e-9);
    if !json {
        println!("parallel speedup over 1 thread ({cores} cores): {speedup:.2}x");
        println!("silesia round-trip ratio: {silesia_ratio:.2}");
    }
    report.record("compress_serial_mb_s", serial_mb_s);
    report.record("compress_parallel_speedup", speedup);
    report.record("compress_roundtrip_ratio", silesia_ratio);

    if json {
        report.emit();
    }
}
