//! Table 7: index interop — cold-start random access with an imported
//! on-disk index vs. speculative block-finding.
//!
//! The whole point of gztool / indexed_gzip compatibility is skipping the
//! first pass: a reader seeded with an imported index can serve a random
//! offset by decoding exactly one chunk, while a cold reader has to run the
//! speculative sequential pass up to that offset first.  This harness
//! quantifies the gap on a pigz-style corpus for every importable format
//! and reports the import cost of each.
//!
//! `--json` emits one [`rgz_bench::JsonReport`] line; `perf_compare` gates
//! the hardware-independent `speedup_index_vs_speculative` ratio.

use std::io::{Read, Seek, SeekFrom};
use std::time::Duration;

use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_gzip::GzipWriter;
use rgz_index::IndexFormat;
use rgz_interop::{export_index, import_index, AnyIndexFormat};
use rgz_io::SharedFileReader;

fn options() -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: available_cores(),
        chunk_size: scaled(1 << 20, 128 << 10),
        ..Default::default()
    }
}

/// Deterministic pseudo-random offsets covering the whole stream.
fn access_offsets(total: usize, count: usize, read_size: usize) -> Vec<u64> {
    let mut state = 0x2545F491_4F6CDD1Du64;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % (total - read_size) as u64
        })
        .collect()
}

fn timed_random_access(
    reader: &mut ParallelGzipReader,
    offsets: &[u64],
    read_size: usize,
) -> Duration {
    let mut buffer = vec![0u8; read_size];
    let start = std::time::Instant::now();
    for &offset in offsets {
        reader.seek(SeekFrom::Start(offset)).unwrap();
        reader.read_exact(&mut buffer).unwrap();
    }
    start.elapsed()
}

fn main() {
    let json = json_mode();
    let mut report = JsonReport::new("table7_interop");
    if !json {
        print_header(
            "Table 7 — interop: cold random access, imported index vs. speculation",
            "per format: import cost + bandwidth over a shuffled access pattern",
        );
    }

    let total = scaled(48 << 20, 6 << 20);
    let read_size = 64 << 10;
    let accesses = scaled(48, 16);
    let data = rgz_datagen::base64_random(total, 61);
    let compressed = GzipWriter::default().compress_pigz_like(&data, 128 << 10);
    let offsets = access_offsets(total, accesses, read_size);
    let touched = (accesses * read_size) as f64;

    // Build the index once (this is the producer side; its cost is the
    // ordinary first pass) and serialise it in every format.
    let mut producer = ParallelGzipReader::from_bytes(compressed.clone(), options()).unwrap();
    let index = producer.build_full_index().unwrap();
    let serialized: Vec<(AnyIndexFormat, Vec<u8>)> = [
        AnyIndexFormat::Native(IndexFormat::V2),
        AnyIndexFormat::Gztool,
        AnyIndexFormat::IndexedGzip,
    ]
    .into_iter()
    .map(|format| (format, export_index(&index, format)))
    .collect();

    // Baseline: a cold reader with no index serving the same accesses via
    // speculative block-finding (the first access forces the pass to cover
    // the file).
    let mut cold = ParallelGzipReader::from_bytes(compressed.clone(), options()).unwrap();
    let speculative_time = timed_random_access(&mut cold, &offsets, read_size);
    let speculative_mb_s = touched / 1e6 / speculative_time.as_secs_f64().max(1e-9);
    let speculative_decodes = {
        let statistics = cold.statistics();
        statistics.speculative_chunks_used + statistics.on_demand_chunks + statistics.index_chunks
    };
    if !json {
        println!(
            "{:<14} {:>10} {:>12} {:>14} {:>10}",
            "setup", "import ms", "access MB/s", "chunk decodes", "speedup"
        );
        println!(
            "{:<14} {:>10} {:>12.1} {:>14} {:>10}",
            "speculative", "-", speculative_mb_s, speculative_decodes, "1.00"
        );
    }
    report.record("cold_access_speculative_mb_s", speculative_mb_s);

    let mut indexed_v2_mb_s = 0f64;
    for (format, bytes) in &serialized {
        let (imported, import_time) = time(|| import_index(bytes).unwrap());
        let mut reader = ParallelGzipReader::with_index(
            SharedFileReader::from_bytes(compressed.clone()),
            options(),
            imported.index,
        )
        .unwrap();
        let access_time = timed_random_access(&mut reader, &offsets, read_size);
        let mb_s = touched / 1e6 / access_time.as_secs_f64().max(1e-9);
        let statistics = reader.statistics();
        let decodes = statistics.index_chunks + statistics.on_demand_chunks;
        let speedup = speculative_time.as_secs_f64() / access_time.as_secs_f64().max(1e-9);
        if !json {
            println!(
                "{:<14} {:>10.1} {:>12.1} {:>14} {:>9.2}x",
                format.to_string(),
                import_time.as_secs_f64() * 1e3,
                mb_s,
                decodes,
                speedup,
            );
        }
        let key = match format {
            AnyIndexFormat::Native(_) => "v2",
            AnyIndexFormat::Gztool => "gztool",
            AnyIndexFormat::IndexedGzip => "indexed_gzip",
        };
        report.record(&format!("import_{key}_ms"), import_time.as_secs_f64() * 1e3);
        report.record(&format!("cold_access_{key}_mb_s"), mb_s);
        if matches!(format, AnyIndexFormat::Native(_)) {
            indexed_v2_mb_s = mb_s;
        }
    }
    // The headline, hardware-independent ratio: how much faster cold random
    // access gets when any reusable index is present.
    report.record(
        "speedup_index_vs_speculative",
        indexed_v2_mb_s / speculative_mb_s.max(1e-9),
    );

    if json {
        report.emit();
    }
}
