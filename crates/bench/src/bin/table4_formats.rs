//! Table 4: comparison with other compression formats and tools.
//!
//! zstd/pzstd/bzip2/lz4 are represented by the `framezip` stand-in (see
//! DESIGN.md): a single-frame file reproduces zstd's "cannot be parallelized"
//! behaviour, a multi-frame file reproduces pzstd's.

use rgz_baselines::{decompress_bgzf_parallel, FramezipDecompressor, FramezipWriter};
use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_gzip::{BgzfWriter, GzipWriter};
use rgz_io::SharedFileReader;

fn main() {
    print_header(
        "Table 4 — comparison with other formats/tools",
        "Silesia-like corpus; P = degree of parallelism",
    );
    let max_cores = available_cores();
    let parallelism = [1usize, 4.min(max_cores), max_cores];
    let total = scaled(96 << 20, 8 << 20);
    let data = rgz_datagen::silesia_like(total, 14);
    println!("# corpus {} MB", data.len() / 1_000_000);

    let gzip_file = GzipWriter::default().compress_pigz_like(&data, 128 * 1024);
    let bgzf_file = BgzfWriter::default().compress(&data);
    let framezip_single = FramezipWriter::default().compress_single_frame(&data);
    let framezip_multi = FramezipWriter::default().compress_multi_frame(&data, 512 * 1024);

    println!(
        "{:<10} {:>10} {:<26} {:>4} {:>16}",
        "format", "ratio", "decompressor", "P", "bandwidth MB/s"
    );
    let row = |format: &str, compressed: &Vec<u8>, decompressor: &str, p: usize, bandwidth: f64| {
        println!(
            "{:<10} {:>10.2} {:<26} {:>4} {:>16.1}",
            format,
            data.len() as f64 / compressed.len() as f64,
            decompressor,
            p,
            bandwidth
        );
    };

    for &p in &parallelism {
        // gzip file decompressed by rapidgzip, without and with an index.
        let options = ParallelGzipReaderOptions {
            parallelization: p,
            chunk_size: scaled(1 << 20, 256 << 10),
            ..Default::default()
        };
        let shared = SharedFileReader::from_bytes(gzip_file.clone());
        let (_, duration) = best_of(|| {
            let mut reader = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
            assert_eq!(reader.decompress_all().unwrap().len(), data.len());
        });
        row(
            "gzip",
            &gzip_file,
            "rapidgzip",
            p,
            bandwidth_mb_per_s(data.len(), duration),
        );

        let mut builder = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
        let index = builder.build_full_index().unwrap();
        let (_, duration) = best_of(|| {
            let mut reader =
                ParallelGzipReader::with_index(shared.clone(), options.clone(), index.clone())
                    .unwrap();
            assert_eq!(reader.decompress_all().unwrap().len(), data.len());
        });
        row(
            "gzip",
            &gzip_file,
            "rapidgzip (index)",
            p,
            bandwidth_mb_per_s(data.len(), duration),
        );

        // Serial gzip baseline (only meaningful at P = 1, constant otherwise).
        if p == 1 {
            let (_, duration) = best_of(|| rgz_gzip::decompress(&gzip_file).unwrap());
            row(
                "gzip",
                &gzip_file,
                "gzip (serial)",
                1,
                bandwidth_mb_per_s(data.len(), duration),
            );
        }

        // BGZF decompressed by the bgzip-style parallel decoder.
        let (_, duration) = best_of(|| decompress_bgzf_parallel(&bgzf_file, p).unwrap());
        row(
            "bgzf",
            &bgzf_file,
            "bgzip",
            p,
            bandwidth_mb_per_s(data.len(), duration),
        );

        // framezip single frame (zstd-like): parallelism cannot help.
        let single = FramezipDecompressor { threads: p };
        let (_, duration) = best_of(|| single.decompress(&framezip_single).unwrap());
        row(
            "zstd*",
            &framezip_single,
            "pzstd (single frame)",
            p,
            bandwidth_mb_per_s(data.len(), duration),
        );

        // framezip multi frame (pzstd-like): parallelism helps.
        let multi = FramezipDecompressor { threads: p };
        let (_, duration) = best_of(|| multi.decompress(&framezip_multi).unwrap());
        row(
            "pzstd*",
            &framezip_multi,
            "pzstd (multi frame)",
            p,
            bandwidth_mb_per_s(data.len(), duration),
        );
    }
    println!("# * framezip stand-in for Zstandard (see DESIGN.md, substitutions)");
}
