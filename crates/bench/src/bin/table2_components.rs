//! Table 2: bandwidths of the individual components (block finder variants,
//! Non-Compressed Block finder, marker replacement, writing, newline count).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rgz_bench::*;
use rgz_blockfinder::{
    BlockFinder, CustomParseFinder, DynamicBlockFinder, PugzLikeFinder, SkipLutFinder,
    TrialInflateFinder, UncompressedBlockFinder,
};
use rgz_deflate::{replace_markers, MARKER_BASE};

fn scan(finder: &dyn BlockFinder, data: &[u8]) -> u64 {
    let mut count = 0u64;
    let mut offset = 0u64;
    while let Some(found) = finder.find_next(data, offset) {
        count += 1;
        offset = found + 1;
    }
    count
}

fn main() {
    print_header(
        "Table 2 — component bandwidths",
        "all single-threaded, on random data (finders) / marker data (replacement)",
    );
    let mut rng = StdRng::seed_from_u64(2);
    let finder_megabytes = scaled(8, 2);
    let random: Vec<u8> = (0..finder_megabytes << 20).map(|_| rng.gen()).collect();
    // The trial-inflate finder is orders of magnitude slower; give it less data.
    let random_small = &random[..random.len().min(scaled(256 << 10, 64 << 10))];

    println!("{:<28} {:>16}", "component", "bandwidth MB/s");
    let row = |label: &str, bytes: usize, duration: std::time::Duration| {
        println!("{label:<28} {:>16.3}", bandwidth_mb_per_s(bytes, duration));
    };

    let (_, duration) = best_of(|| scan(&TrialInflateFinder, random_small));
    row("DBF zlib (trial inflate)", random_small.len(), duration);
    let (_, duration) = best_of(|| scan(&CustomParseFinder, &random));
    row("DBF custom deflate", random.len(), duration);
    let (_, duration) = best_of(|| scan(&PugzLikeFinder::default(), &random));
    row("Pugz block finder", random.len(), duration);
    let (_, duration) = best_of(|| scan(&SkipLutFinder, &random));
    row("DBF skip-LUT", random.len(), duration);
    let (_, duration) = best_of(|| scan(&DynamicBlockFinder::new(), &random));
    row("DBF rapidgzip", random.len(), duration);
    let (_, duration) = best_of(|| scan(&UncompressedBlockFinder::new(), &random));
    row("NBF", random.len(), duration);

    // Marker replacement.
    let window: Vec<u8> = (0..32 * 1024).map(|i| (i % 251) as u8).collect();
    let symbols: Vec<u16> = (0..scaled(64 << 20, 8 << 20))
        .map(|i| {
            if i % 7 == 0 {
                MARKER_BASE + (i % 32768) as u16
            } else {
                (i % 256) as u16
            }
        })
        .collect();
    let (_, duration) = best_of(|| replace_markers(&symbols, &window).unwrap());
    row("Marker replacement", symbols.len(), duration);

    // Writing to a file in /dev/shm (or the temp dir as a fallback).
    let out_dir = if std::path::Path::new("/dev/shm").is_dir() {
        std::path::PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let out_path = out_dir.join("rgz_table2_write.bin");
    let payload = rgz_datagen::base64_random(scaled(256 << 20, 32 << 20), 3);
    let (_, duration) = best_of(|| std::fs::write(&out_path, &payload).unwrap());
    row("Write to /dev/shm/", payload.len(), duration);
    std::fs::remove_file(&out_path).ok();

    // Counting newlines.
    let (_, duration) = best_of(|| payload.iter().filter(|&&b| b == b'\n').count());
    row("Count newlines", payload.len(), duration);
}
