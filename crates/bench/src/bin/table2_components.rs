//! Table 2: bandwidths of the individual components (block finder variants,
//! Non-Compressed Block finder, one-stage inflate, marker replacement,
//! writing, newline count).
//!
//! The one-stage inflate rows measure the multi-symbol fast path against the
//! single-symbol reference decoder on the base64 and silesia corpora; the
//! `speedup_*` metrics are the machine-independent ratios the CI `perf-smoke`
//! job gates on.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rgz_bench::*;
use rgz_bitio::BitReader;
use rgz_blockfinder::{
    BlockFinder, CustomParseFinder, DynamicBlockFinder, PugzLikeFinder, SkipLutFinder,
    TrialInflateFinder, UncompressedBlockFinder,
};
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_deflate::{
    inflate, inflate_single_symbol, replace_markers, replace_markers_into_scalar,
    CompressorOptions, DeflateCompressor, MARKER_BASE,
};
use rgz_metrics::MetricsRegistry;
use rgz_trace::{chrome_trace_json, MetricsReport, TraceSink};

fn row(
    report: &mut JsonReport,
    json: bool,
    label: &str,
    key: &str,
    bytes: usize,
    duration: std::time::Duration,
) -> f64 {
    let bandwidth = bandwidth_mb_per_s(bytes, duration);
    if !json {
        println!("{label:<28} {bandwidth:>16.3}");
    }
    report.record(key, bandwidth);
    bandwidth
}

fn scan(finder: &dyn BlockFinder, data: &[u8]) -> u64 {
    let mut count = 0u64;
    let mut offset = 0u64;
    while let Some(found) = finder.find_next(data, offset) {
        count += 1;
        offset = found + 1;
    }
    count
}

fn main() {
    let json = json_mode();
    let mut report = JsonReport::new("table2_components");
    if !json {
        print_header(
            "Table 2 — component bandwidths",
            "all single-threaded, on random data (finders) / marker data (replacement)",
        );
        println!("{:<28} {:>16}", "component", "bandwidth MB/s");
    }

    let mut rng = StdRng::seed_from_u64(2);
    let finder_megabytes = scaled(8, 2);
    let random: Vec<u8> = (0..finder_megabytes << 20).map(|_| rng.gen()).collect();
    // The trial-inflate finder is orders of magnitude slower; give it less data.
    let random_small = &random[..random.len().min(scaled(256 << 10, 64 << 10))];

    let (_, duration) = best_of(|| scan(&TrialInflateFinder, random_small));
    row(
        &mut report,
        json,
        "DBF zlib (trial inflate)",
        "dbf_zlib_mb_s",
        random_small.len(),
        duration,
    );
    let (_, duration) = best_of(|| scan(&CustomParseFinder, &random));
    row(
        &mut report,
        json,
        "DBF custom deflate",
        "dbf_custom_mb_s",
        random.len(),
        duration,
    );
    let (_, duration) = best_of(|| scan(&PugzLikeFinder::default(), &random));
    row(
        &mut report,
        json,
        "Pugz block finder",
        "dbf_pugz_mb_s",
        random.len(),
        duration,
    );
    let (_, duration) = best_of(|| scan(&SkipLutFinder, &random));
    row(
        &mut report,
        json,
        "DBF skip-LUT",
        "dbf_skip_lut_mb_s",
        random.len(),
        duration,
    );
    let (_, duration) = best_of(|| scan(&DynamicBlockFinder::new(), &random));
    row(
        &mut report,
        json,
        "DBF rapidgzip",
        "dbf_rapidgzip_mb_s",
        random.len(),
        duration,
    );
    let (_, duration) = best_of(|| scan(&UncompressedBlockFinder::new(), &random));
    row(&mut report, json, "NBF", "nbf_mb_s", random.len(), duration);

    // One-stage inflate: the multi-symbol fast path versus the single-symbol
    // reference decoder (the tentpole measurement; deterministic seeds so CI
    // runs are comparable).
    let corpus_bytes = scaled(32 << 20, 4 << 20);
    for (name, data) in [
        ("base64", rgz_datagen::base64_random(corpus_bytes, 7)),
        ("silesia", rgz_datagen::silesia_like(corpus_bytes, 7)),
    ] {
        let compressed = DeflateCompressor::new(CompressorOptions::default()).compress(&data);
        let (out, duration) = best_of(|| {
            let mut reader = BitReader::new(&compressed);
            let mut out = Vec::with_capacity(data.len());
            inflate_single_symbol(&mut reader, &[], &mut out, u64::MAX).unwrap();
            out
        });
        assert_eq!(out, data, "single-symbol decode must round-trip");
        let single = row(
            &mut report,
            json,
            &format!("Inflate 1-symbol ({name})"),
            &format!("inflate_single_{name}_mb_s"),
            data.len(),
            duration,
        );
        let (out, duration) = best_of(|| {
            let mut reader = BitReader::new(&compressed);
            let mut out = Vec::with_capacity(data.len());
            inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
            out
        });
        assert_eq!(out, data, "multi-symbol decode must round-trip");
        let multi = row(
            &mut report,
            json,
            &format!("Inflate multi-sym ({name})"),
            &format!("inflate_multi_{name}_mb_s"),
            data.len(),
            duration,
        );
        let speedup = multi / single;
        if !json {
            println!("{:<28} {:>15.2}x", format!("  speedup ({name})"), speedup);
        }
        report.record(&format!("speedup_{name}"), speedup);
    }

    // Marker replacement.
    let window: Vec<u8> = (0..32 * 1024).map(|i| (i % 251) as u8).collect();
    let symbols: Vec<u16> = (0..scaled(64 << 20, 8 << 20))
        .map(|i| {
            if i % 7 == 0 {
                MARKER_BASE + (i % 32768) as u16
            } else {
                (i % 256) as u16
            }
        })
        .collect();
    let (_, duration) = best_of(|| replace_markers(&symbols, &window).unwrap());
    let marker_simd = row(
        &mut report,
        json,
        "Marker replacement",
        "marker_replacement_mb_s",
        symbols.len(),
        duration,
    );
    let (_, duration) = best_of(|| {
        let mut out = Vec::with_capacity(symbols.len());
        replace_markers_into_scalar(&symbols, &window, &mut out).unwrap();
        out
    });
    let marker_scalar = row(
        &mut report,
        json,
        "Marker replacement (scalar)",
        "marker_replacement_scalar_mb_s",
        symbols.len(),
        duration,
    );
    let marker_speedup = marker_simd / marker_scalar;
    if !json {
        println!(
            "{:<28} {:>15.2}x [{}]",
            "  speedup (markers)",
            marker_speedup,
            rgz_deflate::markers_active_isa()
        );
    }
    report.record("speedup_marker_replacement", marker_speedup);

    // CRC-32: the carryless-multiply folding kernel against the slicing-by-16
    // scalar reference.  The speedup ratio is machine-independent as long as
    // the runner has PCLMULQDQ (every x86-64 CPU since ~2010); on other ISAs
    // both sides run the scalar path and the ratio degenerates to ~1.
    let crc_payload = rgz_datagen::base64_random(scaled(256 << 20, 32 << 20), 5);
    let (simd_crc, duration) = best_of(|| rgz_checksum::crc32(&crc_payload));
    let crc_simd = row(
        &mut report,
        json,
        "CRC-32 (folding)",
        "crc32_mb_s",
        crc_payload.len(),
        duration,
    );
    let (scalar_crc, duration) = best_of(|| rgz_checksum::crc32_scalar(&crc_payload));
    assert_eq!(simd_crc, scalar_crc, "CRC kernels must agree");
    let crc_scalar = row(
        &mut report,
        json,
        "CRC-32 (scalar)",
        "crc32_scalar_mb_s",
        crc_payload.len(),
        duration,
    );
    let crc_speedup = crc_simd / crc_scalar;
    if !json {
        println!(
            "{:<28} {:>15.2}x [{}]",
            "  speedup (crc32)",
            crc_speedup,
            rgz_checksum::crc32_active_isa()
        );
    }
    report.record("speedup_crc32", crc_speedup);
    drop(crc_payload);

    // Writing to a file in /dev/shm (or the temp dir as a fallback).
    let out_dir = if std::path::Path::new("/dev/shm").is_dir() {
        std::path::PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let out_path = out_dir.join("rgz_table2_write.bin");
    let payload = rgz_datagen::base64_random(scaled(256 << 20, 32 << 20), 3);
    let (_, duration) = best_of(|| std::fs::write(&out_path, &payload).unwrap());
    row(
        &mut report,
        json,
        "Write to /dev/shm/",
        "write_shm_mb_s",
        payload.len(),
        duration,
    );
    std::fs::remove_file(&out_path).ok();

    // Counting newlines.
    let (_, duration) = best_of(|| payload.iter().filter(|&&b| b == b'\n').count());
    row(
        &mut report,
        json,
        "Count newlines",
        "count_newlines_mb_s",
        payload.len(),
        duration,
    );

    // Trace overhead: the same parallel decompression with the structured
    // event layer enabled versus the default disabled sink.  The runs are
    // interleaved so machine drift hits both sides equally, and the ratio
    // (a machine-independent number) is gated by the `trace_overhead_ratio`
    // floor in bench/baseline.json.
    let corpus = rgz_datagen::fastq_of_size(scaled(24 << 20, 3 << 20), 9);
    let compressed = rgz_gzip::GzipWriter::default().compress(&corpus);
    let decode = |trace: Option<Arc<TraceSink>>| {
        let mut options = ParallelGzipReaderOptions {
            parallelization: available_cores().min(4),
            chunk_size: 256 * 1024,
            ..Default::default()
        };
        if let Some(trace) = trace {
            options = options.with_trace(trace);
        }
        let mut reader = ParallelGzipReader::from_bytes(compressed.clone(), options).unwrap();
        reader.decompress_all().unwrap()
    };
    assert_eq!(decode(None), corpus, "parallel decode must round-trip");
    let sink = Arc::new(TraceSink::new_enabled());
    let mut best_untraced = std::time::Duration::MAX;
    let mut best_traced = std::time::Duration::MAX;
    for _ in 0..repetitions().max(3) {
        let (_, duration) = time(|| decode(None));
        best_untraced = best_untraced.min(duration);
        let (_, duration) = time(|| decode(Some(sink.clone())));
        best_traced = best_traced.min(duration);
    }
    let untraced = row(
        &mut report,
        json,
        "Parallel decode (no trace)",
        "decompress_untraced_mb_s",
        corpus.len(),
        best_untraced,
    );
    let traced = row(
        &mut report,
        json,
        "Parallel decode (traced)",
        "decompress_traced_mb_s",
        corpus.len(),
        best_traced,
    );
    let overhead_ratio = traced / untraced;
    if !json {
        println!(
            "{:<28} {:>15.3}x",
            "  traced/untraced ratio", overhead_ratio
        );
    }
    report.record("trace_overhead_ratio", overhead_ratio);

    // Metrics overhead: the same shape of experiment for the telemetry
    // registry, on the silesia-like corpus.  Disabled, every instrument is a
    // single relaxed atomic load; enabled, counters land in per-thread
    // sharded cells.  The `metrics_overhead_ratio` floor in
    // bench/baseline.json gates the disabled->enabled regression.
    let silesia = rgz_datagen::silesia_like(scaled(24 << 20, 3 << 20), 11);
    let silesia_gz = rgz_gzip::GzipWriter::default().compress(&silesia);
    let decode_metered = |registry: Option<Arc<MetricsRegistry>>| {
        let mut options = ParallelGzipReaderOptions {
            parallelization: available_cores().min(4),
            chunk_size: 256 * 1024,
            ..Default::default()
        };
        if let Some(registry) = registry {
            options = options.with_metrics(registry);
        }
        let mut reader = ParallelGzipReader::from_bytes(silesia_gz.clone(), options).unwrap();
        reader.decompress_all().unwrap()
    };
    assert_eq!(
        decode_metered(None),
        silesia,
        "metered decode must round-trip"
    );
    let registry = Arc::new(MetricsRegistry::new_enabled());
    let mut best_unmetered = std::time::Duration::MAX;
    let mut best_metered = std::time::Duration::MAX;
    for _ in 0..repetitions().max(3) {
        let (_, duration) = time(|| decode_metered(None));
        best_unmetered = best_unmetered.min(duration);
        let (_, duration) = time(|| decode_metered(Some(registry.clone())));
        best_metered = best_metered.min(duration);
    }
    let unmetered = row(
        &mut report,
        json,
        "Parallel decode (no metrics)",
        "decompress_unmetered_mb_s",
        silesia.len(),
        best_unmetered,
    );
    let metered = row(
        &mut report,
        json,
        "Parallel decode (metrics)",
        "decompress_metered_mb_s",
        silesia.len(),
        best_metered,
    );
    let metrics_ratio = metered / unmetered;
    if !json {
        println!(
            "{:<28} {:>15.3}x",
            "  metered/unmetered ratio", metrics_ratio
        );
    }
    report.record("metrics_overhead_ratio", metrics_ratio);

    // The aggregated pipeline metrics ride along in the JSON report, and the
    // raw trace can be kept as a CI artifact.
    report.record_block("trace_", &MetricsReport::from_sink(&sink).flat_metrics());
    if let Ok(path) = std::env::var("RGZ_TRACE_OUT") {
        std::fs::write(&path, chrome_trace_json(&sink))
            .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
        eprintln!("# wrote pipeline trace to {path}");
    }

    if json {
        report.emit();
    }
}
