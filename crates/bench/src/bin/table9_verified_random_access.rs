//! Table 9: verified random access — the cost of checking stored CRC-32
//! fragments on the index fast path.
//!
//! A v3 index stores per-seek-point checksum fragments, so every on-demand
//! chunk decode under [`VerificationMode::Full`] is hashed and compared.
//! This harness measures the same shuffled access pattern through the same
//! v3 index with verification on and off; the hardware-independent ratio
//! between the two is the price of closing the unverified fast-path hole.
//!
//! `--json` emits one [`rgz_bench::JsonReport`] line; `perf_compare` gates
//! `verified_vs_unverified_ratio`.  The design target is <= 10% overhead
//! (a ratio of 0.9); the checked-in floor sits at 0.85 to leave measurement
//! margin on loaded CI runners while still catching pathological
//! regressions (an accidental second hash or decode pass lands well below
//! it).

use std::io::{Read, Seek, SeekFrom};
use std::time::Duration;

use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions, VerificationMode};
use rgz_gzip::GzipWriter;
use rgz_index::GzipIndex;
use rgz_io::SharedFileReader;

fn options(verification: VerificationMode) -> ParallelGzipReaderOptions {
    ParallelGzipReaderOptions {
        parallelization: available_cores(),
        chunk_size: scaled(1 << 20, 128 << 10),
        verification,
        ..Default::default()
    }
}

/// Deterministic pseudo-random offsets covering the whole stream.
fn access_offsets(total: usize, count: usize, read_size: usize) -> Vec<u64> {
    let mut state = 0x9E3779B9_7F4A7C15u64;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % (total - read_size) as u64
        })
        .collect()
}

fn timed_random_access(
    reader: &mut ParallelGzipReader,
    offsets: &[u64],
    read_size: usize,
) -> Duration {
    let mut buffer = vec![0u8; read_size];
    let start = std::time::Instant::now();
    for &offset in offsets {
        reader.seek(SeekFrom::Start(offset)).unwrap();
        reader.read_exact(&mut buffer).unwrap();
    }
    start.elapsed()
}

/// One sweep with a fresh reader, so every repetition decodes (and, when
/// enabled, re-verifies) its chunks instead of hitting the resolved cache.
fn one_sweep(
    serialized: &[u8],
    compressed: &[u8],
    verification: VerificationMode,
    offsets: &[u64],
    read_size: usize,
) -> (Duration, u64, u64) {
    let index = GzipIndex::import(serialized).unwrap();
    let mut reader = ParallelGzipReader::with_index(
        SharedFileReader::from_bytes(compressed.to_vec()),
        options(verification),
        index,
    )
    .unwrap();
    let elapsed = timed_random_access(&mut reader, offsets, read_size);
    let statistics = reader.verification_statistics();
    (
        elapsed,
        statistics.index_chunks_verified,
        statistics.index_chunks_unverified,
    )
}

fn main() {
    let json = json_mode();
    let mut report = JsonReport::new("table9_verified_random_access");
    if !json {
        print_header(
            "Table 9 — verified random access through a v3 index",
            "same access pattern, stored-fragment verification on vs. off",
        );
    }

    let total = scaled(48 << 20, 6 << 20);
    let read_size = 64 << 10;
    let accesses = scaled(48, 16);
    let data = rgz_datagen::base64_random(total, 91);
    let compressed = GzipWriter::default().compress_pigz_like(&data, 128 << 10);
    let offsets = access_offsets(total, accesses, read_size);
    let touched = (accesses * read_size) as f64;

    // Producer side: one sequential pass captures the fragments for free;
    // the v3 export carries them.
    let mut producer =
        ParallelGzipReader::from_bytes(compressed.clone(), options(VerificationMode::Full))
            .unwrap();
    let index = producer.build_full_index().unwrap();
    let serialized = index.export();
    let serialized_v2 = index.export_as(rgz_index::IndexFormat::V2);

    // Untimed warmup: touch the compressed bytes and the allocator once so
    // the first timed sweep is not charged for cold caches.
    one_sweep(
        &serialized,
        &compressed,
        VerificationMode::Off,
        &offsets,
        read_size,
    );

    // Interleave the modes and keep the best of each, so machine-load
    // drift hits both measurements instead of biasing one side.
    let mut unverified_time = Duration::MAX;
    let mut fragmentless_time = Duration::MAX;
    let mut verified_time = Duration::MAX;
    let mut chunks_verified = 0;
    let mut chunks_unverified = 0;
    for _ in 0..5 {
        let (off, _, _) = one_sweep(
            &serialized,
            &compressed,
            VerificationMode::Off,
            &offsets,
            read_size,
        );
        unverified_time = unverified_time.min(off);
        // Control: Full mode through a fragment-less v2 index follows the
        // identical code path minus the hashing, isolating the hash cost
        // from any other mode-dependent work.
        let (v2, _, _) = one_sweep(
            &serialized_v2,
            &compressed,
            VerificationMode::Full,
            &offsets,
            read_size,
        );
        fragmentless_time = fragmentless_time.min(v2);
        let (full, verified, unverified) = one_sweep(
            &serialized,
            &compressed,
            VerificationMode::Full,
            &offsets,
            read_size,
        );
        verified_time = verified_time.min(full);
        chunks_verified = verified;
        chunks_unverified = unverified;
    }
    let unverified_mb_s = touched / 1e6 / unverified_time.as_secs_f64().max(1e-9);
    let fragmentless_mb_s = touched / 1e6 / fragmentless_time.as_secs_f64().max(1e-9);
    let verified_mb_s = touched / 1e6 / verified_time.as_secs_f64().max(1e-9);
    assert!(
        chunks_verified > 0 && chunks_unverified == 0,
        "the v3 fast path must verify every chunk it serves \
         ({chunks_verified} verified, {chunks_unverified} unverified)"
    );

    let ratio = verified_mb_s / unverified_mb_s.max(1e-9);
    if !json {
        println!(
            "{:<14} {:>12} {:>16}",
            "mode", "access MB/s", "chunks verified"
        );
        println!("{:<14} {:>12.1} {:>16}", "unverified", unverified_mb_s, "-");
        println!(
            "{:<14} {:>12.1} {:>16}",
            "v2 (no frags)", fragmentless_mb_s, "-"
        );
        println!(
            "{:<14} {:>12.1} {:>16}",
            "verified", verified_mb_s, chunks_verified
        );
        println!("verified/unverified ratio: {ratio:.3}");
    }
    report.record("unverified_access_mb_s", unverified_mb_s);
    report.record("fragmentless_access_mb_s", fragmentless_mb_s);
    report.record("verified_access_mb_s", verified_mb_s);
    report.record("verified_vs_unverified_ratio", ratio);

    if json {
        report.emit();
    }
}
