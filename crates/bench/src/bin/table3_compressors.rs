//! Table 3: influence of the compressing tool and level on rapidgzip's
//! parallel decompression bandwidth.

use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_gzip::{CompressorFrontend, FrontendKind};
use rgz_io::SharedFileReader;

fn main() {
    print_header(
        "Table 3 — influence of the compressor",
        "Silesia-like corpus compressed by emulated tools/levels, decompressed by rapidgzip with all cores",
    );
    let cores = available_cores();
    let total = scaled(128 << 20, 8 << 20);
    let data = rgz_datagen::silesia_like(total, 13);
    println!("# corpus {} MB, {} cores", data.len() / 1_000_000, cores);
    println!(
        "{:<14} {:>12} {:>18}",
        "compressor", "compr. ratio", "bandwidth MB/s"
    );

    let frontends = [
        (FrontendKind::Bgzf, 0u8),
        (FrontendKind::Bgzf, 3),
        (FrontendKind::Bgzf, 6),
        (FrontendKind::Bgzf, 9),
        (FrontendKind::Gzip, 1),
        (FrontendKind::Gzip, 3),
        (FrontendKind::Gzip, 6),
        (FrontendKind::Gzip, 9),
        (FrontendKind::Igzip, 0),
        (FrontendKind::Igzip, 1),
        (FrontendKind::Igzip, 3),
        (FrontendKind::Pigz, 1),
        (FrontendKind::Pigz, 6),
        (FrontendKind::Pigz, 9),
    ];
    for (kind, level) in frontends {
        let frontend = CompressorFrontend::new(kind, level);
        let compressed = frontend.compress(&data);
        let ratio = data.len() as f64 / compressed.len() as f64;
        let options = ParallelGzipReaderOptions {
            parallelization: cores,
            chunk_size: scaled(1 << 20, 256 << 10),
            ..Default::default()
        };
        let shared = SharedFileReader::from_bytes(compressed);
        let (_, duration) = best_of(|| {
            let mut reader = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
            assert_eq!(reader.decompress_all().unwrap().len(), data.len());
        });
        println!(
            "{:<14} {:>12.2} {:>18.1}",
            frontend.label(),
            ratio,
            bandwidth_mb_per_s(data.len(), duration)
        );
    }
}
